"""First-order substrate: the executable Theorem-1 proof machinery."""

from .encode import encode
from .evaluate import evaluate
from .formulas import (
    And,
    Atom,
    Const,
    Eq,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    TrueF,
    Var,
    conj,
    disj,
    exists,
    forall,
)
from .sentences import SENTENCES
from .structure import FOStructure, Relation
from .validator import FOValidator

__all__ = [
    "And",
    "Atom",
    "Const",
    "Eq",
    "Exists",
    "FOStructure",
    "FOValidator",
    "FalseF",
    "ForAll",
    "Formula",
    "Implies",
    "Not",
    "Or",
    "Relation",
    "SENTENCES",
    "TrueF",
    "Var",
    "conj",
    "disj",
    "encode",
    "evaluate",
    "exists",
    "forall",
]
