"""Evaluation of first-order formulas over finite structures.

The evaluator is the textbook recursive definition, with one optimisation
that does not change semantics: when a quantifier's body is (essentially) a
conjunction, the quantified variable's candidates are narrowed using the
first relation atom whose other arguments are already bound (sideways
information passing).  Without it the nested quantifiers of the WS/DS/SS
sentences would enumerate the full cartesian product -- correct, but
unusably slow even at a few hundred nodes.

``evaluate(structure, formula)`` decides a boolean query; Theorem 17.1.2 of
Abiteboul-Hull-Vianu (cited in the Theorem 1 proof) places this problem in
AC0 for fixed formulas.
"""

from __future__ import annotations

from typing import Mapping

from .formulas import (
    And,
    Atom,
    Const,
    Eq,
    Exists,
    FalseF,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    TrueF,
    Var,
)
from .structure import FOStructure

Assignment = dict[str, object]


def evaluate(
    structure: FOStructure,
    formula: Formula,
    assignment: Mapping[str, object] | None = None,
) -> bool:
    """Does *structure* satisfy *formula* under *assignment*?"""
    return _eval(structure, formula, dict(assignment or {}))


def _value(term: Term, assignment: Assignment) -> object:
    if isinstance(term, Const):
        return term.value
    try:
        return assignment[term.name]
    except KeyError:
        raise NameError(f"unbound variable {term.name}") from None


def _eval(structure: FOStructure, formula: Formula, assignment: Assignment) -> bool:
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Atom):
        row = tuple(_value(term, assignment) for term in formula.terms)
        return structure.holds(formula.relation, row)
    if isinstance(formula, Eq):
        return _value(formula.left, assignment) == _value(formula.right, assignment)
    if isinstance(formula, Not):
        return not _eval(structure, formula.body, assignment)
    if isinstance(formula, And):
        return all(_eval(structure, part, assignment) for part in formula.parts)
    if isinstance(formula, Or):
        return any(_eval(structure, part, assignment) for part in formula.parts)
    if isinstance(formula, Implies):
        if not _eval(structure, formula.premise, assignment):
            return True
        return _eval(structure, formula.conclusion, assignment)
    if isinstance(formula, Exists):
        for candidate in _candidates(structure, formula.var, formula.sort, formula.body, assignment):
            assignment[formula.var.name] = candidate
            if _eval(structure, formula.body, assignment):
                del assignment[formula.var.name]
                return True
        assignment.pop(formula.var.name, None)
        return False
    if isinstance(formula, ForAll):
        # ∀x.φ where φ = (guard → ψ): only candidates satisfying the guard
        # can falsify φ, so narrowing by the guard's atoms is sound.
        body = formula.body
        if isinstance(body, Implies):
            candidates = _candidates(
                structure, formula.var, formula.sort, body.premise, assignment
            )
        else:
            # narrowing by the body itself would be unsound for ∀ (it would
            # skip exactly the candidates that falsify it)
            candidates = sorted(structure.sort(formula.sort), key=str)
        for candidate in candidates:
            assignment[formula.var.name] = candidate
            ok = _eval(structure, body, assignment)
            if not ok:
                del assignment[formula.var.name]
                return False
        assignment.pop(formula.var.name, None)
        return True
    raise TypeError(f"not a formula: {formula!r}")


def _candidates(
    structure: FOStructure,
    var: Var,
    sort: str,
    body: Formula,
    assignment: Assignment,
) -> list:
    """Candidate values for *var*, narrowed by the body's guard atoms.

    Sound narrowing only applies when the body is a conjunction (or a single
    atom) at the top level: any atom of that conjunction containing *var*
    with all other arguments bound restricts the satisfying values of the
    whole body.  For ForAll the caller passes the implication premise, whose
    atoms restrict the only candidates that could *falsify* the sentence.
    If no usable atom exists, the full sort is returned.
    """
    parts: tuple[Formula, ...]
    if isinstance(body, And):
        parts = body.parts
    elif isinstance(body, (Atom, Exists)):
        parts = (body,)
    else:
        parts = ()
    best: set | None = None
    for part in parts:
        if not isinstance(part, Atom):
            continue
        if not any(
            isinstance(term, Var) and term.name == var.name for term in part.terms
        ):
            continue
        pattern: list = []
        positions: list[int] = []
        usable = True
        for position, term in enumerate(part.terms):
            if isinstance(term, Var) and term.name == var.name:
                pattern.append(None)
                positions.append(position)
            elif isinstance(term, Const):
                pattern.append(term.value)
            elif term.name in assignment:
                pattern.append(assignment[term.name])
            else:
                usable = False
                break
        if not usable or not structure.has_relation(part.relation):
            if usable:
                return []  # empty relation: no candidate can satisfy the atom
            continue
        found = {
            row[position]
            for row in structure.relation(part.relation).matching(tuple(pattern))
            for position in positions
        }
        if best is None or len(found) < len(best):
            best = found
    if best is None:
        return sorted(structure.sort(sort), key=str)
    domain = structure.sort(sort)
    return [candidate for candidate in sorted(best, key=str) if candidate in domain]
