"""Many-sorted first-order structures: finite domains plus relations.

The Theorem-1 proof encodes a (schema, graph) pair as such a structure; the
evaluator in :mod:`repro.fo.evaluate` computes boolean queries over it.
Relations additionally keep per-position indexes so the evaluator can
enumerate only matching tuples (sideways information passing), which is what
keeps the FO validator usable on non-toy graphs while remaining a generic
relational-calculus engine.
"""

from __future__ import annotations

from typing import Iterable


class Relation:
    """A finite relation: a set of tuples with per-position hash indexes."""

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self.tuples: set[tuple] = set()
        # position -> value -> set of tuples having that value there
        self._indexes: list[dict[object, set[tuple]]] = [dict() for _ in range(arity)]

    def add(self, row: tuple) -> None:
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got row {row!r}"
            )
        if row in self.tuples:
            return
        self.tuples.add(row)
        for position, value in enumerate(row):
            self._indexes[position].setdefault(value, set()).add(row)

    def __contains__(self, row: tuple) -> bool:
        return row in self.tuples

    def __len__(self) -> int:
        return len(self.tuples)

    def matching(self, pattern: tuple) -> Iterable[tuple]:
        """All tuples matching *pattern*, where None means "any value".

        Uses the index of the most selective bound position.
        """
        best: set[tuple] | None = None
        for position, value in enumerate(pattern):
            if value is None:
                continue
            candidates = self._indexes[position].get(value, set())
            if best is None or len(candidates) < len(best):
                best = candidates
            if best is not None and not best:
                return ()
        rows = self.tuples if best is None else best
        return (
            row
            for row in rows
            if all(
                value is None or row[position] == value
                for position, value in enumerate(pattern)
            )
        )


class FOStructure:
    """A many-sorted structure: named sorts (sub-domains) and named relations."""

    def __init__(self) -> None:
        self._sorts: dict[str, set[object]] = {}
        self._relations: dict[str, Relation] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_sort(self, sort: str, elements: Iterable[object] = ()) -> None:
        self._sorts.setdefault(sort, set()).update(elements)

    def add_to_sort(self, sort: str, element: object) -> None:
        self._sorts.setdefault(sort, set()).add(element)

    def declare_relation(self, name: str, arity: int) -> Relation:
        if name in self._relations:
            if self._relations[name].arity != arity:
                raise ValueError(f"relation {name} redeclared with different arity")
            return self._relations[name]
        relation = Relation(name, arity)
        self._relations[name] = relation
        return relation

    def add_fact(self, name: str, *row: object) -> None:
        relation = self._relations.get(name)
        if relation is None:
            relation = self.declare_relation(name, len(row))
        relation.add(tuple(row))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def sort(self, name: str) -> set[object]:
        try:
            return self._sorts[name]
        except KeyError:
            raise KeyError(f"unknown sort: {name}") from None

    def relation(self, name: str) -> Relation:
        relation = self._relations.get(name)
        if relation is None:
            # an undeclared relation is the empty relation of unknown arity;
            # give it arity 0 lazily only via declare_relation
            raise KeyError(f"unknown relation: {name}")
        return relation

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def holds(self, name: str, row: tuple) -> bool:
        relation = self._relations.get(name)
        return relation is not None and row in relation

    @property
    def sort_names(self) -> tuple[str, ...]:
        return tuple(self._sorts)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}:{len(rel)}" for name, rel in self._relations.items())
        return f"FOStructure({sizes})"
