"""Cardinality interval analysis: sound UNSAT/SAT pre-verdicts by fixpoint.

The pass abstracts every object type's achievable instance count as an
:class:`~repro.analysis.lattice.Interval` and tightens it through the
required-edge constraints of the Theorem-3 ALCQI translation until a
fixpoint.  Two complementary fixpoints run:

**The dead fixpoint (greatest-model UNSAT side).**  A type is *dead* when
the axioms the translation emits force its instance interval to the empty
meet -- no model of the TBox contains a node of the type.  Rules, each
justified by translated axioms only (``@key``/``@noLoops``/``@distinct``
are dropped by the translation and therefore never consulted):

1. *missing required field*: an applicable declaration ``(c, f)`` is
   ``@required`` (axiom ``c ⊑ ∃f.base``) but the object type has no own
   relationship declaration of ``f`` -- the SS4 axiom ``ot ⊑ ≤0 f.⊤``
   contradicts the existential outright.
2. *dead required targets*: a required ``f``-edge must reach a node typed
   by some member of ``allowed(ot, f)`` (the meet of the ``∀f.base``
   axioms, resolved to object types by the interface/union definitions and
   pairwise disjointness); if every member is dead the edge has nowhere to
   land.
3. *unservable obligation*: ``@requiredForTarget`` on ``(d, f)`` forces an
   incoming edge from a ``d``-instance at every node of each target type
   ``x``.  A ``d``-instance is an instance of some object type below ``d``
   (the definition axioms), which must declare ``f`` itself (SS4) and
   admit ``x`` as a target (its ``∀`` meet) and be alive -- when no such
   server type exists, ``x`` is dead.
4. *incoming overflow*: distinct object-type declarers are pairwise
   disjoint, so each ``@requiredForTarget`` from a distinct object type
   below a ``@uniqueForTarget`` cap declarer forces a distinct incoming
   edge counted by the cap; the meet ``[k, ∞) ⊓ [0, 1]`` is empty for
   ``k ≥ 2`` (Example 6.1's unconditional class).
5. *forced cap overflow*: a live type whose own required ``f``-edge would,
   at every live admissible target, collide with a disjoint forced source
   under a cap covering both (diagram (c)'s conditional class, generalized
   to interface-declared obligations disjoint from the entering type).

**The good fixpoint (least-model trivially-SAT side).**  A type is *good*
when a finite tree-shaped model fragment rooted at a fresh node of the
type provably exists: every required field can point at a good target that
tolerates the extra incoming edge, and every incoming obligation at the
root is served by a good server type whose single ``f``-edge can be
redirected at the root without overflowing any cap (counting one forced
source per obligation family conservatively).  Cyclically-required types
never become good -- the tableau keeps deciding those (the paper's diagram
(b) stays undecided here, exactly as it must).  Good is sound for the
tableau's unrestricted-model semantics because the constructed fragment
*is* a model.

Everything in between stays ``None``: the pre-verdict feed only ever skips
tableau work it can reproduce, never guesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..lint.diagnostics import Diagnostic, Severity, Span
from . import lattice
from .framework import AnalysisContext, AnalysisPass, fixpoint
from .graph import FieldEdge, TypeDependencyGraph
from .lattice import Interval


@dataclass
class CardinalityFacts:
    """The pass's fact object: intervals, verdicts, and their reasons."""

    #: dead object type -> human-readable proof sketch
    dead: dict[str, str] = field(default_factory=dict)
    #: object types with a constructed finite model fragment
    good: frozenset[str] = frozenset()
    #: relationship declaration -> SAT (True) / UNSAT (False) / undecided
    field_verdicts: dict[tuple[str, str], bool | None] = field(default_factory=dict)
    #: reasons for decided field verdicts
    field_reasons: dict[tuple[str, str], str] = field(default_factory=dict)
    #: fixpoint round counts (dead, good) for the profile surface
    rounds: dict[str, int] = field(default_factory=dict)

    def interval(self, object_type: str) -> Interval:
        """The instance-count abstraction: ``[0, 0]`` when dead, else
        ``[0, ∞)`` (``0`` is always achievable -- the empty graph)."""
        return lattice.ZERO if object_type in self.dead else lattice.TOP

    def type_verdict(self, object_type: str) -> bool | None:
        if object_type in self.dead:
            return False
        if object_type in self.good:
            return True
        return None

    def type_verdict_name(self, object_type: str) -> str:
        verdict = self.type_verdict(object_type)
        return "sat" if verdict else ("unsat" if verdict is False else "unknown")


def _span_of(edge: FieldEdge) -> Span:
    return Span(edge.line, edge.column)


class CardinalityPass(AnalysisPass):
    """Abstract interpretation of instance-count intervals to a fixpoint."""

    name = "cardinality"
    description = (
        "propagate [lo, hi] instance-count intervals through required-edge "
        "constraints; empty meet proves UNSAT, a constructed fragment "
        "proves SAT"
    )

    def run(self, context: AnalysisContext) -> CardinalityFacts:
        graph = context.graph
        facts = CardinalityFacts()
        facts.rounds["dead"] = _dead_fixpoint(graph, facts.dead)
        good: set[str] = set()
        facts.rounds["good"] = _good_fixpoint(graph, facts.dead, good)
        facts.good = frozenset(good)
        _field_verdicts(graph, facts)
        _emit_diagnostics(context, facts)
        return facts


# --------------------------------------------------------------------------- #
# the dead fixpoint (UNSAT side)
# --------------------------------------------------------------------------- #


def _dead_fixpoint(graph: TypeDependencyGraph, dead: dict[str, str]) -> int:
    schema = graph.schema

    def live_servers(obligation: FieldEdge, target: str) -> list[str]:
        """Object types that could emit the edge an obligation demands."""
        servers: list[str] = []
        for source in sorted(graph.below(obligation.declarer)):
            if source in dead:
                continue
            if (source, obligation.field_name) not in graph.own:
                continue  # SS4: an undeclared field admits no outgoing edges
            if target not in graph.allowed(source, obligation.field_name):
                continue  # the ∀-meet of the source forbids this target
            servers.append(source)
        return servers

    def step() -> bool:
        changed = False
        for object_type in sorted(schema.object_types):
            if object_type in dead:
                continue
            reason = _deadness_reason(graph, dead, live_servers, object_type)
            if reason is not None:
                dead[object_type] = reason
                changed = True
        return changed

    return fixpoint(step, name="cardinality.dead")


def _deadness_reason(
    graph: TypeDependencyGraph,
    dead: dict[str, str],
    live_servers: Callable[[FieldEdge, str], list[str]],
    object_type: str,
) -> str | None:
    # rules 1, 2, 5: the type's required fields
    for field_name, declarations in sorted(graph.required_fields(object_type).items()):
        if (object_type, field_name) not in graph.own:
            declarer = next(e.declarer for e in declarations if e.required)
            return (
                f"{declarer}.{field_name} is @required and applies to "
                f"{object_type}, but {object_type} declares no relationship "
                f"field '{field_name}', so it may emit no '{field_name}' edge "
                f"at all"
            )
        allowed = graph.allowed(object_type, field_name)
        live = sorted(target for target in allowed if target not in dead)
        if not live:
            detail = (
                "has no admissible target object types"
                if not allowed
                else "has only unpopulatable admissible targets ("
                + ", ".join(sorted(allowed))
                + ")"
            )
            return f"the required edge '{field_name}' {detail}"
        clashes = [
            _definite_clash(graph, object_type, target, field_name)
            for target in live
        ]
        if all(clash is not None for clash in clashes):
            cap, other = clashes[0]  # type: ignore[misc]
            return (
                f"the required edge '{field_name}' collides at every live "
                f"target: e.g. at {live[0]}, @uniqueForTarget on "
                f"{cap.location} admits one incoming source but "
                f"@requiredForTarget already forces one from {other}"
            )
    # rules 3, 4: obligations and caps at nodes of this type
    for field_name in graph.obligation_fields_at(object_type):
        obligations = _distinct_obligations(graph, object_type, field_name)
        for obligation in obligations:
            if not live_servers(obligation, object_type):
                return (
                    f"@requiredForTarget on {obligation.location} demands an "
                    f"incoming '{field_name}' edge at every {object_type} "
                    f"node, but no live object type can emit it"
                )
        for cap in _distinct_caps(graph, object_type, field_name):
            forced = sorted(
                {
                    obligation.declarer
                    for obligation in obligations
                    if obligation.declarer in graph.schema.object_types
                    and obligation.declarer in graph.below(cap.declarer)
                }
            )
            incoming = lattice.at_least(len(forced)).meet(lattice.at_most(1))
            if incoming.is_empty:
                return (
                    f"incoming '{field_name}' interval at {object_type} is "
                    f"empty: @requiredForTarget on "
                    f"{' and '.join(f'{t}.{field_name}' for t in forced)} "
                    f"forces {len(forced)} distinct sources, but "
                    f"@uniqueForTarget on {cap.location} caps them at one"
                )
    return None


def _distinct_obligations(
    graph: TypeDependencyGraph, target: str, field_name: str
) -> list[FieldEdge]:
    """Obligations at (target, field), one per declaring type."""
    seen: dict[str, FieldEdge] = {}
    for edge in graph.obligations_at(target, field_name):
        seen.setdefault(edge.declarer, edge)
    return [seen[name] for name in sorted(seen)]


def _distinct_caps(
    graph: TypeDependencyGraph, target: str, field_name: str
) -> list[FieldEdge]:
    seen: dict[str, FieldEdge] = {}
    for edge in graph.caps_at(target, field_name):
        seen.setdefault(edge.declarer, edge)
    return [seen[name] for name in sorted(seen)]


def _definite_clash(
    graph: TypeDependencyGraph, entering: str, target: str, field_name: str
) -> tuple[FieldEdge, str] | None:
    """A cap at (target, field) that the *entering* type's own edge must
    overflow: the cap covers the entering type and some forced source
    provably disjoint from it.  Returns (cap, forced declarer) or None."""
    for cap in _distinct_caps(graph, target, field_name):
        cap_family = graph.below(cap.declarer)
        if entering not in cap_family:
            continue
        for obligation in _distinct_obligations(graph, target, field_name):
            family = graph.below(obligation.declarer)
            # the forced source is an instance of some type in the
            # obligation's family: the clash is definite when that family
            # is nonempty, excludes the entering type (disjointness), and
            # lies wholly under the cap (the forced edge always counts)
            if family and entering not in family and family <= cap_family:
                return cap, obligation.declarer
    return None


# --------------------------------------------------------------------------- #
# the good fixpoint (trivially-SAT side)
# --------------------------------------------------------------------------- #


def _good_fixpoint(
    graph: TypeDependencyGraph, dead: dict[str, str], good: set[str]
) -> int:
    schema = graph.schema

    def servers(obligation: FieldEdge, target: str) -> list[str]:
        """Good object types whose single f-edge can be pointed at target."""
        found: list[str] = []
        for source in sorted(graph.below(obligation.declarer)):
            if source not in good:
                continue
            if (source, obligation.field_name) not in graph.own:
                continue
            if target not in graph.allowed(source, obligation.field_name):
                continue
            found.append(source)
        return found

    def incoming_ok(target: str, field_name: str, entering: str | None) -> bool:
        """Can a fresh *target* node absorb its forced incoming edges (plus
        the optional *entering* parent edge) without overflowing any cap?

        Each obligation family needs either the parent edge (when the
        parent's type lies below the obligation declarer) or a good server.
        Each cap conservatively counts one edge per obligation family with
        any server inside the cap family, plus the parent edge when the cap
        covers the parent -- overcounting only ever withholds SAT.
        """
        obligations = _distinct_obligations(graph, target, field_name)
        served_by_parent: set[str] = set()
        family_servers: dict[str, list[str]] = {}
        for obligation in obligations:
            if entering is not None and entering in graph.below(obligation.declarer):
                served_by_parent.add(obligation.declarer)
                continue
            family = servers(obligation, target)
            if not family:
                return False
            family_servers[obligation.declarer] = family
        for cap in _distinct_caps(graph, target, field_name):
            cap_family = graph.below(cap.declarer)
            total = 1 if (entering is not None and entering in cap_family) else 0
            for obligation in obligations:
                if obligation.declarer in served_by_parent:
                    continue
                if any(
                    server in cap_family
                    for server in family_servers[obligation.declarer]
                ):
                    total += 1
            if lattice.at_least(total).meet(lattice.at_most(1)).is_empty:
                return False
        return True

    def step() -> bool:
        changed = False
        for object_type in sorted(schema.object_types):
            if object_type in good or object_type in dead:
                continue
            if _fragment_exists(graph, good, incoming_ok, object_type):
                good.add(object_type)
                changed = True
        return changed

    return fixpoint(step, name="cardinality.good")


def _fragment_exists(
    graph: TypeDependencyGraph,
    good: set[str],
    incoming_ok: Callable[[str, str, str | None], bool],
    object_type: str,
) -> bool:
    """Does a finite tree-model fragment rooted at the type provably exist?"""
    for field_name in graph.required_fields(object_type):
        if (object_type, field_name) not in graph.own:
            return False  # rule-1 territory; the dead fixpoint handles it
        if not any(
            target in good and incoming_ok(target, field_name, object_type)
            for target in graph.allowed(object_type, field_name)
        ):
            return False
    for field_name in graph.obligation_fields_at(object_type):
        if not incoming_ok(object_type, field_name, None):
            return False
    return True


# --------------------------------------------------------------------------- #
# field (edge-definition) pre-verdicts
# --------------------------------------------------------------------------- #


def _field_verdicts(graph: TypeDependencyGraph, facts: CardinalityFacts) -> None:
    """Decide ``declarer ⊓ ∃f.base`` per relationship declaration where the
    fixpoints allow; interface declarations resolve through implementors."""
    for edge in graph.edges:
        key = (edge.declarer, edge.field_name)
        if edge.declarer in graph.schema.object_types:
            verdict, reason = _object_field_verdict(graph, facts, edge, edge.declarer)
        else:
            verdict, reason = _abstract_field_verdict(graph, facts, edge)
        facts.field_verdicts[key] = verdict
        if reason:
            facts.field_reasons[key] = reason


def _object_field_verdict(
    graph: TypeDependencyGraph,
    facts: CardinalityFacts,
    edge: FieldEdge,
    object_type: str,
) -> tuple[bool | None, str]:
    """The verdict of ``ot ⊓ ∃f.base`` for one candidate emitting type."""
    if object_type in facts.dead:
        return False, f"{object_type} is unpopulatable: {facts.dead[object_type]}"
    if (object_type, edge.field_name) not in graph.own:
        return False, (
            f"{object_type} declares no relationship field '{edge.field_name}' "
            f"and may emit no such edge"
        )
    allowed = graph.allowed(object_type, edge.field_name) & edge.targets
    live = sorted(target for target in allowed if target not in facts.dead)
    if not live:
        detail = (
            "has no admissible target object types"
            if not allowed
            else "lands only on unpopulatable targets"
        )
        return False, f"the edge {detail}"
    clashes = [
        _definite_clash(graph, object_type, target, edge.field_name)
        for target in live
    ]
    if all(clash is not None for clash in clashes):
        return False, (
            "the edge collides with a forced incoming source under a "
            "@uniqueForTarget cap at every live target"
        )
    if object_type not in facts.good:
        return None, ""
    required = any(
        declaration.required
        for declaration in graph.applicable[object_type].get(edge.field_name, ())
    )
    if required:
        # the good fragment already carries this edge
        return True, f"{object_type} has a model fragment with the required edge"
    # a good fragment carries no edge on this non-required field, so one
    # more edge to an enterable good target respects any ≤1 outdegree cap
    good_landing = any(
        target in facts.good
        and _enterable(graph, facts, object_type, target, edge.field_name)
        for target in live
    )
    if good_landing:
        return True, f"{object_type} has a model fragment extendable by this edge"
    return None, ""


def _enterable(
    graph: TypeDependencyGraph,
    facts: CardinalityFacts,
    entering: str,
    target: str,
    field_name: str,
) -> bool:
    """Re-run the good-side incoming check for one extra parent edge."""
    obligations = _distinct_obligations(graph, target, field_name)
    served_by_parent: set[str] = set()
    family_servers: dict[str, list[str]] = {}
    for obligation in obligations:
        if entering in graph.below(obligation.declarer):
            served_by_parent.add(obligation.declarer)
            continue
        family = [
            source
            for source in sorted(graph.below(obligation.declarer))
            if source in facts.good
            and (source, obligation.field_name) in graph.own
            and target in graph.allowed(source, obligation.field_name)
        ]
        if not family:
            return False
        family_servers[obligation.declarer] = family
    for cap in _distinct_caps(graph, target, field_name):
        cap_family = graph.below(cap.declarer)
        total = 1 if entering in cap_family else 0
        for obligation in obligations:
            if obligation.declarer in served_by_parent:
                continue
            if any(server in cap_family for server in family_servers[obligation.declarer]):
                total += 1
        if lattice.at_least(total).meet(lattice.at_most(1)).is_empty:
            return False
    return True


def _abstract_field_verdict(
    graph: TypeDependencyGraph, facts: CardinalityFacts, edge: FieldEdge
) -> tuple[bool | None, str]:
    """An interface/union declaration: SAT iff some implementor's version is
    SAT (the definition axioms make the declarer the union of them)."""
    implementors = sorted(graph.below(edge.declarer))
    if not implementors:
        return False, f"no object type lies below {edge.declarer}"
    verdicts = [
        _object_field_verdict(graph, facts, edge, implementor)
        for implementor in implementors
    ]
    if any(verdict is True for verdict, _reason in verdicts):
        witness = next(
            implementor
            for implementor, (verdict, _reason) in zip(implementors, verdicts)
            if verdict is True
        )
        return True, f"implementor {witness} can emit the edge"
    if all(verdict is False for verdict, _reason in verdicts):
        return False, (
            "no object type below "
            f"{edge.declarer} can emit a '{edge.field_name}' edge"
        )
    return None, ""


# --------------------------------------------------------------------------- #
# diagnostics (PG011 interval-unsat, PG012 interval-dead-edge)
# --------------------------------------------------------------------------- #


def _emit_diagnostics(context: AnalysisContext, facts: CardinalityFacts) -> None:
    graph = context.graph
    for object_type in sorted(facts.dead):
        composite = context.schema.object_types[object_type]
        context.emit(
            Diagnostic(
                code="PG011",
                severity=Severity.ERROR,
                message=(
                    f"cardinality interval analysis proves {object_type} "
                    f"unsatisfiable (instance interval {lattice.ZERO}): "
                    f"{facts.dead[object_type]}"
                ),
                location=object_type,
                span=Span.of(composite),
                rule="interval-unsat",
                unsat_type=object_type,
            )
        )
    for edge in graph.edges:
        key = (edge.declarer, edge.field_name)
        if facts.field_verdicts.get(key) is not False:
            continue
        if edge.declarer in facts.dead:
            continue  # the PG011 finding on the declarer already covers it
        reason = facts.field_reasons.get(key, "the edge can never be populated")
        context.emit(
            Diagnostic(
                code="PG012",
                severity=Severity.WARNING,
                message=(
                    f"interval analysis proves the edge definition can never "
                    f"be populated: {reason}"
                ),
                location=edge.location,
                span=_span_of(edge),
                rule="interval-dead-edge",
            )
        )
