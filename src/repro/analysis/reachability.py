"""Reachability and dead-type analysis over abstract types.

Generalizes PG003/PG005 from object types to the abstract layer:

* **PG017 dead-abstract-type** (WARNING): an interface or union whose
  object-type family is nonempty but *entirely* dead under the cardinality
  fixpoint -- the abstract type denotes the empty concept in every model,
  so every field typed at it and every declaration it makes is vacuous.
  (An interface with no implementors at all is PG005's finding and is not
  re-reported here.)
* **PG018 isolated-type** (INFO): an object type with no position in the
  relationship structure whatsoever -- it declares no relationship fields,
  no relationship field can target it, it implements no interface and
  belongs to no union.  Such a type is well-formed but disconnected from
  the graph part of the schema; commonly a stub or a leftover.
"""

from __future__ import annotations

from ..lint.diagnostics import Diagnostic, Severity, Span
from .cardinality import CardinalityFacts
from .framework import AnalysisContext, AnalysisPass


class ReachabilityPass(AnalysisPass):
    name = "reachability"
    requires = ("cardinality",)
    description = "dead interface/union families and isolated object types"

    def run(self, context: AnalysisContext) -> dict[str, int]:
        schema = context.schema
        graph = context.graph
        cardinality: CardinalityFacts = context.fact("cardinality")
        emitted = {"PG017": 0, "PG018": 0}

        for interface_name in sorted(schema.interface_types):
            family = sorted(schema.implementation(interface_name))
            if family and all(member in cardinality.dead for member in family):
                context.emit(
                    _dead_abstract(
                        "interface",
                        interface_name,
                        family,
                        Span.of(schema.interface_types[interface_name]),
                    )
                )
                emitted["PG017"] += 1
        for union_name in sorted(schema.union_types):
            family = sorted(schema.union(union_name))
            members = [member for member in family if member in schema.object_types]
            if members and all(member in cardinality.dead for member in members):
                context.emit(
                    _dead_abstract(
                        "union",
                        union_name,
                        members,
                        Span.of(schema.union_types[union_name]),
                    )
                )
                emitted["PG017"] += 1

        targeted: set[str] = set()
        for edge in graph.edges:
            targeted.update(edge.targets)
        for object_name in sorted(schema.object_types):
            object_type = schema.object_types[object_name]
            if object_type.interfaces:
                continue
            if object_name in targeted:
                continue
            if any(field_def.is_relationship for field_def in object_type.fields):
                continue
            if any(
                object_name in schema.union(union_name)
                for union_name in schema.union_types
            ):
                continue
            context.emit(
                Diagnostic(
                    code="PG018",
                    severity=Severity.INFO,
                    message=(
                        f"object type {object_name} is isolated: it declares "
                        f"no relationship fields, no relationship field can "
                        f"target it, and it belongs to no interface or union"
                    ),
                    location=object_name,
                    span=Span.of(object_type),
                    rule="isolated-type",
                )
            )
            emitted["PG018"] += 1
        return emitted


def _dead_abstract(
    kind: str, type_name: str, family: list[str], span: Span
) -> Diagnostic:
    return Diagnostic(
        code="PG017",
        severity=Severity.WARNING,
        message=(
            f"{kind} type {type_name} denotes the empty type: every object "
            f"type in its family ({', '.join(family)}) is provably "
            f"unpopulatable"
        ),
        location=type_name,
        span=span,
        rule="dead-abstract-type",
    )
