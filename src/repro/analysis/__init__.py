"""Schema dataflow analysis: fixpoint passes over the type-dependency graph.

The package front door:

* :func:`analyze_schema` -- run the default pass pipeline (cardinality
  intervals, constraint implication, key domains, reachability) over a
  schema, memoized per schema instance;
* :func:`sat_preverdicts` -- the sound SAT/UNSAT pre-verdict feed the
  satisfiability engines consult before constructing a tableau; only
  verdicts the fixpoints *prove* are present, everything else is absent
  and falls through to the engines;
* :func:`analysis_cache_clear` -- drop the per-schema memo (tests and
  benchmarks use it to force cold runs).

The individual passes live in :mod:`repro.analysis.cardinality`,
:mod:`repro.analysis.implication`, :mod:`repro.analysis.keys` and
:mod:`repro.analysis.reachability`; the machinery in
:mod:`repro.analysis.framework` (pass manager) and
:mod:`repro.analysis.graph` (the dependency graph).  Soundness arguments
live with each pass; every claim appeals only to axioms the Theorem-3
translation (:mod:`repro.dl.translate`) actually emits.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .cardinality import CardinalityFacts, CardinalityPass
from .framework import (
    AnalysisContext,
    AnalysisError,
    AnalysisPass,
    AnalysisResult,
    PassManager,
    fixpoint,
)
from .graph import FieldEdge, TypeDependencyGraph
from .implication import ImplicationPass
from .keys import KeyDomainPass
from .lattice import Interval
from .reachability import ReachabilityPass

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import GraphQLSchema

__all__ = [
    "AnalysisContext",
    "AnalysisError",
    "AnalysisPass",
    "AnalysisResult",
    "CardinalityFacts",
    "CardinalityPass",
    "FieldEdge",
    "ImplicationPass",
    "Interval",
    "KeyDomainPass",
    "PassManager",
    "ReachabilityPass",
    "SatPreVerdicts",
    "TypeDependencyGraph",
    "analysis_cache_clear",
    "analyze_schema",
    "default_passes",
    "fixpoint",
    "sat_preverdicts",
]


def default_passes() -> tuple[AnalysisPass, ...]:
    """The standard pipeline, in dependency order."""
    return (
        CardinalityPass(),
        ImplicationPass(),
        KeyDomainPass(),
        ReachabilityPass(),
    )


_results: "weakref.WeakKeyDictionary[GraphQLSchema, AnalysisResult]" = (
    weakref.WeakKeyDictionary()
)
_lock = threading.Lock()


def analyze_schema(schema: "GraphQLSchema", refresh: bool = False) -> AnalysisResult:
    """Run (or replay) the default pipeline over *schema*.

    Results are memoized per schema instance (schemas are immutable once
    built), so the lint rules, the CLI and the satisfiability pre-verdict
    feed share one run.
    """
    if not refresh:
        with _lock:
            cached = _results.get(schema)
        if cached is not None:
            return cached
    result = PassManager(default_passes()).run(schema)
    with _lock:
        _results[schema] = result
    return result


def analysis_cache_clear() -> None:
    """Forget every memoized analysis result."""
    with _lock:
        _results.clear()


@dataclass(frozen=True)
class SatPreVerdicts:
    """The sound pre-verdict feed: only *proven* SAT/UNSAT claims.

    ``types`` maps object-type names to their proven verdict; ``fields``
    maps ``(declaring type, field name)`` relationship declarations to the
    proven verdict of the §6.2 concept ``t ⊓ ∃f.base``.  Absence means the
    fixpoints could not decide and the tableau/bounded engines must run.
    ``@key`` findings never contribute here -- the translation drops keys,
    so key reasoning is not sound for tableau semantics.
    """

    types: dict[str, bool] = field(default_factory=dict)
    fields: dict[tuple[str, str], bool] = field(default_factory=dict)

    @property
    def decided(self) -> int:
        return len(self.types) + len(self.fields)


def sat_preverdicts(schema: "GraphQLSchema") -> SatPreVerdicts:
    """The pre-verdict feed for one schema (memoized via the analysis)."""
    cardinality: CardinalityFacts = analyze_schema(schema).fact("cardinality")
    types: dict[str, bool] = {}
    for type_name in schema.object_types:
        verdict = cardinality.type_verdict(type_name)
        if verdict is not None:
            types[type_name] = verdict
    fields = {
        key: verdict
        for key, verdict in cardinality.field_verdicts.items()
        if verdict is not None
    }
    return SatPreVerdicts(types=types, fields=fields)
