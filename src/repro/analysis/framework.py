"""The pass manager and fixpoint engine of the schema dataflow analyzer.

An :class:`AnalysisPass` computes one *fact* (an arbitrary result object)
over the shared :class:`~repro.analysis.graph.TypeDependencyGraph` and may
emit :class:`~repro.lint.diagnostics.Diagnostic` findings.  Passes declare
dependencies by name (``requires``); the :class:`PassManager` runs them in
registration order, validates the dependencies are met, stores each fact in
the :class:`AnalysisContext`, and records per-pass wall time both in the
returned :class:`AnalysisResult` and -- when observation is installed --
as ``analysis.pass.<name>`` spans and ``analysis.pass.<name>.seconds``
histograms in the obs registry.

:func:`fixpoint` is the shared chaotic-iteration driver: it re-applies a
monotone ``step`` until nothing changes, counts rounds, and guards against
non-monotone steps with an explicit round ceiling (every client pass
operates on a finite powerset lattice, so the ceiling is never hit by a
correct transfer function).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from .. import obs
from ..lint.diagnostics import Diagnostic, sort_key
from .graph import TypeDependencyGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import GraphQLSchema


class AnalysisError(Exception):
    """A mis-assembled pass pipeline (unknown dependency, duplicate name)."""


def fixpoint(
    step: Callable[[], bool], *, name: str = "fixpoint", max_rounds: int = 10_000
) -> int:
    """Iterate *step* until it reports no change; return the round count.

    ``step`` must return True when it changed the state it closes over.
    The ceiling exists purely as a diagnostics-friendly guard against a
    non-monotone step looping forever.
    """
    rounds = 0
    while step():
        rounds += 1
        if rounds >= max_rounds:  # pragma: no cover - authoring error
            raise AnalysisError(f"fixpoint {name!r} did not converge in {rounds} rounds")
    obs.count(f"analysis.fixpoint.{name}.rounds", rounds + 1)
    return rounds + 1


@dataclass
class AnalysisContext:
    """Everything a pass sees: the schema, the graph, and prior facts."""

    schema: "GraphQLSchema"
    graph: TypeDependencyGraph
    facts: dict[str, Any] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def fact(self, name: str) -> Any:
        if name not in self.facts:
            raise AnalysisError(f"pass fact {name!r} has not been computed")
        return self.facts[name]

    def emit(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)


class AnalysisPass:
    """Base class of one analysis pass.

    Subclasses set ``name`` (the fact key), optionally ``requires`` (facts
    that must exist before this pass runs), and implement :meth:`run`
    returning the pass's fact object.
    """

    name: str = ""
    requires: tuple[str, ...] = ()
    description: str = ""

    def run(self, context: AnalysisContext) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class AnalysisResult:
    """The outcome of one pass-manager run over one schema."""

    schema: "GraphQLSchema"
    graph: TypeDependencyGraph
    facts: dict[str, Any]
    diagnostics: tuple[Diagnostic, ...]
    timings: dict[str, float]

    def fact(self, name: str) -> Any:
        if name not in self.facts:
            raise AnalysisError(f"pass fact {name!r} has not been computed")
        return self.facts[name]

    def to_json(self) -> dict:
        """The ``pgschema analyze --json`` payload (stable key set)."""
        from .cardinality import CardinalityFacts

        cardinality = self.facts.get("cardinality")
        types: dict[str, dict] = {}
        fields: dict[str, str] = {}
        if isinstance(cardinality, CardinalityFacts):
            for type_name in sorted(self.schema.object_types):
                types[type_name] = {
                    "interval": str(cardinality.interval(type_name)),
                    "verdict": cardinality.type_verdict_name(type_name),
                }
                reason = cardinality.dead.get(type_name)
                if reason is not None:
                    types[type_name]["reason"] = reason
            for (declarer, field_name), verdict in sorted(
                cardinality.field_verdicts.items()
            ):
                fields[f"{declarer}.{field_name}"] = (
                    "sat" if verdict else ("unsat" if verdict is False else "unknown")
                )
        return {
            "passes": [
                {"name": name, "seconds": round(seconds, 6)}
                for name, seconds in self.timings.items()
            ],
            "types": types,
            "fields": fields,
            "diagnostics": [diagnostic.to_json() for diagnostic in self.diagnostics],
        }


class PassManager:
    """Runs a pass pipeline over a schema, timing and ordering the output."""

    def __init__(self, passes: Sequence[AnalysisPass]) -> None:
        names: set[str] = set()
        for analysis_pass in passes:
            if not analysis_pass.name:
                raise AnalysisError(f"pass {analysis_pass!r} has no name")
            if analysis_pass.name in names:
                raise AnalysisError(f"duplicate pass name {analysis_pass.name!r}")
            for dependency in analysis_pass.requires:
                if dependency not in names:
                    raise AnalysisError(
                        f"pass {analysis_pass.name!r} requires {dependency!r}, "
                        f"which does not run before it"
                    )
            names.add(analysis_pass.name)
        self.passes: tuple[AnalysisPass, ...] = tuple(passes)

    def run(self, schema: "GraphQLSchema") -> AnalysisResult:
        graph = TypeDependencyGraph(schema)
        context = AnalysisContext(schema=schema, graph=graph)
        timings: dict[str, float] = {}
        with obs.span("analysis.run", passes=len(self.passes)):
            for analysis_pass in self.passes:
                with obs.span("analysis.pass", pass_name=analysis_pass.name):
                    started = time.perf_counter()
                    context.facts[analysis_pass.name] = analysis_pass.run(context)
                    elapsed = time.perf_counter() - started
                timings[analysis_pass.name] = elapsed
                obs.observe(f"analysis.pass.{analysis_pass.name}.seconds", elapsed)
        # Report order is deterministic regardless of the order fixpoint
        # iteration happened to emit findings in: the same (line, column,
        # code, location, message) key the lint engine sorts by.
        diagnostics = tuple(sorted(context.diagnostics, key=sort_key))
        return AnalysisResult(
            schema=schema,
            graph=graph,
            facts=dict(context.facts),
            diagnostics=diagnostics,
            timings=timings,
        )
