"""Constraint implication and contradiction across inheritance.

Two findings over pairs of declarations of the *same* relationship field:

* **PG013 implied-directive** (INFO): a directive whose translated axiom is
  entailed by another declaration's axiom, so removing it changes no
  instance.  Detected cases, each argued from the translation:

  - ``@required`` on an object type's own field when an applicable
    interface declaration of the field is ``@required`` at a base whose
    family is contained in the own base's family -- the interface's
    ``c ⊑ ∃f.base_c`` forces an edge that already satisfies the own
    existential.
  - ``@uniqueForTarget`` on an own field when an applicable interface
    declaration carries it at a base whose family *contains* the own
    base's family -- the interface cap ``≤1 f⁻.c`` over a larger source
    family already caps the own, smaller one.
  - ``@requiredForTarget`` on an interface field when some implementor's
    own declaration carries it at a base whose family contains the
    interface base's family -- the implementor's stronger obligation
    (``∃f⁻.ot ⊑ ∃f⁻.it``) is forced at every node the interface
    declaration obligates.

* **PG014 contradictory-inheritance**: an own relationship declaration
  whose target family is nonempty yet the meet with the applicable
  interface declarations' families is empty -- no edge can satisfy all
  ``∀f.base`` axioms at once.  ERROR when the field is required (the type
  is then unsatisfiable, and the cardinality pass proves it); WARNING
  otherwise (the edge is merely unpopulatable).
"""

from __future__ import annotations

from typing import Iterator

from ..lint.diagnostics import Diagnostic, Severity, Span
from .framework import AnalysisContext, AnalysisPass
from .graph import FieldEdge, TypeDependencyGraph


class ImplicationPass(AnalysisPass):
    name = "implication"
    requires = ("cardinality",)
    description = (
        "redundant and mutually-contradictory directive pairs across "
        "interface inheritance and union membership"
    )

    def run(self, context: AnalysisContext) -> dict[str, int]:
        graph = context.graph
        emitted = {"PG013": 0, "PG014": 0}
        for diagnostic in _implied_directives(graph):
            context.emit(diagnostic)
            emitted["PG013"] += 1
        for diagnostic in _contradictory_inheritance(graph):
            context.emit(diagnostic)
            emitted["PG014"] += 1
        return emitted


def _own_and_interface_pairs(
    graph: TypeDependencyGraph,
) -> Iterator[tuple[FieldEdge, FieldEdge]]:
    """(own edge, applicable interface edge) pairs for every object type."""
    for object_type in sorted(graph.schema.object_types):
        for field_name, declarations in sorted(
            graph.applicable.get(object_type, {}).items()
        ):
            own = graph.own.get((object_type, field_name))
            if own is None:
                continue
            for declaration in declarations:
                if declaration.declarer != object_type:
                    yield own, declaration


def _implied_directives(graph: TypeDependencyGraph) -> Iterator[Diagnostic]:
    reported: set[tuple[str, str, str]] = set()

    def once(
        key: tuple[str, str, str], diagnostic: Diagnostic
    ) -> Iterator[Diagnostic]:
        if key not in reported:
            reported.add(key)
            yield diagnostic

    for own, parent in _own_and_interface_pairs(graph):
        if own.required and parent.required and parent.targets <= own.targets:
            yield from once(
                (own.location, "required", parent.declarer),
                _implied(
                    own,
                    f"@required on {own.location} is implied: "
                    f"{parent.location} is already @required at "
                    f"{parent.base}, whose object types all satisfy the "
                    f"{own.base} typing",
                ),
            )
        if (
            own.unique_for_target
            and parent.unique_for_target
            and own.targets <= parent.targets
        ):
            yield from once(
                (own.location, "uniqueForTarget", parent.declarer),
                _implied(
                    own,
                    f"@uniqueForTarget on {own.location} is implied: "
                    f"{parent.location} already caps incoming "
                    f"'{own.field_name}' edges from the larger "
                    f"{parent.declarer} family",
                ),
            )
        if (
            parent.required_for_target
            and own.required_for_target
            and parent.targets <= own.targets
        ):
            yield from once(
                (parent.location, "requiredForTarget", own.declarer),
                _implied(
                    parent,
                    f"@requiredForTarget on {parent.location} is implied: "
                    f"{own.location} already forces an incoming "
                    f"'{own.field_name}' edge from {own.declarer} (below "
                    f"{parent.declarer}) at every node of {parent.base}",
                ),
            )


def _implied(edge: FieldEdge, message: str) -> Diagnostic:
    return Diagnostic(
        code="PG013",
        severity=Severity.INFO,
        message=message,
        location=edge.location,
        span=Span(edge.line, edge.column),
        rule="implied-directive",
    )


def _contradictory_inheritance(graph: TypeDependencyGraph) -> Iterator[Diagnostic]:
    for object_type in sorted(graph.schema.object_types):
        for field_name, declarations in sorted(
            graph.applicable.get(object_type, {}).items()
        ):
            own = graph.own.get((object_type, field_name))
            if own is None or not own.targets:
                continue  # an empty own family is PG004/PG005 territory
            if len(declarations) < 2:
                continue
            if graph.allowed(object_type, field_name):
                continue
            parents = sorted(
                declaration.location
                for declaration in declarations
                if declaration.declarer != object_type
            )
            required = any(declaration.required for declaration in declarations)
            yield Diagnostic(
                code="PG014",
                severity=Severity.ERROR if required else Severity.WARNING,
                message=(
                    f"contradictory inheritance: the target families of "
                    f"{own.location} (type {own.base}) and "
                    f"{', '.join(parents)} are disjoint, so no "
                    f"'{field_name}' edge out of {object_type} can satisfy "
                    f"all declared typings"
                    + (
                        "; the field is required, making the type "
                        "unsatisfiable" if required else ""
                    )
                ),
                location=own.location,
                span=Span(own.line, own.column),
                rule="contradictory-inheritance",
            )
