"""The abstract domain of the dataflow analyzer: cardinality intervals.

An :class:`Interval` ``[lo, hi]`` abstracts a set of admissible counts --
how many instances of a type a model may contain, or how many incoming
edges a node may carry.  ``hi is None`` means unbounded (``[lo, ∞)``); an
interval whose bounds cross (``lo > hi``) is *empty* and denotes an
unsatisfiable constraint set.  ``meet`` (intersection) combines constraints
soundly: the meet of everything a schema demands of a node is empty exactly
when no node can satisfy all demands at once.

The lattice is the usual interval lattice over ℕ ∪ {∞}: ``TOP = [0, ∞)``
(no information), meet is bound-wise ``max``/``min``, join is the convex
hull.  All operations are total and the domain has no infinite descending
chains an analysis could diverge on (bounds only tighten toward a crossing).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    """A cardinality interval ``[lo, hi]`` with ``hi=None`` meaning ``∞``."""

    lo: int = 0
    hi: int | None = None

    @property
    def is_empty(self) -> bool:
        """True when the bounds cross: no count satisfies the constraints."""
        return self.hi is not None and self.lo > self.hi

    @property
    def is_unbounded(self) -> bool:
        return self.hi is None

    def meet(self, other: "Interval") -> "Interval":
        """Intersection: the counts admitted by *both* constraint sets."""
        lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        return Interval(lo, hi)

    def join(self, other: "Interval") -> "Interval":
        """Convex hull: the tightest interval covering both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def contains(self, count: int) -> bool:
        return count >= self.lo and (self.hi is None or count <= self.hi)

    def __str__(self) -> str:
        if self.is_empty:
            return "∅"
        upper = "∞)" if self.hi is None else f"{self.hi}]"
        return f"[{self.lo}, {upper}"


#: No information: any count is possible.
TOP = Interval(0, None)

#: The canonical empty interval (an unsatisfiable constraint set).
EMPTY = Interval(1, 0)

#: Exactly zero instances: a provably dead type.
ZERO = Interval(0, 0)

#: One or more: a type proven populatable (never constrained below 1).
ONE_OR_MORE = Interval(1, None)


def at_least(lower: int) -> Interval:
    """The lower-bound constraint ``[lower, ∞)``."""
    return Interval(lower, None)


def at_most(upper: int) -> Interval:
    """The upper-bound constraint ``[0, upper]``."""
    return Interval(0, upper)


def exactly(count: int) -> Interval:
    return Interval(count, count)
