"""Key-domain collision analysis (PG015) and vacuous keys (PG016).

``@key`` constrains the *values* of attribute fields, which the Theorem-3
translation deliberately drops (fresh values can always be picked -- for
*unbounded* domains).  Over finite value domains that argument breaks
numerically: a key built only from ``Boolean`` and enum-typed fields admits
at most ``∏ |domain|`` distinct value tuples, so any instance with more
nodes of the keyed type provably collides.  This pass bounds those domains
statically:

* **PG015 key-domain-collision**: every key field has a finite domain.
  WARNING when the product is 1 (at most a single node of the type can
  ever exist -- with two nodes the key is violated), INFO for any other
  finite product (a hard instance-size ceiling worth knowing about).
* **PG016 vacuous-key**: a key whose field set contains another key's
  field set as a proper subset -- uniqueness on the smaller tuple already
  forces uniqueness on the larger, so the larger key never rejects
  anything the smaller admits.  Exact duplicates (same fields, any order)
  are reported too unless they are textually identical (PG008 owns those).

Because keys are dropped from the translation, these findings are *lint
only*: they never feed the satisfiability pre-verdicts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..lint.diagnostics import Diagnostic, Severity, Span
from ..schema.directives import KEY
from .framework import AnalysisContext, AnalysisPass

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import GraphQLSchema, InterfaceType, ObjectType


def _keys_of(composite: "ObjectType | InterfaceType") -> tuple[tuple[str, ...], ...]:
    """The @key field tuples of any composite (interfaces can carry keys
    too; ``ObjectType.keys`` exists but ``InterfaceType`` has no shortcut)."""
    keys: list[tuple[str, ...]] = []
    for directive in composite.directives:
        if directive.name != KEY:
            continue
        fields = directive.argument("fields", ())
        if not isinstance(fields, tuple):
            fields = (fields,) if fields else ()
        keys.append(tuple(str(name) for name in fields))
    return tuple(keys)


def _domain_size(schema: "GraphQLSchema", base: str) -> int | None:
    """|domain| of a scalar type, None when unbounded."""
    if base == "Boolean":
        return 2
    if schema.scalars.is_enum(base):
        return len(schema.scalars.enum_values(base))
    return None


class KeyDomainPass(AnalysisPass):
    name = "keys"
    description = "statically bound @key value domains; flag collisions and vacuous keys"

    def run(self, context: AnalysisContext) -> dict[str, int]:
        emitted = {"PG015": 0, "PG016": 0}
        schema = context.schema
        for type_name in sorted({**schema.object_types, **schema.interface_types}):
            composite = schema.composite(type_name)
            keys = _keys_of(composite)
            for diagnostic in _finite_domain_findings(schema, type_name, keys):
                context.emit(diagnostic)
                emitted["PG015"] += 1
            for diagnostic in _vacuous_key_findings(type_name, composite, keys):
                context.emit(diagnostic)
                emitted["PG016"] += 1
        return emitted


def _finite_domain_findings(
    schema: "GraphQLSchema", type_name: str, keys: tuple[tuple[str, ...], ...]
) -> Iterator[Diagnostic]:
    composite = schema.composite(type_name)
    for key_fields in keys:
        if not key_fields:
            continue  # PG007 reports empty keys
        product = 1
        sizes: list[str] = []
        for field_name in key_fields:
            field_def = composite.field(field_name)
            if field_def is None or field_def.is_relationship:
                product = 0  # malformed key: PG007's finding, not ours
                break
            size = _domain_size(schema, field_def.type.base)
            if size is None:
                product = 0
                break
            product *= size
            sizes.append(f"{field_name}: {field_def.type.base} ({size})")
        if product <= 0:
            continue
        node_word = "node" if product == 1 else "nodes"
        yield Diagnostic(
            code="PG015",
            severity=Severity.WARNING if product == 1 else Severity.INFO,
            message=(
                f"@key({', '.join(key_fields)}) on {type_name} spans only "
                f"finite value domains ({'; '.join(sizes)}): at most "
                f"{product} {node_word} of the keyed family can exist "
                f"before the key provably collides"
            ),
            location=type_name,
            span=Span.of(composite),
            rule="key-domain-collision",
        )


def _vacuous_key_findings(
    type_name: str,
    composite: "ObjectType | InterfaceType",
    keys: tuple[tuple[str, ...], ...],
) -> Iterator[Diagnostic]:
    field_sets = [frozenset(key_fields) for key_fields in keys]
    for index, key_fields in enumerate(keys):
        if not key_fields:
            continue
        this = field_sets[index]
        for other_index, other in enumerate(field_sets):
            if other_index == index:
                continue
            proper_superset = other < this
            reordered_duplicate = (
                other == this
                and other_index < index
                and keys[other_index] != key_fields
            )
            if proper_superset or reordered_duplicate:
                smaller = ", ".join(sorted(other))
                detail = (
                    f"@key({smaller}) already forces uniqueness on any "
                    f"superset of its fields"
                    if proper_superset
                    else f"it repeats @key({smaller}) with the fields reordered"
                )
                yield Diagnostic(
                    code="PG016",
                    severity=Severity.INFO,
                    message=(
                        f"@key({', '.join(key_fields)}) on {type_name} is "
                        f"vacuous: {detail}"
                    ),
                    location=type_name,
                    span=Span.of(composite),
                    rule="vacuous-key",
                )
                break
