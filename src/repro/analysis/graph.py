"""The type-dependency graph the dataflow passes run over.

Nodes are the schema's composite types (object, interface, union); edges
are relationship field *declarations*, annotated with the directive facts
the ALCQI translation actually uses (``@required``, ``@requiredForTarget``,
``@uniqueForTarget``, list-ness).  The graph also precomputes the indexes
every pass needs in O(1):

* ``below(t)`` -- the object types at or below ``t`` (the type itself, its
  implementors, or its union members), straight from the schema model;
* ``applicable(ot)`` -- for an object type, every declaration ``(c, f)``
  with ``ot ∈ below(c)``: the declarations whose translated axioms
  constrain ``ot``'s nodes;
* ``allowed(ot, f)`` -- the admissible target object types of an ``f``-edge
  out of an ``ot`` node: the intersection of ``below(base)`` over every
  applicable declaration of ``f`` (the conjunction of the translation's
  ``∀f.basetype`` axioms).  Built for possibly *inconsistent* schemas
  (``parse_schema(check=False)``), where the intersection can genuinely be
  empty;
* ``obligations_at(x, f)`` / ``caps_at(x, f)`` -- the declarations whose
  ``@requiredForTarget`` lower bound / ``@uniqueForTarget`` cap applies at
  a node of object type ``x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..schema.directives import (
    DISTINCT,
    NO_LOOPS,
    REQUIRED,
    REQUIRED_FOR_TARGET,
    UNIQUE_FOR_TARGET,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import FieldDefinition, GraphQLSchema


@dataclass(frozen=True)
class FieldEdge:
    """One relationship field declaration, as a dependency-graph edge bundle.

    ``targets`` is ``below(base)``: the object types an edge declared here
    may point at.  ``line``/``column`` preserve the declaration's source
    span for diagnostics.
    """

    declarer: str
    field_name: str
    base: str
    targets: frozenset[str]
    is_list: bool
    required: bool
    required_for_target: bool
    unique_for_target: bool
    distinct: bool
    no_loops: bool
    line: int = 0
    column: int = 0

    @property
    def location(self) -> str:
        return f"{self.declarer}.{self.field_name}"


class TypeDependencyGraph:
    """The annotated dependency graph of one schema, with pass indexes."""

    def __init__(self, schema: "GraphQLSchema") -> None:
        self.schema = schema
        self.edges: tuple[FieldEdge, ...] = tuple(self._build_edges(schema))
        #: edges grouped by declaring type, in declaration order
        self.out_edges: dict[str, tuple[FieldEdge, ...]] = {}
        #: the own declaration of (object type, field name), when present
        self.own: dict[tuple[str, str], FieldEdge] = {}
        #: (target object type, field name) -> @requiredForTarget declarations
        self.obligations: dict[tuple[str, str], tuple[FieldEdge, ...]] = {}
        #: (target object type, field name) -> @uniqueForTarget declarations
        self.caps: dict[tuple[str, str], tuple[FieldEdge, ...]] = {}
        #: object type -> field name -> every declaration applicable to it
        self.applicable: dict[str, dict[str, tuple[FieldEdge, ...]]] = {
            name: {} for name in schema.object_types
        }
        out: dict[str, list[FieldEdge]] = {}
        obligations: dict[tuple[str, str], list[FieldEdge]] = {}
        caps: dict[tuple[str, str], list[FieldEdge]] = {}
        applicable: dict[str, dict[str, list[FieldEdge]]] = {
            name: {} for name in schema.object_types
        }
        for edge in self.edges:
            out.setdefault(edge.declarer, []).append(edge)
            if edge.declarer in schema.object_types:
                self.own[(edge.declarer, edge.field_name)] = edge
            for object_type in self.below(edge.declarer):
                applicable[object_type].setdefault(edge.field_name, []).append(edge)
            if edge.required_for_target:
                for target in edge.targets:
                    obligations.setdefault((target, edge.field_name), []).append(edge)
            if edge.unique_for_target:
                for target in edge.targets:
                    caps.setdefault((target, edge.field_name), []).append(edge)
        self.out_edges = {name: tuple(edges) for name, edges in out.items()}
        self.obligations = {key: tuple(edges) for key, edges in obligations.items()}
        self.caps = {key: tuple(edges) for key, edges in caps.items()}
        self.applicable = {
            name: {field: tuple(edges) for field, edges in fields.items()}
            for name, fields in applicable.items()
        }
        self._allowed: dict[tuple[str, str], frozenset[str]] = {}

    @staticmethod
    def _build_edges(schema: "GraphQLSchema") -> Iterator[FieldEdge]:
        for type_name, _field_name, field_def in schema.field_declarations():
            if not field_def.is_relationship:
                continue
            yield FieldEdge(
                declarer=type_name,
                field_name=field_def.name,
                base=field_def.type.base,
                targets=schema.object_types_below(field_def.type.base),
                is_list=field_def.type.is_list,
                required=field_def.has_directive(REQUIRED),
                required_for_target=field_def.has_directive(REQUIRED_FOR_TARGET),
                unique_for_target=field_def.has_directive(UNIQUE_FOR_TARGET),
                distinct=field_def.has_directive(DISTINCT),
                no_loops=field_def.has_directive(NO_LOOPS),
                line=getattr(field_def, "line", 0) or 0,
                column=getattr(field_def, "column", 0) or 0,
            )

    @property
    def nodes(self) -> tuple[str, ...]:
        """Every composite/union type name, objects first, sorted."""
        schema = self.schema
        return tuple(
            sorted(schema.object_types)
            + sorted(schema.interface_types)
            + sorted(schema.union_types)
        )

    def below(self, type_name: str) -> frozenset[str]:
        return self.schema.object_types_below(type_name)

    def field_declaration(
        self, type_name: str, field_name: str
    ) -> "FieldDefinition | None":
        return self.schema.field(type_name, field_name)

    def allowed(self, object_type: str, field_name: str) -> frozenset[str]:
        """Admissible targets of an ``f``-edge out of an ``ot`` node.

        The intersection of ``below(base)`` over every applicable
        declaration -- each contributes a ``∀f.basetype`` axiom the edge
        target must satisfy at once.  Empty when the declarations
        contradict (possible in ``check=False`` schemas) or the family of
        some base is empty.  Returns the empty set for a field the type
        has no applicable declaration of (such an edge is forbidden
        outright by the translation's ``≤0`` axioms).
        """
        key = (object_type, field_name)
        cached = self._allowed.get(key)
        if cached is not None:
            return cached
        declarations = self.applicable.get(object_type, {}).get(field_name, ())
        result: frozenset[str] | None = None
        for edge in declarations:
            result = edge.targets if result is None else result & edge.targets
        computed = frozenset() if result is None else result
        self._allowed[key] = computed
        return computed

    def obligations_at(self, target: str, field_name: str) -> tuple[FieldEdge, ...]:
        return self.obligations.get((target, field_name), ())

    def caps_at(self, target: str, field_name: str) -> tuple[FieldEdge, ...]:
        return self.caps.get((target, field_name), ())

    def required_fields(self, object_type: str) -> dict[str, tuple[FieldEdge, ...]]:
        """Field name -> applicable declarations, for every field some
        applicable declaration marks ``@required``."""
        return {
            field_name: declarations
            for field_name, declarations in self.applicable.get(object_type, {}).items()
            if any(edge.required for edge in declarations)
        }

    def obligation_fields_at(self, object_type: str) -> tuple[str, ...]:
        """The field names with a ``@requiredForTarget`` obligation at nodes
        of *object_type*, sorted."""
        return tuple(
            sorted(
                field_name
                for (target, field_name) in self.obligations
                if target == object_type
            )
        )
