"""The lint rule catalogue: polynomial-time static diagnostics.

Each rule is a function over a built :class:`~repro.schema.model.GraphQLSchema`
that yields :class:`~repro.lint.diagnostics.Diagnostic` objects.  Rules are
registered with a stable code (``PG001``...), a slug name, and an ``unsat``
flag marking the rules whose *error* findings constitute a proof that an
object type is unsatisfiable.  Those findings are sound with respect to the
Theorem-3 ALCQI translation -- every axiom the reasoning below appeals to is
one the translation emits -- so the satisfiability engine can return UNSAT
from them without running the PSPACE tableau (see
:mod:`repro.satisfiability.engine`).

The two unsat-class rules:

* **PG001** (conflicting cardinality, Example 6.1's class).  For a target
  object type ``x`` and field ``f``, ``@requiredForTarget`` on disjoint
  declaring object types forces distinct incoming ``f``-sources, while
  ``@uniqueForTarget`` on a common supertype caps them at one.  Both the
  unconditional form (diagram (a): the target type itself is unsatisfiable)
  and the conditional form (diagram (c): a type whose own ``@required`` edge
  would overflow the cap at every admissible target) are detected.
* **PG003** (dead required targets).  A ``@required`` edge whose admissible
  target object types are all provably unpopulatable -- or an incoming
  ``@requiredForTarget`` obligation from a provably unpopulatable source --
  makes the declaring/target type unpopulatable in turn; the set is closed
  under a fixpoint seeded with the PG001 verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..schema.directives import (
    DISTINCT,
    KEY,
    NO_LOOPS,
    REQUIRED,
    REQUIRED_FOR_TARGET,
    UNIQUE_FOR_TARGET,
)
from ..schema.subtype import is_subtype
from .diagnostics import Diagnostic, Severity, Span

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import AppliedDirective, FieldDefinition, GraphQLSchema

CheckFunction = Callable[["GraphQLSchema"], Iterator[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """A registered rule: metadata plus its check function."""

    code: str
    name: str
    description: str
    unsat: bool
    check: CheckFunction


#: The registry, keyed and ordered by code.
RULES: dict[str, LintRule] = {}


def rule(
    code: str, name: str, description: str, unsat: bool = False
) -> Callable[[CheckFunction], CheckFunction]:
    """Class decorator registering a check function under a stable code."""

    def decorate(fn: CheckFunction) -> CheckFunction:
        if code in RULES:  # pragma: no cover - authoring error
            raise ValueError(f"duplicate lint rule code {code}")
        RULES[code] = LintRule(code, name, description, unsat, fn)
        return fn

    return decorate


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, ordered by code."""
    return tuple(RULES[code] for code in sorted(RULES))


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #


def _relationship_declarations(
    schema: "GraphQLSchema",
) -> list[tuple[str, "FieldDefinition"]]:
    """(declaring type name, field definition) for every relationship field."""
    return [
        (type_name, field_def)
        for type_name, _field_name, field_def in schema.field_declarations()
        if field_def.is_relationship
    ]


def _below(schema: "GraphQLSchema", type_name: str) -> frozenset[str]:
    return schema.object_types_below(type_name)


def _covered(schema: "GraphQLSchema", object_type: str, ancestor: str) -> bool:
    """Is *object_type* ⊑ *ancestor* (itself / implementor / union member)?"""
    return object_type in _below(schema, ancestor)


@dataclass(frozen=True)
class _IncomingBound:
    """One declaration contributing an incoming-edge bound at some target."""

    declarer: str
    field: "FieldDefinition"


def _incoming_bounds(
    schema: "GraphQLSchema", directive_name: str, object_declarers_only: bool
) -> dict[tuple[str, str], list[_IncomingBound]]:
    """Map (target object type, field name) -> declarations with *directive*.

    For ``@requiredForTarget`` (lower bounds) only object-type declarers are
    collected: distinct object types are disjoint, so each contributes a
    *distinct* required source node -- the soundness of PG001 rests on that.
    For ``@uniqueForTarget`` (caps) interface declarers count too.
    """
    bounds: dict[tuple[str, str], list[_IncomingBound]] = {}
    for declarer, field_def in _relationship_declarations(schema):
        if not field_def.has_directive(directive_name):
            continue
        if object_declarers_only and declarer not in schema.object_types:
            continue
        for target in _below(schema, field_def.type.base):
            bounds.setdefault((target, field_def.name), []).append(
                _IncomingBound(declarer, field_def)
            )
    return bounds


def _conflicting_unsat_types(schema: "GraphQLSchema") -> dict[str, Diagnostic]:
    """All object types the PG001 reasoning proves unsatisfiable."""
    verdicts: dict[str, Diagnostic] = {}
    lower = _incoming_bounds(schema, REQUIRED_FOR_TARGET, object_declarers_only=True)
    caps = _incoming_bounds(schema, UNIQUE_FOR_TARGET, object_declarers_only=False)

    # Unconditional conflicts: the target type itself cannot be populated.
    for (target, field_name), cap_list in sorted(caps.items()):
        sources = lower.get((target, field_name), [])
        for cap in cap_list:
            required = sorted(
                {b.declarer for b in sources if _covered(schema, b.declarer, cap.declarer)}
            )
            if len(required) >= 2 and target not in verdicts:
                verdicts[target] = Diagnostic(
                    code="PG001",
                    severity=Severity.ERROR,
                    message=(
                        f"conflicting cardinality bounds: @requiredForTarget on "
                        f"{' and '.join(f'{t}.{field_name}' for t in required)} "
                        f"forces {len(required)} distinct incoming '{field_name}' "
                        f"edges at every {target} node, but @uniqueForTarget on "
                        f"{cap.declarer}.{field_name} admits at most one; no "
                        f"{target} node can exist"
                    ),
                    location=target,
                    span=Span.of(cap.field),
                    rule="conflicting-cardinality",
                    unsat_type=target,
                )

    # Conditional conflicts: a type whose own @required edge overflows the
    # cap at *every* admissible target (diagram (c)'s merge-forcing pattern).
    for type_name in sorted(schema.object_types):
        if type_name in verdicts:
            continue
        object_type = schema.object_types[type_name]
        for field_def in object_type.fields:
            if not (field_def.is_relationship and field_def.has_directive(REQUIRED)):
                continue
            targets = sorted(_below(schema, field_def.type.base))
            if not targets:
                continue  # PG003 reports empty target families
            witnesses: list[tuple[str, str, str]] = []
            for target in targets:
                clash = None
                for cap in caps.get((target, field_def.name), []):
                    if not _covered(schema, type_name, cap.declarer):
                        continue
                    others = [
                        b.declarer
                        for b in lower.get((target, field_def.name), [])
                        if b.declarer != type_name
                        and _covered(schema, b.declarer, cap.declarer)
                    ]
                    if others:
                        clash = (target, cap.declarer, sorted(others)[0])
                        break
                if clash is None:
                    witnesses = []
                    break
                witnesses.append(clash)
            if witnesses:
                target, cap_declarer, other = witnesses[0]
                verdicts[type_name] = Diagnostic(
                    code="PG001",
                    severity=Severity.ERROR,
                    message=(
                        f"conflicting cardinality bounds: the @required edge "
                        f"'{field_def.name}' must reach a target that already "
                        f"needs an incoming '{field_def.name}' edge from "
                        f"{other} (@requiredForTarget), while @uniqueForTarget "
                        f"on {cap_declarer}.{field_def.name} admits only one "
                        f"incoming source -- the {type_name} node would have to "
                        f"merge with a disjoint {other} node; no {type_name} "
                        f"node can exist"
                    ),
                    location=f"{type_name}.{field_def.name}",
                    span=Span.of(field_def),
                    rule="conflicting-cardinality",
                    unsat_type=type_name,
                )
                break
    return verdicts


def _unpopulatable_types(schema: "GraphQLSchema") -> dict[str, Diagnostic | None]:
    """Fixpoint of provably unpopulatable object types.

    Seeded with the PG001 verdicts (mapped to ``None`` so PG003 does not
    re-report them); propagation steps attach a fresh PG003 diagnostic.
    """
    dead: dict[str, Diagnostic | None] = {
        name: None for name in _conflicting_unsat_types(schema)
    }
    changed = True
    while changed:
        changed = False
        # a @required edge whose admissible targets are all dead
        for type_name in sorted(schema.object_types):
            if type_name in dead:
                continue
            object_type = schema.object_types[type_name]
            for field_def in object_type.fields:
                if not (
                    field_def.is_relationship and field_def.has_directive(REQUIRED)
                ):
                    continue
                targets = sorted(_below(schema, field_def.type.base))
                if all(target in dead for target in targets):
                    detail = (
                        f"the target family of type {field_def.type} is empty"
                        if not targets
                        else "every admissible target type ("
                        + ", ".join(targets)
                        + ") is itself unpopulatable"
                    )
                    dead[type_name] = Diagnostic(
                        code="PG003",
                        severity=Severity.ERROR,
                        message=(
                            f"required edge '{field_def.name}' can never be "
                            f"populated: {detail}; no {type_name} node can exist"
                        ),
                        location=f"{type_name}.{field_def.name}",
                        span=Span.of(field_def),
                        rule="dead-required-target",
                        unsat_type=type_name,
                    )
                    changed = True
                    break
        # a @requiredForTarget obligation from an unpopulatable source family
        for declarer, field_def in _relationship_declarations(schema):
            if not field_def.has_directive(REQUIRED_FOR_TARGET):
                continue
            sources = _below(schema, declarer)
            if not sources or not all(source in dead for source in sources):
                continue
            for target in sorted(_below(schema, field_def.type.base)):
                if target in dead:
                    continue
                dead[target] = Diagnostic(
                    code="PG003",
                    severity=Severity.ERROR,
                    message=(
                        f"@requiredForTarget on {declarer}.{field_def.name} "
                        f"demands an incoming edge from {declarer}, but no "
                        f"{declarer} node can exist; no {target} node can exist"
                    ),
                    location=target,
                    span=Span.of(field_def),
                    rule="dead-required-target",
                    unsat_type=target,
                )
                changed = True
    return dead


# --------------------------------------------------------------------------- #
# the rules
# --------------------------------------------------------------------------- #


@rule(
    "PG001",
    "conflicting-cardinality",
    "@requiredForTarget lower bounds exceed a @uniqueForTarget cap "
    "(Example 6.1's class); the affected type is unsatisfiable",
    unsat=True,
)
def check_conflicting_cardinality(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    yield from _conflicting_unsat_types(schema).values()


@rule(
    "PG002",
    "noloops-forced-cycle",
    "@noLoops on a required edge whose only admissible target is the "
    "declaring type forces every instance into a multi-node cycle",
)
def check_noloops_forced_cycle(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    for type_name in sorted(schema.object_types):
        for field_def in schema.object_types[type_name].fields:
            if not field_def.is_relationship or not field_def.has_directive(NO_LOOPS):
                continue
            if not (
                field_def.has_directive(REQUIRED)
                or field_def.has_directive(REQUIRED_FOR_TARGET)
            ):
                continue
            if _below(schema, field_def.type.base) == frozenset({type_name}):
                yield Diagnostic(
                    code="PG002",
                    severity=Severity.WARNING,
                    message=(
                        f"@noLoops with a required '{field_def.name}' edge whose "
                        f"only admissible target is {type_name} itself: every "
                        f"{type_name} node needs a distinct {type_name} partner, "
                        f"so single-node instances are impossible"
                    ),
                    location=f"{type_name}.{field_def.name}",
                    span=Span.of(field_def),
                    rule="noloops-forced-cycle",
                )


@rule(
    "PG003",
    "dead-required-target",
    "a @required edge into a provably unpopulatable target family (or a "
    "@requiredForTarget obligation from one), propagated to a fixpoint; "
    "the affected type is unsatisfiable",
    unsat=True,
)
def check_dead_required_target(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    for diagnostic in _unpopulatable_types(schema).values():
        if diagnostic is not None:
            yield diagnostic


@rule(
    "PG004",
    "unpopulatable-edge",
    "a non-required edge definition that no graph can ever populate",
)
def check_unpopulatable_edge(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    dead = _unpopulatable_types(schema)
    for declarer, field_def in _relationship_declarations(schema):
        if field_def.has_directive(REQUIRED):
            continue  # PG003 owns the required case
        targets = sorted(_below(schema, field_def.type.base))
        if targets and not all(target in dead for target in targets):
            continue
        detail = (
            f"type {field_def.type} has no object types below it"
            if not targets
            else "every admissible target type ("
            + ", ".join(targets)
            + ") is unpopulatable"
        )
        yield Diagnostic(
            code="PG004",
            severity=Severity.WARNING,
            message=f"edge definition can never be populated: {detail}",
            location=f"{declarer}.{field_def.name}",
            span=Span.of(field_def),
            rule="unpopulatable-edge",
        )


@rule(
    "PG005",
    "unimplemented-interface",
    "an interface no object type implements denotes the empty type",
)
def check_unimplemented_interface(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    for interface_name in sorted(schema.interface_types):
        if not schema.implementation(interface_name):
            yield Diagnostic(
                code="PG005",
                severity=Severity.WARNING,
                message=(
                    f"no object type implements interface {interface_name}; "
                    f"edges declared at type {interface_name} can never be "
                    f"populated"
                ),
                location=interface_name,
                span=Span.of(schema.interface_types[interface_name]),
                rule="unimplemented-interface",
            )


@rule(
    "PG006",
    "unused-definition",
    "a scalar, enum, or union definition nothing in the schema references",
)
def check_unused_definition(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    used: set[str] = set()
    for _type_name, _field_name, field_def in schema.field_declarations():
        used.add(field_def.type.base)
        for argument in field_def.arguments:
            used.add(argument.type.base)
    for definition in schema.directive_definitions.values():
        for arg_type in definition.arguments.values():
            used.add(arg_type.base)
    for name in sorted(schema.scalars.custom_names - used):
        kind = "enum" if schema.scalars.is_enum(name) else "scalar"
        yield Diagnostic(
            code="PG006",
            severity=Severity.INFO,
            message=f"{kind} type {name} is defined but never used",
            location=name,
            rule="unused-definition",
        )
    for name in sorted(set(schema.union_types) - used):
        yield Diagnostic(
            code="PG006",
            severity=Severity.INFO,
            message=f"union type {name} is defined but never used as a field type",
            location=name,
            span=Span.of(schema.union_types[name]),
            rule="unused-definition",
        )


@rule(
    "PG007",
    "invalid-key",
    "@key over unknown, relationship, list-typed, or nullable fields",
)
def check_invalid_key(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    for type_name in sorted({**schema.object_types, **schema.interface_types}):
        composite = schema.composite(type_name)
        for directive in composite.directives:
            if directive.name != KEY:
                continue
            span = Span.of(directive)
            key_fields = directive.argument("fields", ())
            if not isinstance(key_fields, tuple):
                key_fields = (key_fields,) if key_fields else ()
            if not key_fields:
                yield Diagnostic(
                    code="PG007",
                    severity=Severity.ERROR,
                    message="@key with an empty fields list can never identify nodes",
                    location=type_name,
                    span=span,
                    rule="invalid-key",
                )
                continue
            for field_name in key_fields:
                field_def = composite.field(str(field_name))
                if field_def is None:
                    yield Diagnostic(
                        code="PG007",
                        severity=Severity.ERROR,
                        message=f"@key names unknown field '{field_name}'",
                        location=type_name,
                        span=span,
                        rule="invalid-key",
                    )
                elif field_def.is_relationship:
                    yield Diagnostic(
                        code="PG007",
                        severity=Severity.ERROR,
                        message=(
                            f"@key names relationship field '{field_name}'; keys "
                            f"are built from attribute (property) fields"
                        ),
                        location=type_name,
                        span=span,
                        rule="invalid-key",
                    )
                else:
                    if field_def.type.is_list:
                        yield Diagnostic(
                            code="PG007",
                            severity=Severity.WARNING,
                            message=(
                                f"@key field '{field_name}' is list-typed "
                                f"({field_def.type}); list properties make "
                                f"fragile identifiers"
                            ),
                            location=type_name,
                            span=span,
                            rule="invalid-key",
                        )
                    if not field_def.type.non_null:
                        yield Diagnostic(
                            code="PG007",
                            severity=Severity.WARNING,
                            message=(
                                f"@key field '{field_name}' is nullable "
                                f"({field_def.type}); nodes lacking the property "
                                f"escape the key constraint"
                            ),
                            location=type_name,
                            span=span,
                            rule="invalid-key",
                        )


_TARGET_SIDE_DIRECTIVES = (NO_LOOPS, UNIQUE_FOR_TARGET, REQUIRED_FOR_TARGET)


@rule(
    "PG008",
    "redundant-directive",
    "duplicate directive applications and directives that cannot have any "
    "effect where they are applied",
)
def check_redundant_directive(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    def duplicates(
        directives: Iterable["AppliedDirective"], location: str
    ) -> Iterator[Diagnostic]:
        seen: set[tuple[str, tuple[tuple[str, object], ...]]] = set()
        for directive in directives:
            key = (directive.name, directive.arguments)
            if key in seen:
                arg_text = ", ".join(f"{n}: {v!r}" for n, v in directive.arguments)
                yield Diagnostic(
                    code="PG008",
                    severity=Severity.WARNING,
                    message=(
                        f"duplicate directive application @{directive.name}"
                        f"({arg_text})" if arg_text else
                        f"duplicate directive application @{directive.name}"
                    ),
                    location=location,
                    span=Span.of(directive),
                    rule="redundant-directive",
                )
            seen.add(key)

    for type_name in sorted(
        {**schema.object_types, **schema.interface_types, **schema.union_types}
    ):
        yield from duplicates(schema.directives_t(type_name), type_name)
    for type_name, field_name, field_def in schema.field_declarations():
        location = f"{type_name}.{field_name}"
        yield from duplicates(field_def.directives, location)
        if field_def.is_attribute:
            for directive in field_def.directives:
                if directive.name in _TARGET_SIDE_DIRECTIVES:
                    yield Diagnostic(
                        code="PG008",
                        severity=Severity.INFO,
                        message=(
                            f"@{directive.name} constrains edges and has no "
                            f"effect on the attribute field '{field_name}'"
                        ),
                        location=location,
                        span=Span.of(directive),
                        rule="redundant-directive",
                    )
            continue
        if field_def.has_directive(DISTINCT) and not field_def.type.is_list:
            yield Diagnostic(
                code="PG008",
                severity=Severity.INFO,
                message=(
                    f"@distinct has no effect: '{field_name}' is declared at the "
                    f"non-list type {field_def.type}, which already admits at "
                    f"most one edge"
                ),
                location=location,
                span=Span.of(field_def),
                rule="redundant-directive",
            )
        if field_def.has_directive(NO_LOOPS):
            self_targets = _below(schema, type_name) & _below(
                schema, field_def.type.base
            )
            if not self_targets:
                yield Diagnostic(
                    code="PG008",
                    severity=Severity.INFO,
                    message=(
                        f"@noLoops has no effect: no node can be both a source "
                        f"({type_name}) and a target ({field_def.type.base}) of "
                        f"'{field_name}' edges"
                    ),
                    location=location,
                    span=Span.of(field_def),
                    rule="redundant-directive",
                )


@rule(
    "PG009",
    "interface-argument-mismatch",
    "implementing types must repeat interface-field arguments at identical "
    "types and add extras only at nullable types (Definition 4.3(2)/(3))",
)
def check_interface_argument_mismatch(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    for interface_name in sorted(schema.interface_types):
        interface_type = schema.interface_types[interface_name]
        for object_name in sorted(schema.implementation(interface_name)):
            object_type = schema.object_types[object_name]
            for interface_field in interface_type.fields:
                object_field = object_type.field(interface_field.name)
                if object_field is None:
                    continue  # PG010 reports the missing field
                location = f"{object_name}.{interface_field.name}"
                for interface_arg in interface_field.arguments:
                    object_arg = object_field.argument(interface_arg.name)
                    if object_arg is None:
                        yield Diagnostic(
                            code="PG009",
                            severity=Severity.ERROR,
                            message=(
                                f"missing argument '{interface_arg.name}' required "
                                f"by interface {interface_name} (Definition 4.3(2))"
                            ),
                            location=location,
                            span=Span.of(object_field),
                            rule="interface-argument-mismatch",
                        )
                    elif object_arg.type != interface_arg.type:
                        yield Diagnostic(
                            code="PG009",
                            severity=Severity.ERROR,
                            message=(
                                f"argument '{interface_arg.name}' has type "
                                f"{object_arg.type}, but interface "
                                f"{interface_name} declares it at exactly "
                                f"{interface_arg.type} (Definition 4.3(2))"
                            ),
                            location=location,
                            span=Span.of(object_arg),
                            rule="interface-argument-mismatch",
                        )
                declared = {arg.name for arg in interface_field.arguments}
                for object_arg in object_field.arguments:
                    if object_arg.name not in declared and object_arg.type.non_null:
                        yield Diagnostic(
                            code="PG009",
                            severity=Severity.ERROR,
                            message=(
                                f"extra argument '{object_arg.name}' beyond "
                                f"interface {interface_name} must have a nullable "
                                f"type, not {object_arg.type} (Definition 4.3(3))"
                            ),
                            location=location,
                            span=Span.of(object_arg),
                            rule="interface-argument-mismatch",
                        )


@rule(
    "PG010",
    "interface-field-shadowing",
    "implementing types must contain every interface field at a "
    "subtype-compatible type (Definition 4.3(1))",
)
def check_interface_field_shadowing(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    for interface_name in sorted(schema.interface_types):
        interface_type = schema.interface_types[interface_name]
        for object_name in sorted(schema.implementation(interface_name)):
            object_type = schema.object_types[object_name]
            for interface_field in interface_type.fields:
                object_field = object_type.field(interface_field.name)
                if object_field is None:
                    yield Diagnostic(
                        code="PG010",
                        severity=Severity.ERROR,
                        message=(
                            f"missing field '{interface_field.name}' required by "
                            f"interface {interface_name} (Definition 4.3(1))"
                        ),
                        location=object_name,
                        span=Span.of(object_type),
                        rule="interface-field-shadowing",
                    )
                elif not is_subtype(schema, object_field.type, interface_field.type):
                    yield Diagnostic(
                        code="PG010",
                        severity=Severity.ERROR,
                        message=(
                            f"field '{interface_field.name}' has type "
                            f"{object_field.type}, which is not a subtype of the "
                            f"interface {interface_name} declaration "
                            f"{interface_field.type} (Definition 4.3(1))"
                        ),
                        location=f"{object_name}.{interface_field.name}",
                        span=Span.of(object_field),
                        rule="interface-field-shadowing",
                    )


# --------------------------------------------------------------------------- #
# the dataflow-analysis rules (PG011-PG018)
# --------------------------------------------------------------------------- #
#
# Thin surfaces over :mod:`repro.analysis`: the fixpoint passes run once per
# schema (memoized there) and each rule below republishes one diagnostic
# code.  All of them register ``unsat=False`` even where the underlying
# finding is a soundness proof -- the satisfiability engines consume the
# analysis feed directly (:func:`repro.analysis.sat_preverdicts`), so the
# lint pre-pass, its reports, and the ``decided_by`` accounting stay exactly
# as they were.  PG011/PG012 additionally suppress findings the polynomial
# rules above already report (PG001/PG003/PG004), so a schema gains new
# findings only where the fixpoints see strictly further.


def _analysis_findings(schema: "GraphQLSchema", code: str) -> Iterator[Diagnostic]:
    from ..analysis import analyze_schema  # deferred: keep lint importable alone

    for diagnostic in analyze_schema(schema).diagnostics:
        if diagnostic.code == code:
            yield diagnostic


@rule(
    "PG011",
    "interval-unsat",
    "cardinality interval analysis proves an object type unsatisfiable "
    "beyond what PG001/PG003 detect (fixpoint over required-edge intervals)",
)
def check_interval_unsat(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    already = _unpopulatable_types(schema)
    for diagnostic in _analysis_findings(schema, "PG011"):
        if diagnostic.unsat_type in already:
            continue  # PG001/PG003 already prove and report this type
        yield diagnostic


@rule(
    "PG012",
    "interval-dead-edge",
    "interval analysis proves an edge definition unpopulatable beyond what "
    "PG004 detects (the SS4 / ∀-meet / forced-cap-overflow generalizations)",
)
def check_interval_dead_edge(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    already = {
        diagnostic.location for diagnostic in check_unpopulatable_edge(schema)
    }
    lint_dead = _unpopulatable_types(schema)
    for diagnostic in _analysis_findings(schema, "PG012"):
        if diagnostic.location in already:
            continue  # PG004 already reports this edge definition
        declarer = diagnostic.location.split(".", 1)[0]
        if declarer in lint_dead:
            continue  # PG001/PG003 already report the declaring type
        yield diagnostic


@rule(
    "PG013",
    "implied-directive",
    "a directive whose translated axiom is entailed by another declaration "
    "of the same field across interface inheritance",
)
def check_implied_directive(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    yield from _analysis_findings(schema, "PG013")


@rule(
    "PG014",
    "contradictory-inheritance",
    "an own relationship declaration whose target family is disjoint from "
    "the applicable interface declarations' families",
)
def check_contradictory_inheritance(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    yield from _analysis_findings(schema, "PG014")


@rule(
    "PG015",
    "key-domain-collision",
    "a @key built entirely from finite value domains (Boolean/enum) bounds "
    "the keyed family's instance count",
)
def check_key_domain_collision(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    yield from _analysis_findings(schema, "PG015")


@rule(
    "PG016",
    "vacuous-key",
    "a @key made redundant by another key over a subset of its fields (or "
    "a reordered duplicate)",
)
def check_vacuous_key(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    yield from _analysis_findings(schema, "PG016")


@rule(
    "PG017",
    "dead-abstract-type",
    "an interface or union whose entire object-type family is provably "
    "unpopulatable denotes the empty type",
)
def check_dead_abstract_type(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    yield from _analysis_findings(schema, "PG017")


@rule(
    "PG018",
    "isolated-type",
    "an object type disconnected from the relationship structure: no edges "
    "in or out, no interface or union membership",
)
def check_isolated_type(schema: "GraphQLSchema") -> Iterator[Diagnostic]:
    yield from _analysis_findings(schema, "PG018")
