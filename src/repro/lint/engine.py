"""Running the lint rules over a schema.

:func:`lint_schema` is the front door: it resolves a rule selection, runs
every selected rule, and returns the findings in stable report order.
:func:`unsat_diagnostics` is the narrow view the satisfiability engine uses
as its polynomial pre-pass: only the ``unsat``-class rules, keyed by the
object type each finding proves unsatisfiable.
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING, Iterable

from .. import obs
from ..errors import SchemaError
from .diagnostics import Diagnostic, Severity, sort_key
from .rules import RULES, LintRule, all_rules

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import GraphQLSchema


def resolve_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[LintRule, ...]:
    """The rules to run: all by default, narrowed by code or slug name.

    Tokens may bundle several selectors with commas (``PG011,PG017``), the
    idiom of mainstream linters' ``--select``.  Raises
    :class:`SchemaError` for a code/name that matches no rule, so a typo
    in ``--select PG01`` fails loudly instead of silently linting with
    nothing; the error suggests the closest known code or slug.
    """
    by_name = {rule.name: rule for rule in RULES.values()}

    def split(tokens: Iterable[str]) -> list[str]:
        return [
            part.strip()
            for token in tokens
            for part in token.split(",")
            if part.strip()
        ]

    def lookup(token: str) -> LintRule:
        rule = RULES.get(token) or by_name.get(token)
        if rule is None:
            known = ", ".join(sorted(RULES))
            close = difflib.get_close_matches(
                token, [*RULES, *by_name], n=1, cutoff=0.4
            )
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise SchemaError(
                f"unknown lint rule {token!r} (known codes: {known}){hint}"
            )
        return rule

    chosen = (
        {rule.code for rule in map(lookup, split(select))}
        if select is not None
        else set(RULES)
    )
    chosen -= {rule.code for rule in map(lookup, split(ignore or ()))}
    return tuple(rule for rule in all_rules() if rule.code in chosen)


def lint_schema(
    schema: "GraphQLSchema",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[Diagnostic, ...]:
    """All findings of the selected rules, in stable report order."""
    rules = resolve_rules(select, ignore)
    span = obs.span("lint.run", rules=len(rules))
    with span:
        findings: list[Diagnostic] = []
        for rule in rules:
            findings.extend(rule.check(schema))
        span.set(findings=len(findings))
    observation = obs.active()
    if observation is not None and observation.registry is not None:
        observation.registry.count("lint.runs")
        for finding in findings:
            observation.registry.count(f"lint.findings.{finding.code}")
    return tuple(sorted(findings, key=sort_key))


def unsat_diagnostics(schema: "GraphQLSchema") -> dict[str, Diagnostic]:
    """Object types the unsat-class rules prove unsatisfiable.

    Every key is the name of an object type no consistent property graph can
    populate; the value is the (error-severity) finding that proves it.
    This is the polynomial pre-pass
    :class:`~repro.satisfiability.engine.SatisfiabilityChecker` consults
    before falling back to the tableau.
    """
    verdicts: dict[str, Diagnostic] = {}
    for rule in all_rules():
        if not rule.unsat:
            continue
        for diagnostic in rule.check(schema):
            if diagnostic.unsat_type is not None:
                verdicts.setdefault(diagnostic.unsat_type, diagnostic)
    return verdicts


def has_errors(findings: Iterable[Diagnostic]) -> bool:
    """True when any finding has error severity (drives the CLI exit code)."""
    return any(finding.severity is Severity.ERROR for finding in findings)
