"""The diagnostic model of the schema lint engine.

A :class:`Diagnostic` is one finding of one lint rule: a stable code
(``PG001``, ...), a severity, a human-readable message, the schema location
it concerns (``OT1`` or ``IT.hasOT1``), and -- when the schema was parsed
from SDL text -- the 1-based source :class:`Span` of the offending
declaration, so tools can point at the exact line like a compiler does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; ``error`` drives the nonzero lint exit code."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Span:
    """A 1-based source position; ``Span()`` means "no source available"."""

    line: int = 0
    column: int = 0

    def __bool__(self) -> bool:
        return self.line > 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    @staticmethod
    def of(node: object) -> "Span":
        """The span of any model/AST object carrying line/column attributes."""
        return Span(getattr(node, "line", 0) or 0, getattr(node, "column", 0) or 0)


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        code: Stable rule code, e.g. ``PG001``.
        severity: error / warning / info.
        message: Human-readable description of the problem.
        location: The schema element concerned (``T`` or ``T.f``).
        span: Source position of the offending declaration (may be empty).
        rule: The rule's slug name, e.g. ``conflicting-cardinality``.
        unsat_type: When the rule *proves* an object type unsatisfiable,
            the type's name; drives the satisfiability short-circuit.
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    span: Span = Span()
    rule: str = ""
    unsat_type: str | None = None

    def render(self, source_name: str = "") -> str:
        """One compiler-style text line for this finding."""
        prefix = ""
        if source_name:
            prefix += f"{source_name}:"
        if self.span:
            prefix += f"{self.span}: "
        elif prefix:
            prefix += " "
        where = f"{self.location}: " if self.location else ""
        return f"{prefix}{self.severity.value} {self.code} [{self.rule}] {where}{self.message}"

    def to_json(self) -> dict:
        """A JSON-serialisable view (for ``pgschema lint --json``)."""
        payload: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "rule": self.rule,
            "location": self.location,
            "message": self.message,
        }
        if self.span:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
        if self.unsat_type is not None:
            payload["unsatisfiableType"] = self.unsat_type
        return payload


def sort_key(diagnostic: Diagnostic) -> tuple:
    """Stable report order: by source position, then code, then location."""
    return (
        diagnostic.span.line,
        diagnostic.span.column,
        diagnostic.code,
        diagnostic.location,
        diagnostic.message,
    )
