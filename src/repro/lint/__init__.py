"""Static analysis (lint) over property-graph schemas.

A rule-based diagnostics engine that runs in polynomial time over a built
:class:`~repro.schema.model.GraphQLSchema`: stable rule codes (``PG001``...),
severities, and source spans pointing back into the SDL document.  The
``unsat``-class rules double as sound pre-checks for the PSPACE tableau of
:mod:`repro.satisfiability` -- when one fires, the affected type is provably
unsatisfiable and the tableau never needs to be built.
"""

from .diagnostics import Diagnostic, Severity, Span, sort_key
from .engine import has_errors, lint_schema, resolve_rules, unsat_diagnostics
from .rules import RULES, LintRule, all_rules

__all__ = [
    "Diagnostic",
    "Severity",
    "Span",
    "sort_key",
    "lint_schema",
    "resolve_rules",
    "unsat_diagnostics",
    "has_errors",
    "LintRule",
    "RULES",
    "all_rules",
]
