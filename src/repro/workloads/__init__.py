"""Workloads: the paper's schema corpus, random schemas, and graph generators."""

from . import paper_schemas
from .graphs import (
    CARDINALITY_FIELDS,
    cardinality_graph,
    conformant_graph,
    corrupt_graph,
    food_graph,
    library_graph,
    user_session_graph,
)
from .mutations import (
    MUTATION_SCHEMA_SDL,
    MUTATION_SCHEMA_VARIANTS,
    MutationWorkloadConfig,
    mutation_stream,
    write_mutation_journal,
)
from .paper_schemas import CORPUS, PaperSchema, load
from .schemas import (
    cardinality_web_schema,
    deep_lattice_schema,
    hub_chain_schema,
    key_collision_graph,
    key_collision_schema,
    near_unsat_schema,
    random_schema,
    random_schema_sdl,
    union_fanout_schema,
)

__all__ = [
    "CARDINALITY_FIELDS",
    "CORPUS",
    "MUTATION_SCHEMA_SDL",
    "MUTATION_SCHEMA_VARIANTS",
    "MutationWorkloadConfig",
    "PaperSchema",
    "cardinality_graph",
    "cardinality_web_schema",
    "conformant_graph",
    "corrupt_graph",
    "deep_lattice_schema",
    "food_graph",
    "hub_chain_schema",
    "key_collision_graph",
    "key_collision_schema",
    "library_graph",
    "load",
    "mutation_stream",
    "near_unsat_schema",
    "paper_schemas",
    "random_schema",
    "random_schema_sdl",
    "union_fanout_schema",
    "user_session_graph",
    "write_mutation_journal",
]
