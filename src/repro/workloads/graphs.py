"""Workload graphs: conformant generators and violation injectors.

The domain generators (:func:`user_session_graph`, :func:`library_graph`,
:func:`food_graph`) produce Property Graphs that strongly satisfy the
corresponding paper schemas at any requested scale -- they drive the
validation-scaling experiments.  :func:`conformant_graph` is a best-effort
generator for arbitrary schemas (used with the random schemas of E2).
:func:`corrupt_graph` injects one violation of a chosen rule, giving the
negative workloads their ground truth.
"""

from __future__ import annotations

import random

from ..pg.model import PropertyGraph
from ..schema.model import GraphQLSchema
from ..schema.subtype import is_named_subtype
from ..validation import sites


def user_session_graph(
    num_users: int, sessions_per_user: int = 2, seed: int | None = None
) -> PropertyGraph:
    """Strongly satisfies the ``user_session*`` corpus schemas (Ex. 3.1/3.4/3.12)."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    edge_count = 0
    for user_index in range(num_users):
        user = f"u{user_index}"
        properties = {
            "id": f"user-{user_index}",
            "login": f"login{user_index}",
        }
        if rng.random() < 0.5:
            properties["nicknames"] = tuple(
                f"nick{user_index}_{i}" for i in range(rng.randint(1, 3))
            )
        graph.add_node(user, "User", properties)
        for session_index in range(sessions_per_user):
            session = f"s{user_index}_{session_index}"
            session_props = {
                "id": f"sess-{user_index}-{session_index}",
                "startTime": f"2019-06-30T{session_index:02d}:00",
            }
            if rng.random() < 0.5:
                session_props["endTime"] = f"2019-06-30T{session_index:02d}:45"
            graph.add_node(session, "UserSession", session_props)
            graph.add_edge(
                f"e{edge_count}",
                session,
                user,
                "user",
                {"certainty": round(rng.random(), 3)},
            )
            edge_count += 1
    return graph


def library_graph(
    num_authors: int,
    num_books: int,
    num_series: int = 0,
    num_publishers: int = 1,
    seed: int | None = None,
) -> PropertyGraph:
    """Strongly satisfies the ``library`` corpus schema (Examples 3.6-3.8).

    Constraints honoured: every Book has ≥1 distinct author edge; Author
    favoriteBook ≤ 1; relatedAuthor edges are distinct and loop-free; each
    Book has ≤1 incoming contains edge; each Book has exactly one incoming
    published edge (@uniqueForTarget + @requiredForTarget on Publisher).
    """
    if num_publishers < 1 or num_authors < 1:
        raise ValueError("library_graph needs at least one publisher and author")
    rng = random.Random(seed)
    graph = PropertyGraph()
    edge_count = 0

    def add_edge(source, target, label):
        nonlocal edge_count
        graph.add_edge(f"e{edge_count}", source, target, label)
        edge_count += 1

    authors = [graph.add_node(f"a{i}", "Author") for i in range(num_authors)]
    books = [
        graph.add_node(f"b{i}", "Book", {"title": f"Book #{i}"})
        for i in range(num_books)
    ]
    publishers = [graph.add_node(f"p{i}", "Publisher") for i in range(num_publishers)]
    series = [graph.add_node(f"series{i}", "BookSeries") for i in range(num_series)]

    for book in books:
        # @required @distinct author edges
        for author in rng.sample(authors, rng.randint(1, min(2, num_authors))):
            add_edge(book, author, "author")
        # exactly one incoming published edge
        add_edge(rng.choice(publishers), book, "published")

    for index, author in enumerate(authors):
        if books and rng.random() < 0.5:
            add_edge(author, rng.choice(books), "favoriteBook")
        others = [other for other in authors if other != author]
        if others and rng.random() < 0.5:
            for other in rng.sample(others, rng.randint(1, min(2, len(others)))):
                add_edge(author, other, "relatedAuthor")

    # each series contains some books, each book in at most one series
    unassigned = list(books)
    rng.shuffle(unassigned)
    for series_node in series:
        if not unassigned:
            # @required: a BookSeries must contain something; avoid creating
            # series we cannot feed
            graph.remove_node(series_node)
            continue
        take = rng.randint(1, max(1, min(3, len(unassigned))))
        for _ in range(take):
            if unassigned:
                add_edge(series_node, unassigned.pop(), "contains")
    return graph


def food_graph(num_people: int, seed: int | None = None) -> PropertyGraph:
    """Strongly satisfies both food schemas (Examples 3.9/3.10)."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    pizza = graph.add_node("pizza0", "Pizza", {"name": "Margherita", "toppings": ("basil",)})
    pasta = graph.add_node("pasta0", "Pasta", {"name": "Carbonara"})
    edge_count = 0
    for index in range(num_people):
        person = graph.add_node(f"person{index}", "Person", {"name": f"P{index}"})
        if rng.random() < 0.8:
            graph.add_edge(
                f"e{edge_count}", person, rng.choice((pizza, pasta)), "favoriteFood"
            )
            edge_count += 1
    return graph


# --------------------------------------------------------------------------- #
# §3.3 cardinality patterns (experiment E4)
# --------------------------------------------------------------------------- #

#: field name per §3.3 table row in the ``cardinality_table`` corpus schema.
CARDINALITY_FIELDS = {
    "1:1": "relOneOne",
    "1:N": "relOneN",
    "N:1": "relNOne",
    "N:M": "relNM",
}


def cardinality_graph(
    field_name: str, fan_out: int, fan_in: int
) -> PropertyGraph:
    """A bipartite A/B graph where every A node has *fan_out* outgoing
    ``field_name`` edges and every B node has *fan_in* incoming ones.

    Built as a complete bipartite-ish pattern over ``fan_in`` A-nodes and
    ``fan_out`` B-nodes, so (fan_out, fan_in) = (1, 1) is a perfect
    matching, (2, 1) gives one-source-many-targets, etc.  Experiment E4
    validates each pattern against each §3.3 table row.
    """
    graph = PropertyGraph()
    a_nodes = [graph.add_node(f"a{i}", "A") for i in range(max(1, fan_in))]
    b_nodes = [graph.add_node(f"b{i}", "B") for i in range(max(1, fan_out))]
    edge_count = 0
    for a_node in a_nodes:
        for b_node in b_nodes:
            graph.add_edge(f"e{edge_count}", a_node, b_node, field_name)
            edge_count += 1
    return graph


# --------------------------------------------------------------------------- #
# generic best-effort conformant generation
# --------------------------------------------------------------------------- #


def conformant_graph(
    schema: GraphQLSchema,
    nodes_per_type: int = 10,
    extra_edge_probability: float = 0.3,
    seed: int | None = None,
) -> PropertyGraph:
    """Best-effort strongly-satisfying graph for an arbitrary schema.

    Creates ``nodes_per_type`` nodes per object type with all required (and
    some optional) attributes, then adds edges to satisfy @required and
    @requiredForTarget obligations plus optional extras, respecting
    non-list cardinality, @distinct, @noLoops and @uniqueForTarget.  For
    adversarial schemas the obligations may be unsatisfiable at this size;
    callers that need guaranteed conformance should validate the result.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    counter = [0]
    nodes_by_type: dict[str, list] = {}

    def fresh_value(ref) -> object:
        counter[0] += 1
        if schema.scalars.is_enum(ref.base):
            value: object = sorted(schema.scalars.enum_values(ref.base))[0]
        elif ref.base == "Int":
            value = counter[0]
        elif ref.base == "Float":
            value = float(counter[0])
        elif ref.base == "Boolean":
            value = bool(counter[0] % 2)
        else:
            value = f"v{counter[0]}"
        return (value,) if ref.is_list else value

    for type_name, object_type in schema.object_types.items():
        nodes_by_type[type_name] = []
        for index in range(nodes_per_type):
            properties: dict[str, object] = {}
            for field_def in _all_fields(schema, object_type):
                if not field_def.is_attribute:
                    continue
                if field_def.has_directive("required") or rng.random() < 0.5:
                    properties[field_def.name] = fresh_value(field_def.type)
            node = graph.add_node(f"{type_name}_{index}", type_name, properties or None)
            nodes_by_type[type_name].append(node)

    edge_count = [0]
    # track incoming-per-(site, target) for @uniqueForTarget
    unique_ft = sites.unique_for_target_sites(schema)

    def incoming_from(node, field_name, declaring) -> int:
        return sum(
            1
            for edge in graph.in_edges(node, field_name)
            if is_named_subtype(
                schema, graph.label(graph.endpoints(edge)[0]), declaring
            )
        )

    def can_add(source, field_name, target) -> bool:
        declaration = schema.field(graph.label(source), field_name)
        if declaration is None or declaration.is_attribute:
            return False
        if not is_named_subtype(schema, graph.label(target), declaration.type.base):
            return False
        if not declaration.type.is_list and graph.out_edges(source, field_name):
            return False
        if source == target:
            for site in sites.no_loops_sites(schema):
                if site.field_name == field_name and is_named_subtype(
                    schema, graph.label(source), site.type_name
                ):
                    return False
        for edge in graph.out_edges(source, field_name):
            if graph.endpoints(edge)[1] == target:
                return False  # keep edges distinct
        for site in unique_ft:
            if site.field_name == field_name and is_named_subtype(
                schema, graph.label(source), site.type_name
            ):
                if incoming_from(target, field_name, site.type_name) >= 1:
                    return False
        return True

    def add_edge(source, field_name, target) -> None:
        declaration = schema.field(graph.label(source), field_name)
        properties = {
            argument.name: fresh_value(argument.type)
            for argument in declaration.arguments
            if argument.type.non_null or rng.random() < 0.3
        }
        graph.add_edge(
            f"e{edge_count[0]}", source, target, field_name, properties or None
        )
        edge_count[0] += 1

    # obligations: @required relationships
    for site in sites.required_edge_sites(schema):
        for label in schema.object_types_below(site.type_name) | (
            {site.type_name} if site.type_name in schema.object_types else set()
        ):
            for node in nodes_by_type.get(label, ()):
                if graph.out_edges(node, site.field_name):
                    continue
                declaration = schema.field(label, site.field_name)
                if declaration is None:
                    continue
                targets = _targets_below(schema, nodes_by_type, declaration.type.base)
                rng.shuffle(targets)
                for target in targets:
                    if can_add(node, site.field_name, target):
                        add_edge(node, site.field_name, target)
                        break

    # obligations: @requiredForTarget
    for site in sites.required_for_target_sites(schema):
        source_labels = sorted(
            schema.object_types_below(site.type_name)
            | ({site.type_name} if site.type_name in schema.object_types else set())
        )
        for target_label in sorted(schema.object_types_below(site.field.type.base)):
            for node in nodes_by_type.get(target_label, ()):
                if incoming_from(node, site.field_name, site.type_name):
                    continue
                candidates = [
                    source
                    for label in source_labels
                    for source in nodes_by_type.get(label, ())
                ]
                rng.shuffle(candidates)
                for source in candidates:
                    if can_add(source, site.field_name, node):
                        add_edge(source, site.field_name, node)
                        break

    # optional extra edges
    for type_name, object_type in schema.object_types.items():
        for field_def in _all_fields(schema, object_type):
            if field_def.is_attribute:
                continue
            for node in nodes_by_type[type_name]:
                if rng.random() >= extra_edge_probability:
                    continue
                targets = _targets_below(schema, nodes_by_type, field_def.type.base)
                rng.shuffle(targets)
                for target in targets:
                    if can_add(node, field_def.name, target):
                        add_edge(node, field_def.name, target)
                        break
    return graph


def _all_fields(schema: GraphQLSchema, object_type):
    """The object type's own fields (interface fields are repeated in them
    by consistency, so no merging is needed for consistent schemas)."""
    return object_type.fields


def _targets_below(schema, nodes_by_type, base: str) -> list:
    return [
        node
        for label in sorted(schema.object_types_below(base))
        for node in nodes_by_type.get(label, ())
    ]


# --------------------------------------------------------------------------- #
# violation injection
# --------------------------------------------------------------------------- #


def corrupt_graph(
    graph: PropertyGraph,
    schema: GraphQLSchema,
    rule: str,
    seed: int | None = None,
) -> PropertyGraph | None:
    """A copy of *graph* with one injected violation of *rule*.

    Returns None when the schema/graph offers no opportunity to violate the
    rule (e.g. DS2 without any @noLoops site).  The injected element ids
    start with ``bad`` so tests can locate them.
    """
    rng = random.Random(seed)
    copy = graph.copy()
    nodes = sorted(copy.nodes, key=str)
    if not nodes:
        return None

    if rule == "SS1":
        copy.add_node("bad_node", "NoSuchType")
        return copy
    if rule == "WS1":
        # only the restrictive builtin domains admit an always-bad value
        # (ID and custom scalars accept any atom)
        bad_values = {"Int": "not-a-number", "Float": "not-a-number",
                      "String": 12345, "Boolean": "yes"}
        for type_name, field_name, field_def in schema.field_declarations():
            if not field_def.is_attribute or field_def.type.base not in bad_values:
                continue
            if schema.scalars.is_enum(field_def.type.base):
                continue
            for node in nodes:
                if copy.label(node) == type_name:
                    copy.set_property(node, field_name, bad_values[field_def.type.base])
                    return copy
        return None
    if rule == "SS2":
        node = rng.choice(nodes)
        copy.set_property(node, "undeclaredProperty", 1)
        return copy
    if rule == "SS4":
        node = rng.choice(nodes)
        copy.add_edge("bad_edge", node, node, "undeclaredEdgeLabel")
        return copy
    if rule == "WS3":
        for type_name, field_name, field_def in schema.field_declarations():
            if not field_def.is_relationship or type_name not in schema.object_types:
                continue
            source = next((n for n in nodes if copy.label(n) == type_name), None)
            wrong = next(
                (
                    n
                    for n in nodes
                    if not is_named_subtype(schema, copy.label(n), field_def.type.base)
                ),
                None,
            )
            if source is not None and wrong is not None:
                copy.add_edge("bad_edge", source, wrong, field_name)
                return copy
        return None
    if rule == "WS4":
        for type_name, field_name, field_def in schema.field_declarations():
            if (
                not field_def.is_relationship
                or field_def.type.is_list
                or type_name not in schema.object_types
            ):
                continue
            source = next((n for n in nodes if copy.label(n) == type_name), None)
            target = next(
                (
                    n
                    for n in nodes
                    if is_named_subtype(schema, copy.label(n), field_def.type.base)
                ),
                None,
            )
            if source is not None and target is not None:
                copy.add_edge("bad_edge1", source, target, field_name)
                copy.add_edge("bad_edge2", source, target, field_name)
                return copy
        return None
    if rule == "DS1":
        for site in sites.distinct_sites(schema):
            source = next(
                (
                    n
                    for n in nodes
                    if is_named_subtype(schema, copy.label(n), site.type_name)
                    and copy.label(n) in schema.object_types
                ),
                None,
            )
            if source is None:
                continue
            declaration = schema.field(copy.label(source), site.field_name)
            if declaration is None:
                continue
            target = next(
                (
                    n
                    for n in nodes
                    if is_named_subtype(schema, copy.label(n), declaration.type.base)
                ),
                None,
            )
            if target is not None:
                copy.add_edge("bad_edge1", source, target, site.field_name)
                copy.add_edge("bad_edge2", source, target, site.field_name)
                return copy
        return None
    if rule == "DS2":
        for site in sites.no_loops_sites(schema):
            node = next(
                (
                    n
                    for n in nodes
                    if is_named_subtype(schema, copy.label(n), site.type_name)
                ),
                None,
            )
            if node is not None:
                copy.add_edge("bad_edge", node, node, site.field_name)
                return copy
        return None
    if rule == "DS5":
        for site in sites.required_attribute_sites(schema):
            for node in nodes:
                if is_named_subtype(
                    schema, copy.label(node), site.type_name
                ) and copy.has_property(node, site.field_name):
                    copy.remove_property(node, site.field_name)
                    return copy
        return None
    if rule == "DS6":
        for site in sites.required_edge_sites(schema):
            for node in nodes:
                if not is_named_subtype(schema, copy.label(node), site.type_name):
                    continue
                out_edges = copy.out_edges(node, site.field_name)
                if out_edges:
                    for edge in out_edges:
                        copy.remove_edge(edge)
                    return copy
        return None
    if rule == "DS7":
        for site in sites.key_sites(schema):
            holders = [
                n
                for n in nodes
                if is_named_subtype(schema, copy.label(n), site.type_name)
            ]
            if len(holders) >= 2:
                first, second = holders[0], holders[1]
                for field_name in site.fields:
                    if copy.has_property(first, field_name):
                        copy.set_property(
                            second, field_name, copy.property_value(first, field_name)
                        )
                    else:
                        copy.remove_property(second, field_name)
                return copy
        return None
    raise ValueError(f"no corruption strategy for rule {rule!r}")
