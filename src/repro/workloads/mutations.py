"""Seeded mutation-stream workloads for the CDC consumer.

:func:`mutation_stream` produces a deterministic, *applicable* journal
event list (no dangling endpoints, no duplicate ids, removals only of
live elements) over a two-type User/UserSession domain, with a
configurable op distribution in the style of pyrqg's ``WorkloadConfig``:
each op kind carries a weight, and a ``violation_probability`` knob makes
some events schema-violating (missing ``@required`` properties, wrongly
typed values, ``@key`` collisions, duplicate non-list edges) so the
stream exercises violation APPEARED *and* DISAPPEARED transitions.
Schema-change events can be scheduled at chosen commits, cycling through
compatible and breaking variants of the base schema -- they exercise the
consumer's migrate-vs-rebuild path.

The stream is a pure function of the config (seeded PRNG), which is what
the crash-resume determinism property tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..validation.journal import MutationJournal

__all__ = [
    "MUTATION_SCHEMA_SDL",
    "MUTATION_SCHEMA_VARIANTS",
    "MutationWorkloadConfig",
    "mutation_stream",
    "write_mutation_journal",
]

#: The base schema the generated streams target.
MUTATION_SCHEMA_SDL = """
type User @key(fields: ["id"]) {
  id: ID! @required
  login: String! @required
  age: Int
  nicknames: [String!]
}

type UserSession {
  id: ID! @required
  user(certainty: Float!): User! @required
  startTime: String! @required
  endTime: String
}
"""

#: Evolution variants cycled through by scheduled ``set_schema`` events:
#: a breaking change (endTime becomes @required -> DS5 violations appear
#: on sessions without it), the base again (they disappear), and a
#: compatible widening (an optional User field is added).
MUTATION_SCHEMA_VARIANTS: tuple[str, ...] = (
    MUTATION_SCHEMA_SDL.replace(
        "endTime: String", "endTime: String @required"
    ),
    MUTATION_SCHEMA_SDL,
    MUTATION_SCHEMA_SDL.replace(
        "age: Int", "age: Int\n  locale: String"
    ),
    MUTATION_SCHEMA_SDL,
)

_DEFAULT_DISTRIBUTION: dict[str, float] = {
    "add_node": 4.0,
    "add_edge": 3.0,
    "set_property": 4.0,
    "remove_property": 1.5,
    "remove_edge": 1.0,
    "remove_node": 1.0,
}


@dataclass(frozen=True)
class MutationWorkloadConfig:
    """Shape of one generated mutation stream.

    Attributes:
        commits: Number of batch commits.
        ops_per_commit: Mutation events per commit.
        op_distribution: Relative weights per op kind (unknown kinds are
            rejected; missing kinds default to weight 0).
        violation_probability: Chance an event is schema-violating.
        schema_change_commits: 1-based commit indices whose batch starts
            with a ``set_schema`` event (cycling the variants above).
        seed: PRNG seed; same config -> byte-identical stream.
    """

    commits: int = 20
    ops_per_commit: int = 5
    op_distribution: Mapping[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_DISTRIBUTION)
    )
    violation_probability: float = 0.2
    schema_change_commits: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        unknown = set(self.op_distribution) - set(_DEFAULT_DISTRIBUTION)
        if unknown:
            raise ValueError(f"unknown op kinds in distribution: {sorted(unknown)}")
        if not any(weight > 0 for weight in self.op_distribution.values()):
            raise ValueError("op_distribution needs at least one positive weight")
        if not 0.0 <= self.violation_probability <= 1.0:
            raise ValueError("violation_probability must be within [0, 1]")


class _StreamState:
    """Shadow of the graph the stream builds, so every event applies."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.users: dict[str, dict[str, Any]] = {}
        self.sessions: dict[str, dict[str, Any]] = {}
        self.edges: dict[str, tuple[str, str]] = {}  # edge -> (session, user)
        self.counter = 0

    def fresh_id(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def pick(self, pool: list[str]) -> str:
        return pool[self.rng.randrange(len(pool))]


def _add_node(state: _StreamState, violate: bool) -> dict[str, Any]:
    rng = state.rng
    if not state.users or rng.random() < 0.5:
        node_id = state.fresh_id("u")
        properties: dict[str, Any] = {
            "id": f"user-{node_id}",
            "login": f"login-{node_id}",
        }
        if violate:
            # DS5: a User without its @required login
            del properties["login"]
        state.users[node_id] = properties
        return {"op": "add_node", "id": node_id, "label": "User",
                "properties": properties}
    node_id = state.fresh_id("s")
    properties = {"id": f"sess-{node_id}", "startTime": "2019-06-30T09:00"}
    if violate:
        # WS1: startTime must be a String
        properties["startTime"] = 900
    state.sessions[node_id] = properties
    return {"op": "add_node", "id": node_id, "label": "UserSession",
            "properties": properties}


def _add_edge(state: _StreamState, violate: bool) -> dict[str, Any]:
    if not state.users or not state.sessions:
        return _add_node(state, violate)
    session = state.pick(sorted(state.sessions))
    user = state.pick(sorted(state.users))
    edge_id = state.fresh_id("e")
    properties: dict[str, Any] = {"certainty": round(state.rng.random(), 3)}
    if violate:
        # WS2: certainty must be a Float
        properties["certainty"] = "high"
    state.edges[edge_id] = (session, user)
    return {"op": "add_edge", "id": edge_id, "source": session, "target": user,
            "label": "user", "properties": properties}


def _set_property(state: _StreamState, violate: bool) -> dict[str, Any]:
    rng = state.rng
    if state.users and (not state.sessions or rng.random() < 0.5):
        node_id = state.pick(sorted(state.users))
        if violate:
            # DS7: collide the @key field across users
            name, value = "id", "dup-key"
        elif rng.random() < 0.5:
            name, value = "age", rng.randrange(18, 80)
        else:
            name, value = "login", f"login-{node_id}-{rng.randrange(100)}"
        state.users[node_id][name] = value
        return {"op": "set_property", "id": node_id, "name": name, "value": value}
    if state.sessions:
        node_id = state.pick(sorted(state.sessions))
        if violate:
            # WS1: endTime must be a String
            name: str = "endTime"
            value: Any = 1745
        else:
            name, value = "endTime", "2019-06-30T17:45"
        state.sessions[node_id][name] = value
        return {"op": "set_property", "id": node_id, "name": name, "value": value}
    return _add_node(state, violate)


def _remove_property(state: _StreamState, violate: bool) -> dict[str, Any]:
    rng = state.rng
    if violate and state.users:
        # DS5: strip a @required property
        node_id = state.pick(sorted(state.users))
        state.users[node_id].pop("login", None)
        return {"op": "remove_property", "id": node_id, "name": "login"}
    removable = [
        (node_id, name)
        for pool in (state.users, state.sessions)
        for node_id, properties in sorted(pool.items())
        for name in sorted(properties)
        if name in ("age", "endTime")
    ]
    if not removable:
        return _set_property(state, violate)
    node_id, name = removable[rng.randrange(len(removable))]
    (state.users.get(node_id) or state.sessions.get(node_id) or {}).pop(name, None)
    return {"op": "remove_property", "id": node_id, "name": name}


def _remove_edge(state: _StreamState, violate: bool) -> dict[str, Any]:
    if not state.edges:
        return _add_edge(state, violate)
    edge_id = state.pick(sorted(state.edges))
    del state.edges[edge_id]
    return {"op": "remove_edge", "id": edge_id}


def _remove_node(state: _StreamState, violate: bool) -> dict[str, Any]:
    pool = sorted(state.sessions) if state.sessions else sorted(state.users)
    if not pool:
        return _add_node(state, violate)
    node_id = state.pick(pool)
    state.sessions.pop(node_id, None)
    state.users.pop(node_id, None)
    state.edges = {
        edge_id: endpoints
        for edge_id, endpoints in state.edges.items()
        if node_id not in endpoints
    }
    return {"op": "remove_node", "id": node_id}


_GENERATORS = {
    "add_node": _add_node,
    "add_edge": _add_edge,
    "set_property": _set_property,
    "remove_property": _remove_property,
    "remove_edge": _remove_edge,
    "remove_node": _remove_node,
}


def mutation_stream(
    config: MutationWorkloadConfig | None = None,
) -> list[dict[str, Any]]:
    """Generate the journal records (commit markers included) for *config*."""
    config = config or MutationWorkloadConfig()
    rng = random.Random(config.seed)
    state = _StreamState(rng)
    kinds = sorted(kind for kind, weight in config.op_distribution.items() if weight > 0)
    weights = [float(config.op_distribution[kind]) for kind in kinds]
    events: list[dict[str, Any]] = []
    variant = 0
    for commit in range(1, config.commits + 1):
        if commit in config.schema_change_commits:
            sdl = MUTATION_SCHEMA_VARIANTS[variant % len(MUTATION_SCHEMA_VARIANTS)]
            variant += 1
            events.append({"op": "set_schema", "sdl": sdl})
        for _ in range(config.ops_per_commit):
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            violate = rng.random() < config.violation_probability
            events.append(_GENERATORS[kind](state, violate))
        events.append({"op": "commit"})
    return events


def write_mutation_journal(
    path: str, config: MutationWorkloadConfig | None = None
) -> int:
    """Write the stream for *config* to *path*; return the event count."""
    return MutationJournal(path).write_events(mutation_stream(config))
