"""Random schema generation (for scaling and differential experiments).

Schemas are generated directly in the formal model's terms and rendered via
SDL text, so every generated schema round-trips through the parser exactly
like a hand-written one.  Generated schemas are always consistent: interface
fields are copied verbatim into implementing types.
"""

from __future__ import annotations

import random

from ..schema.build import parse_schema
from ..schema.model import GraphQLSchema

_SCALARS = ("Int", "Float", "String", "Boolean", "ID")


def random_schema(
    num_object_types: int = 8,
    num_interface_types: int = 2,
    num_union_types: int = 1,
    attributes_per_type: int = 3,
    relationships_per_type: int = 2,
    directive_probability: float = 0.3,
    key_probability: float = 0.3,
    seed: int | None = None,
) -> GraphQLSchema:
    """A random consistent schema; returns the built formal schema."""
    rng = random.Random(seed)
    sdl = random_schema_sdl(
        num_object_types,
        num_interface_types,
        num_union_types,
        attributes_per_type,
        relationships_per_type,
        directive_probability,
        key_probability,
        rng,
    )
    return parse_schema(sdl)


def hub_chain_schema(
    depth: int = 12,
    leaves: int = 8,
    hubs: int = 1,
) -> GraphQLSchema:
    """A scaled paper-style schema stressing whole-schema satisfiability.

    The shape combines the two structures that dominate tableau cost in the
    paper corpus: a ``@required`` relationship chain (every ``Stage_i``
    must reach ``Stage_{i+1}``, like Example 6.1's forced edges, ending in
    a ``Terminal`` so models stay finite) and hub types fanning out over
    many optional relationship fields (Figure 1's entity with many edge
    definitions).  Every element is satisfiable; the interesting cost is
    proving it.  Deciding a hub serially needs one tableau search per field
    plus one for the type -- exactly the (k+1)-searches-per-type pattern
    the portfolio engine batches into one.
    """
    lines: list[str] = []
    for index in range(depth):
        target = f"Stage{index + 1}" if index + 1 < depth else "Terminal"
        lines += [
            f"type Stage{index} {{",
            f"  next: {target} @required",
            "  label: String!",
            "}",
            "",
        ]
    lines += ["type Terminal {", "  label: String!", "}", ""]
    for leaf in range(leaves):
        lines += [f"type Leaf{leaf} {{", "  tag: String!", "}", ""]
    for hub in range(hubs):
        lines.append(f"type Hub{hub} {{")
        lines.append("  entry: Stage0 @required")
        for leaf in range(leaves):
            lines.append(f"  f{leaf}: Leaf{leaf}")
        lines.append("}")
        lines.append("")
    return parse_schema("\n".join(lines))


def deep_lattice_schema(depth: int = 4, width: int = 2) -> GraphQLSchema:
    """A deep interface/union lattice stressing the dataflow analyzer.

    Unions nest by membership (``U_k`` holds the object types from level
    ``k`` down), interface ``I_k`` declares every relationship field at
    ``[U_k]``, and the level-``j`` object type implements ``I_0 .. I_j``
    while redeclaring each field at ``[T_last]`` -- the deepest type, the
    one member of *every* union, which keeps the schema consistent under
    the paper's nominal subtype relation.  The admissible-target set of a
    level-``j`` declaration is therefore the meet of ``j + 2`` nested
    ``∀``-typings, resolved through the union definitions.  Field ``f0``
    is ``@required`` everywhere, so every type chain-requires an edge into
    ``T_last``, which requires one into itself: the whole family is
    satisfiable, but only via a looping (or infinite) model the good
    fixpoint deliberately refuses to claim -- the tableau must still earn
    those verdicts, making this the analyzer's adversarial agreement case.
    """
    if depth < 2:
        raise ValueError("need a lattice of depth at least 2")
    last = depth - 1
    lines: list[str] = []
    for level in range(depth):
        members = " | ".join(f"T{j}" for j in range(level, depth))
        lines.append(f"union U{level} = {members}")
    lines.append("")
    for level in range(depth):
        lines.append(f"interface I{level} {{")
        for field_index in range(width):
            required = " @required" if field_index == 0 else ""
            lines.append(f"  f{field_index}: [U{level}]{required}")
        lines.append("}")
        lines.append("")
    for level in range(depth):
        implements = " & ".join(f"I{k}" for k in range(level + 1))
        lines.append(f"type T{level} implements {implements} {{")
        for field_index in range(width):
            required = " @required" if field_index == 0 else ""
            lines.append(f"  f{field_index}: [T{last}]{required}")
        lines.append("}")
        lines.append("")
    return parse_schema("\n".join(lines))


def near_unsat_schema(conflicts: int = 3, collide: bool = False) -> GraphQLSchema:
    """Schemas at the boundary of Example 6.1's conflicting-cardinality class.

    Each block has an interface-level ``@uniqueForTarget`` cap over two
    disjoint implementing source types and one ``@requiredForTarget``
    obligation -- exactly one forced incoming edge, which the cap admits,
    so every block is satisfiable but only barely.  With ``collide=True``
    the second source turns ``@requiredForTarget`` too: two disjoint forced
    sources under a one-edge cap make every ``Sink`` unsatisfiable, and a
    ``Probe`` type with a ``@required`` edge into ``Sink0`` dies with it
    (the propagation case).  The analyzer must prove the SAT side via its
    good fixpoint and the UNSAT side via the incoming-overflow rule; both
    verdicts are differentially checked against the tableau.
    """
    if conflicts < 1:
        raise ValueError("need at least one conflict block")
    second = " @requiredForTarget" if collide else ""
    lines: list[str] = []
    for index in range(conflicts):
        lines += [
            f"interface Channel{index} {{",
            f"  feed: [Sink{index}] @uniqueForTarget",
            "}",
            "",
            f"type SrcA{index} implements Channel{index} {{",
            f"  feed: [Sink{index}] @uniqueForTarget @requiredForTarget",
            "}",
            "",
            f"type SrcB{index} implements Channel{index} {{",
            f"  feed: [Sink{index}] @uniqueForTarget{second}",
            "}",
            "",
            f"type Sink{index} {{",
            "  tag: String!",
            "}",
            "",
        ]
    lines += ["type Probe {", "  hook: Sink0 @required", "}", ""]
    return parse_schema("\n".join(lines))


def union_fanout_schema(members: int = 8, fields: int = 8) -> GraphQLSchema:
    """A union fan-out family stressing admissible-target resolution.

    ``members`` object types sit under a family of *suffix* unions
    (``U_k = M_k | ... | M_last``), and a ``Hub`` type declares ``fields``
    required list fields, each typed at a different union.  Every sat/
    validation question over a hub field must expand a union of up to
    ``members`` alternatives, and every member type carries a ``link`` field
    back into its own suffix union, so target resolution fans out again one
    level down.  Everything is satisfiable; the adversarial cost is the
    union expansion itself -- the same ∀-meet work the deep lattice forces
    through interfaces, here forced purely through union membership.
    """
    if members < 2:
        raise ValueError("need at least two union members")
    if fields < 1:
        raise ValueError("need at least one hub field")
    lines: list[str] = []
    for k in range(members):
        suffix = " | ".join(f"M{j}" for j in range(k, members))
        lines.append(f"union U{k} = {suffix}")
    lines.append("")
    for i in range(members):
        lines += [
            f"type M{i} {{",
            "  tag: String! @required",
            f"  link: U{i} @required",
            "}",
            "",
        ]
    lines.append("type Hub {")
    for j in range(fields):
        lines.append(f"  f{j}: [U{j % members}] @required @distinct")
    lines.append("}")
    lines.append("")
    return parse_schema("\n".join(lines))


def key_collision_schema(blocks: int = 4, enum_values: int = 3) -> GraphQLSchema:
    """Pathological ``@key`` collision domains (finite key spaces).

    Each block declares an enum of ``enum_values`` symbols and a node type
    whose ``@key`` is the pair (enum attribute, Boolean attribute): only
    ``2 * enum_values`` distinct key tuples exist, so any population beyond
    that *must* collide (rule DS7) and the key-domain analysis (PG015/16)
    can bound the type's extent statically.  Blocks are chained through a
    ``peer`` relationship so collision questions propagate across types.
    Pair with :func:`key_collision_graph` for instances at and beyond the
    domain boundary.
    """
    if blocks < 1:
        raise ValueError("need at least one key block")
    if enum_values < 2:
        raise ValueError("need at least two enum values")
    lines: list[str] = []
    for i in range(blocks):
        symbols = " ".join(f"V{i}_{j}" for j in range(enum_values))
        lines += [
            f"enum D{i} {{ {symbols} }}",
            "",
            f'type K{i} @key(fields: ["a", "b"]) {{',
            f"  a: D{i}! @required",
            "  b: Boolean! @required",
            f"  peer: K{(i + 1) % blocks}",
            "}",
            "",
        ]
    return parse_schema("\n".join(lines))


def key_collision_graph(
    blocks: int = 4,
    enum_values: int = 3,
    nodes_per_type: int = 32,
    seed: int | None = None,
) -> "PropertyGraph":
    """An instance for :func:`key_collision_schema` at the same parameters.

    Key tuples are assigned round-robin over the ``2 * enum_values``-element
    domain, so with ``nodes_per_type`` above the domain size every type
    carries deterministic DS7 collisions -- the adversarial validation
    workload -- while ``nodes_per_type <= 2 * enum_values`` stays conformant.
    Peer edges link consecutive nodes within each block.
    """
    from ..pg.model import PropertyGraph

    rng = random.Random(seed)
    graph = PropertyGraph()
    nodes: list[list[object]] = []
    for i in range(blocks):
        nodes.append(
            [
                graph.add_node(
                    f"k{i}_{j}",
                    f"K{i}",
                    {
                        "a": f"V{i}_{j % enum_values}",
                        "b": bool((j // enum_values) % 2),
                    },
                )
                for j in range(nodes_per_type)
            ]
        )
    edge_count = 0
    for i in range(blocks):
        for j, node in enumerate(nodes[i]):
            if rng.random() < 0.75:
                target = nodes[(i + 1) % blocks][j]
                graph.add_edge(f"e{edge_count}", node, target, "peer")
                edge_count += 1
    return graph


def cardinality_web_schema(blocks: int = 4, collide: bool = False) -> GraphQLSchema:
    """A near-UNSAT cardinality *web*: Example 6.1 blocks wired in a ring.

    Every block is a conflicting-cardinality cell in the
    :func:`near_unsat_schema` style -- an interface-level
    ``@uniqueForTarget`` cap over two disjoint implementing sources with one
    ``@requiredForTarget`` obligation, leaving exactly the one forced edge
    the cap admits -- but the sinks additionally form a ``@required`` ring
    (``Sink_i`` must reach ``Sink_{i+1 mod blocks}``), so obligations
    propagate around the whole web instead of staying block-local.  The web
    is satisfiable only via a looping model the analyzer's good fixpoint
    refuses to claim, forcing tableau searches whose cost scales with the
    ring. With ``collide=True`` the second source turns
    ``@requiredForTarget`` too: the over-capacity block kills its sink and
    the ring propagates the death to every block -- the whole web goes
    unsatisfiable at once.
    """
    if blocks < 2:
        raise ValueError("need at least two blocks to form a web")
    second = " @requiredForTarget" if collide else ""
    lines: list[str] = []
    for index in range(blocks):
        lines += [
            f"interface Web{index} {{",
            f"  feed: [Sink{index}] @uniqueForTarget",
            "}",
            "",
            f"type SrcA{index} implements Web{index} {{",
            f"  feed: [Sink{index}] @uniqueForTarget @requiredForTarget",
            "}",
            "",
            f"type SrcB{index} implements Web{index} {{",
            f"  feed: [Sink{index}] @uniqueForTarget{second}",
            "}",
            "",
            f"type Sink{index} {{",
            "  tag: String!",
            f"  next: Sink{(index + 1) % blocks} @required",
            "}",
            "",
        ]
    return parse_schema("\n".join(lines))


def random_schema_sdl(
    num_object_types: int,
    num_interface_types: int,
    num_union_types: int,
    attributes_per_type: int,
    relationships_per_type: int,
    directive_probability: float,
    key_probability: float,
    rng: random.Random,
) -> str:
    """The SDL text of a random consistent schema."""
    if num_object_types < 1:
        raise ValueError("need at least one object type")
    object_names = [f"T{i}" for i in range(num_object_types)]
    interface_names = [f"I{i}" for i in range(num_interface_types)]
    union_names = [f"U{i}" for i in range(num_union_types)]

    # interfaces: one required attribute each, no relationships (keeps
    # consistency trivial: implementors repeat the attribute verbatim)
    interface_fields: dict[str, list[str]] = {}
    lines: list[str] = []
    for name in interface_names:
        field_line = f"  shared{name}: String!"
        interface_fields[name] = [field_line]
        lines.append(f"interface {name} {{")
        lines.append(field_line)
        lines.append("}")
        lines.append("")

    # unions over random object-type subsets
    for name in union_names:
        size = rng.randint(1, max(1, min(3, num_object_types)))
        members = rng.sample(object_names, size)
        lines.append(f"union {name} = " + " | ".join(members))
        lines.append("")

    implementations: dict[str, list[str]] = {name: [] for name in object_names}
    for interface in interface_names:
        for object_name in object_names:
            if rng.random() < 0.4:
                implementations[object_name].append(interface)

    relationship_targets = object_names + interface_names + union_names
    for index, object_name in enumerate(object_names):
        implements = implementations[object_name]
        header = f"type {object_name}"
        if implements:
            header += " implements " + " & ".join(implements)
        key_fields: list[str] = []
        body: list[str] = []
        for interface in implements:
            body.extend(interface_fields[interface])
        for attr_index in range(attributes_per_type):
            scalar = rng.choice(_SCALARS)
            shape = rng.choice(("{s}", "{s}!", "[{s}]", "[{s}!]", "[{s}!]!"))
            field_name = f"a{attr_index}"
            directives = ""
            if rng.random() < directive_probability:
                directives = " @required"
            body.append(f"  {field_name}: {shape.format(s=scalar)}{directives}")
            if not shape.startswith("[") and rng.random() < key_probability:
                key_fields.append(field_name)
        for rel_index in range(relationships_per_type):
            target = rng.choice(relationship_targets)
            is_list = rng.random() < 0.5
            shape = f"[{target}]" if is_list else target
            directives = []
            if rng.random() < directive_probability:
                directives.append("@required")
            if is_list and rng.random() < directive_probability:
                directives.append("@distinct")
            if target == object_name and rng.random() < directive_probability:
                directives.append("@noLoops")
            if rng.random() < directive_probability / 2:
                directives.append("@uniqueForTarget")
            suffix = (" " + " ".join(directives)) if directives else ""
            arguments = ""
            if rng.random() < directive_probability:
                arguments = "(weight: Float note: String)"
            body.append(f"  r{rel_index}{arguments}: {shape}{suffix}")
        if key_fields and rng.random() < key_probability:
            header += f' @key(fields: ["{key_fields[0]}"])'
        lines.append(header + " {")
        lines.extend(body)
        lines.append("}")
        lines.append("")
    return "\n".join(lines)
