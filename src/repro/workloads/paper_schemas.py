"""The paper's example schemas, verbatim, as a named corpus.

Every schema that appears in the paper is reproduced here so tests and
benchmarks can exercise exactly the artifacts the paper discusses.  Two
remarks recorded during reproduction:

* ``EXAMPLE_6_1_A`` (the satisfiability conflict of Example 6.1) is
  *interface-inconsistent* under the paper's own Definition 4.3: the
  implementing types declare ``hasOT1: [OT1]`` while the interface declares
  ``hasOT1: OT1``, and no subtype rule derives ``[OT1] ⊑ OT1``.  The corpus
  therefore marks it ``check=False``; the satisfiability engines accept it.
* Diagrams (b) and (c) of Example 6.1 are given only as figures; the ASCII
  rendering in the source text is ambiguous, so ``DIAGRAM_B`` and
  ``DIAGRAM_C`` are *reconstructions* that exhibit exactly the phenomena
  the paper's prose describes: (b) every model of OT2 needs an infinite
  alternating OT1/OT3 chain (finitely unsatisfiable, infinitely
  satisfiable -- ALCQI lacks the finite model property), and (c) an OT2
  node is forced to merge with an OT3 node, clashing with type
  disjointness (unsatisfiable outright).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schema.build import parse_schema
from ..schema.model import GraphQLSchema

#: Example 3.1 -- user sessions (the paper's running example).
USER_SESSION = """\
type UserSession {
  id: ID! @required
  user: User! @required
  startTime: Time! @required
  endTime: Time!
}

type User {
  id: ID! @required
  login: String! @required
  nicknames: [String!]!
}

scalar Time
"""

#: Example 3.4 -- user sessions with key constraints on User.
USER_SESSION_KEYED = USER_SESSION.replace(
    "type User {", 'type User @key(fields: ["id"]) @key(fields: ["login"]) {'
)

#: Example 3.12 -- user sessions with edge properties on the user edge.
USER_SESSION_EDGE_PROPS = USER_SESSION_KEYED.replace(
    "  user: User! @required",
    "  user(certainty: Float! comment: String): User! @required",
)

#: Examples 3.6-3.8 -- the books/authors/publishers schema with all four
#: cardinality patterns and the target-side directives.
LIBRARY = """\
type Author {
  favoriteBook: Book
  relatedAuthor: [Author] @distinct @noloops
}

type Book {
  title: String!
  author: [Author] @required @distinct
}

type BookSeries {
  contains: [Book] @required @uniqueForTarget
}

type Publisher {
  published: [Book] @uniqueForTarget @requiredForTarget
}
"""

#: Example 3.9 -- favourite food via a union type.
FOOD_UNION = """\
type Person {
  name: String!
  favoriteFood: Food
}

union Food = Pizza | Pasta

type Pizza {
  name: String!
  toppings: [String!]!
}

type Pasta {
  name: String!
}
"""

#: Example 3.10 -- the same restrictions via an interface type.
FOOD_INTERFACE = """\
type Person {
  name: String!
  favoriteFood: Food
}

interface Food {
  name: String!
}

type Pizza implements Food {
  name: String!
  toppings: [String!]!
}

type Pasta implements Food {
  name: String!
}
"""

#: Example 3.11 -- multiple source types for "owner" edges.
VEHICLES = FOOD_INTERFACE + """
type Car {
  brand: String!
  owner: Person
}

type Motorcycle {
  brand: String!
  owner: Person
}
"""

#: §3.3's cardinality table: one relationship per row, A-to-B.
CARDINALITY_TABLE = """\
type A {
  relOneOne: B @uniqueForTarget
  relOneN: B
  relNOne: [B] @uniqueForTarget
  relNM: [B]
}

type B {
  name: String
}
"""

#: Figure 1 -- the Star-Wars GraphQL schema (Appendix A), incl. root type.
FIGURE_1 = """\
type Starship {
  id: ID!
  name: String
  length(unit: LenUnit = METER): Float
}

enum LenUnit { METER FEET }

interface Character {
  id: ID!
  name: String
  friends: [Character]
}

type Human implements Character {
  id: ID!
  name: String
  friends: [Character]
  starships: [Starship]
}

type Droid implements Character {
  id: ID!
  name: String
  friends: [Character]
  primaryFunction: String!
}

type Query {
  hero(episode: Episode): Character
  search(text: String): [SearchResult]
}

enum Episode { NEWHOPE EMPIRE JEDI }

union SearchResult = Human | Droid | Starship

schema {
  query: Query
}
"""

#: Example 6.1, diagram (a) -- OT1 is unsatisfiable.  NOTE: interface-
#: inconsistent under Definition 4.3 (see module docstring); load with
#: check=False.
EXAMPLE_6_1_A = """\
type OT1 {
}

interface IT {
  hasOT1: OT1 @uniqueForTarget
}

type OT2 implements IT {
  hasOT1: [OT1] @requiredForTarget
}

type OT3 implements IT {
  hasOT1: [OT1] @requiredForTarget
}
"""

#: Reconstruction of diagram (b): OT2 forces an infinite alternating
#: OT1/OT3 chain.  Every node reachable from an OT2 node must have an
#: outgoing f-edge, every IT-node may receive at most one incoming f-edge
#: from IT-nodes, and nothing may point back at OT2 -- so finite models are
#: impossible while the infinite chain is a model.
DIAGRAM_B = """\
interface IT {
  f: [IT] @uniqueForTarget
}

type OT2 implements IT {
  f: [OT1] @required
}

type OT1 implements IT {
  f: [OT3] @required
}

type OT3 implements IT {
  f: [OT1] @required
}
"""

#: Reconstruction of diagram (c): every OT2 node must be identical to an
#: OT3 node (via the shared OT1 target's @uniqueForTarget/@requiredForTarget
#: pair), clashing with type disjointness -- unsatisfiable outright.
DIAGRAM_C = """\
interface IT {
  g: [OT1] @uniqueForTarget
}

type OT2 implements IT {
  g: [OT1] @required
}

type OT3 implements IT {
  g: [OT1] @requiredForTarget
}

type OT1 {
  name: String
}
"""


@dataclass(frozen=True)
class PaperSchema:
    """A corpus entry: the SDL text plus how to load it."""

    name: str
    sdl: str
    consistent: bool = True
    description: str = ""

    def load(self) -> GraphQLSchema:
        return parse_schema(self.sdl, check=self.consistent)


#: The full corpus, keyed by a short name.
CORPUS: dict[str, PaperSchema] = {
    entry.name: entry
    for entry in (
        PaperSchema("user_session", USER_SESSION, True, "Example 3.1"),
        PaperSchema("user_session_keyed", USER_SESSION_KEYED, True, "Example 3.4"),
        PaperSchema(
            "user_session_edge_props", USER_SESSION_EDGE_PROPS, True, "Example 3.12"
        ),
        PaperSchema("library", LIBRARY, True, "Examples 3.6-3.8"),
        PaperSchema("food_union", FOOD_UNION, True, "Example 3.9"),
        PaperSchema("food_interface", FOOD_INTERFACE, True, "Example 3.10"),
        PaperSchema("vehicles", VEHICLES, True, "Example 3.11"),
        PaperSchema("cardinality_table", CARDINALITY_TABLE, True, "§3.3 table"),
        PaperSchema("figure_1", FIGURE_1, True, "Figure 1 (Appendix A)"),
        PaperSchema(
            "example_6_1_a",
            EXAMPLE_6_1_A,
            False,
            "Example 6.1 diagram (a); interface-inconsistent as printed",
        ),
        PaperSchema("diagram_b", DIAGRAM_B, True, "Example 6.1 diagram (b), reconstruction"),
        PaperSchema("diagram_c", DIAGRAM_C, True, "Example 6.1 diagram (c), reconstruction"),
    )
}


def load(name: str) -> GraphQLSchema:
    """Load a corpus schema by name."""
    return CORPUS[name].load()
