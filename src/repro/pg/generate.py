"""Random Property Graph generation (schema-agnostic).

These generators produce *unconstrained* random Property Graphs, useful for
stress-testing the structural layer and for negative validation workloads.
Schema-*conformant* generation lives in :mod:`repro.workloads.graphs`, where
it can consult a schema.
"""

from __future__ import annotations

import random
from typing import Sequence

from .model import PropertyGraph

_DEFAULT_LABELS = ("A", "B", "C")
_DEFAULT_EDGE_LABELS = ("r", "s")
_DEFAULT_PROP_NAMES = ("p", "q")


def random_graph(
    num_nodes: int,
    num_edges: int,
    node_labels: Sequence[str] = _DEFAULT_LABELS,
    edge_labels: Sequence[str] = _DEFAULT_EDGE_LABELS,
    prop_names: Sequence[str] = _DEFAULT_PROP_NAMES,
    prop_probability: float = 0.5,
    seed: int | None = None,
) -> PropertyGraph:
    """A uniform random multigraph with random labels and scalar properties.

    Nodes are ``n0 … n{num_nodes-1}``; each edge picks uniform random
    endpoints (self-loops allowed, parallel edges allowed -- Property Graphs
    are directed multigraphs).  Each node independently receives each
    property name with probability *prop_probability*.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    if num_nodes <= 0:
        return graph
    node_ids = [f"n{i}" for i in range(num_nodes)]
    for node_id in node_ids:
        props = {
            name: rng.randrange(1000)
            for name in prop_names
            if rng.random() < prop_probability
        }
        graph.add_node(node_id, rng.choice(tuple(node_labels)), props or None)
    for i in range(num_edges):
        graph.add_edge(
            f"e{i}",
            rng.choice(node_ids),
            rng.choice(node_ids),
            rng.choice(tuple(edge_labels)),
        )
    return graph


def chain_graph(length: int, node_label: str = "A", edge_label: str = "r") -> PropertyGraph:
    """A simple directed path: n0 -r-> n1 -r-> ... of *length* edges."""
    graph = PropertyGraph()
    graph.add_node("n0", node_label)
    for i in range(length):
        graph.add_node(f"n{i + 1}", node_label)
        graph.add_edge(f"e{i}", f"n{i}", f"n{i + 1}", edge_label)
    return graph


def star_graph(
    num_leaves: int,
    center_label: str = "A",
    leaf_label: str = "B",
    edge_label: str = "r",
) -> PropertyGraph:
    """A star: one center with *num_leaves* outgoing edges to distinct leaves."""
    graph = PropertyGraph()
    graph.add_node("center", center_label)
    for i in range(num_leaves):
        graph.add_node(f"leaf{i}", leaf_label)
        graph.add_edge(f"e{i}", "center", f"leaf{i}", edge_label)
    return graph
