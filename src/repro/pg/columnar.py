"""Columnar, frozen Property Graphs: interned pools and contiguous columns.

:class:`ColumnarGraph` is an immutable backing store for a Property Graph
(Definition 2.1) that replaces the dict-of-dicts layout of
:class:`~repro.pg.model.PropertyGraph` with contiguous arrays:

* **interned string pools** -- every label and property key is interned
  once into a :class:`StringPool`; elements carry dense integer ids, so
  the hot loops compare ints instead of hashing strings;
* **label-sorted row orders** -- nodes are permuted so that equal labels
  form contiguous *runs* (``node_runs``), and edges so that equal
  (source label, edge label) shapes do (``edge_runs``); the fused shard
  kernel resolves its per-label dispatch record once per run instead of
  once per element;
* **CSR incidence** -- outgoing/incoming edges live in one flat array per
  direction with per-node offsets, sorted by edge-label id inside each
  node's slice, so ``out_degree`` is two binary searches and no dict of
  lists exists per node;
* **typed property columns with presence bitmaps** -- each property key
  becomes one :class:`PropertyColumn` in row space; a popcount over the
  bitmap answers "how many nodes of this run carry the property" without
  touching the values, and columns whose value kind provably lies inside
  a scalar domain (``ScalarRegistry.accepts_kind``) let WS1/WS2 pass a
  whole run wholesale.

The class implements the full read API of :class:`PropertyGraph` (same
method names, same error messages), so every validation engine runs on it
unchanged; mutators raise :class:`~repro.errors.GraphError`.  Freeze a
mutable graph with :func:`freeze` (or ``graph.freeze()``), build one
directly from a loader with :class:`ColumnarBuilder`, and get a mutable
copy back with :meth:`ColumnarGraph.thaw`.

Integer columns use the stdlib :mod:`array` module; when numpy is
importable the build-time permutation sorts go through ``np.lexsort``,
but numpy is never required and the stored representation is identical
(and picklable) either way.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Any, Iterator, Mapping

from .. import obs
from ..errors import GraphError
from .model import _EMPTY_PROPERTIES, ElementId, PropertyGraph
from .values import PropertyValue, normalize_value

try:  # optional acceleration only -- the pure-python paths are canonical
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None  # type: ignore[assignment]

#: Sentinel group-role bits used by the out-of-core loader (re-exported
#: here so the spill format has one authoritative home).
ROLE_ELEMENT = 1
ROLE_SOURCE_GROUP = 2
ROLE_TARGET_GROUP = 4
ROLE_OUT_DEGREE = 8
ROLE_IN_DEGREE = 16


class StringPool:
    """Interned strings with dense ids in first-appearance order."""

    __slots__ = ("_ids", "_strings")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []

    def intern(self, value: str) -> int:
        """The id of *value*, interning it on first sight."""
        found = self._ids.get(value)
        if found is None:
            found = len(self._strings)
            self._ids[value] = found
            self._strings.append(value)
        return found

    def id_of(self, value: str) -> int:
        """The id of *value*, or ``-1`` when it was never interned."""
        return self._ids.get(value, -1)

    def __getitem__(self, index: int) -> str:
        return self._strings[index]

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, value: str) -> bool:
        return value in self._ids

    @property
    def strings(self) -> list[str]:
        """The interned strings, id order (a copy)."""
        return list(self._strings)


class PropertyColumn:
    """One property key's values over a row space, with a presence bitmap.

    ``kind`` is the uniform runtime kind of every stored value --
    ``"int"``, ``"float"``, ``"bool"``, ``"str"`` -- or ``"obj"`` when the
    values are tuples or mixed kinds.  The kind plus the build-time facts
    (``int_min``/``int_max``, ``floats_finite``, ``item_kind``) are what
    lets the columnar kernel accept a whole column against a scalar
    domain without per-value checks (see ``ScalarRegistry.accepts_kind``).
    """

    __slots__ = (
        "kind",
        "count",
        "size",
        "present",
        "values",
        "int_min",
        "int_max",
        "floats_finite",
        "has_empty_tuple",
        "item_kind",
        "item_int_min",
        "item_int_max",
        "item_floats_finite",
    )

    def __init__(self) -> None:
        self.kind = "obj"
        self.count = 0
        self.size = 0
        self.present = b""
        self.values: Any = None
        self.int_min = 0
        self.int_max = 0
        self.floats_finite = True
        self.has_empty_tuple = False
        #: uniform item kind when every value is a tuple: "str"/"bool"/
        #: "int"/"float"/"empty", or None (mixed items or non-tuple values)
        self.item_kind: str | None = None
        self.item_int_min = 0
        self.item_int_max = 0
        self.item_floats_finite = True

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls, pairs: list[tuple[int, PropertyValue]], size: int
    ) -> "PropertyColumn":
        """A column over ``size`` rows holding the given (row, value) pairs."""
        column = cls()
        column.size = size
        column.count = len(pairs)
        bitmap = bytearray((size + 7) >> 3)
        kind = _uniform_kind(pairs)
        column.kind = kind
        if kind == "int":
            values = array("q", bytes(8 * size))
            lo = hi = pairs[0][1] if pairs else 0
            for row, value in pairs:
                bitmap[row >> 3] |= 1 << (row & 7)
                values[row] = value  # type: ignore[call-overload]
                if value < lo:  # type: ignore[operator]
                    lo = value
                if value > hi:  # type: ignore[operator]
                    hi = value
            column.values = values
            column.int_min = int(lo)  # type: ignore[arg-type]
            column.int_max = int(hi)  # type: ignore[arg-type]
        elif kind == "float":
            values = array("d", bytes(8 * size))
            finite = True
            for row, value in pairs:
                bitmap[row >> 3] |= 1 << (row & 7)
                values[row] = value  # type: ignore[call-overload]
                if not (float("-inf") < value < float("inf")):  # type: ignore[operator]
                    finite = False  # NaN or +/-inf
            column.values = values
            column.floats_finite = finite
        elif kind == "bool":
            bits = bytearray((size + 7) >> 3)
            for row, value in pairs:
                bitmap[row >> 3] |= 1 << (row & 7)
                if value:
                    bits[row >> 3] |= 1 << (row & 7)
            column.values = bytes(bits)
        else:  # "str" / "obj": a list with None holes
            cells: list[Any] = [None] * size
            for row, value in pairs:
                bitmap[row >> 3] |= 1 << (row & 7)
                cells[row] = value
            column.values = cells
            if kind == "obj":
                column._inspect_items(pairs)
        column.present = bytes(bitmap)
        return column

    def _inspect_items(self, pairs: list[tuple[int, PropertyValue]]) -> None:
        """Compute the uniform tuple-item kind facts of an object column."""
        item_kinds: set[str] = set()
        lo = hi = 0
        seeded = False
        finite = True
        uniform = True
        for _row, value in pairs:
            if not isinstance(value, tuple):
                # Keep scanning: has_empty_tuple must still be computed so
                # the DS5 empty-list check fires on mixed columns.
                uniform = False
                continue
            if not value:
                self.has_empty_tuple = True
                continue
            if not uniform:
                continue
            for item in value:
                kind = _value_kind(item)
                item_kinds.add(kind)
                if kind == "int":
                    item = int(item)  # type: ignore[arg-type]
                    if not seeded:
                        lo = hi = item
                        seeded = True
                    elif item < lo:
                        lo = item
                    elif item > hi:
                        hi = item
                elif kind == "float" and not (
                    float("-inf") < item < float("inf")  # type: ignore[operator]
                ):
                    finite = False
        if not uniform:
            self.item_kind = None
        elif not item_kinds:
            self.item_kind = "empty"
        elif len(item_kinds) == 1:
            self.item_kind = item_kinds.pop()
            self.item_int_min = lo
            self.item_int_max = hi
            self.item_floats_finite = finite
        else:
            self.item_kind = None

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def has(self, row: int) -> bool:
        return bool(self.present[row >> 3] & (1 << (row & 7)))

    def get(self, row: int) -> PropertyValue:
        """The value at *row* (undefined when :meth:`has` is false)."""
        if self.kind == "bool":
            return bool(self.values[row >> 3] & (1 << (row & 7)))
        value: PropertyValue = self.values[row]
        return value

    def count_range(self, lo: int, hi: int) -> int:
        """Number of present rows in ``[lo, hi)`` (a bitmap popcount)."""
        if lo >= hi:
            return 0
        present = self.present
        first, last = lo >> 3, (hi - 1) >> 3
        tail_bits = ((hi - 1) & 7) + 1
        if first == last:
            mask = ((1 << tail_bits) - 1) & ~((1 << (lo & 7)) - 1)
            return (present[first] & mask).bit_count()
        total = (present[first] >> (lo & 7)).bit_count()
        mid = present[first + 1 : last]
        if mid:
            total += int.from_bytes(mid, "little").bit_count()
        total += (present[last] & ((1 << tail_bits) - 1)).bit_count()
        return total

    def iter_present(self, lo: int, hi: int) -> Iterator[int]:
        """Rows in ``[lo, hi)`` that hold a value (skipping empty bytes)."""
        present = self.present
        row = lo
        while row < hi:
            if not (row & 7) and row + 8 <= hi:
                byte = present[row >> 3]
                if not byte:
                    row += 8
                    continue
            if present[row >> 3] & (1 << (row & 7)):
                yield row
            row += 1

    def iter_absent(self, lo: int, hi: int) -> Iterator[int]:
        """Rows in ``[lo, hi)`` that hold no value (skipping full bytes)."""
        present = self.present
        row = lo
        while row < hi:
            if not (row & 7) and row + 8 <= hi:
                byte = present[row >> 3]
                if byte == 0xFF:
                    row += 8
                    continue
            if not present[row >> 3] & (1 << (row & 7)):
                yield row
            row += 1


def _value_kind(value: object) -> str:
    """The column kind tag of one atomic value (bool before int!)."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    return "obj"


_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _uniform_kind(pairs: list[tuple[int, PropertyValue]]) -> str:
    """The storage kind of a column: a uniform atomic kind or ``obj``."""
    kind: str | None = None
    for _row, value in pairs:
        value_kind = _value_kind(value)
        if value_kind == "int" and not (
            _INT64_MIN <= value <= _INT64_MAX  # type: ignore[operator]
        ):
            return "obj"  # arbitrary-precision ints stay boxed
        if kind is None:
            kind = value_kind
        elif kind != value_kind:
            return "obj"
    if kind is None or kind == "obj":
        return "obj"
    return kind


class ColumnarGraph:
    """An immutable, array-backed Property Graph (see the module docstring).

    Instances are produced by :class:`ColumnarBuilder` / :func:`freeze`;
    the constructor builds an empty graph.  The read API is drop-in
    compatible with :class:`~repro.pg.model.PropertyGraph`; mutators raise
    :class:`~repro.errors.GraphError`.
    """

    #: Cheap backend test used by the partitioner and the stats sweep.
    is_columnar = True

    __slots__ = (
        "labels",
        "keys",
        "_node_ids",
        "_node_index",
        "_node_label_ids",
        "_node_row_of",
        "_node_ext_of",
        "_node_runs",
        "_edge_ids",
        "_edge_index",
        "_edge_label_ids",
        "_edge_src",
        "_edge_tgt",
        "_edge_row_of",
        "_edge_ext_of",
        "_edge_runs",
        "_out_starts",
        "_out_labels",
        "_out_edges",
        "_in_starts",
        "_in_labels",
        "_in_edges",
        "_node_columns",
        "_edge_columns",
        "_src_sets",
        "_pair_targets",
        "_run_target_labels",
        "_run_loops",
        "_run_distinct_sources",
        "_source_groups",
        "_target_groups",
    )

    def __init__(self) -> None:
        self.labels = StringPool()
        self.keys = StringPool()
        self._node_ids: list[ElementId] = []
        self._node_index: dict[ElementId, int] = {}
        self._node_label_ids = array("i")
        self._node_row_of = array("i")
        self._node_ext_of = array("i")
        #: (label id, start row, end row) runs, ascending label id.
        self._node_runs: list[tuple[int, int, int]] = []
        self._edge_ids: list[ElementId] = []
        self._edge_index: dict[ElementId, int] = {}
        self._edge_label_ids = array("i")
        self._edge_src = array("i")
        self._edge_tgt = array("i")
        self._edge_row_of = array("i")
        self._edge_ext_of = array("i")
        #: (source label id, edge label id, start row, end row) runs.
        self._edge_runs: list[tuple[int, int, int, int]] = []
        self._out_starts = array("i", (0,))
        self._out_labels = array("i")
        self._out_edges = array("i")
        self._in_starts = array("i", (0,))
        self._in_labels = array("i")
        self._in_edges = array("i")
        self._node_columns: dict[int, PropertyColumn] = {}
        self._edge_columns: dict[int, PropertyColumn] = {}
        # lazy, append-only caches (all derived; safe to drop)
        self._src_sets: dict[int, frozenset[int]] = {}
        self._pair_targets: dict[tuple[int, frozenset[int]], frozenset[int]] = {}
        self._run_target_labels: dict[int, frozenset[int]] = {}
        self._run_loops: dict[int, bool] = {}
        self._run_distinct_sources: dict[int, int] = {}
        self._source_groups: list[tuple[int, int, int, int]] | None = None
        self._target_groups: list[tuple[int, int, int, int]] | None = None

    # ------------------------------------------------------------------ #
    # mutators: frozen
    # ------------------------------------------------------------------ #

    def _frozen(self, operation: str) -> GraphError:
        return GraphError(
            f"graph is frozen: {operation} is not supported on a "
            "ColumnarGraph (thaw() for a mutable copy)"
        )

    def add_node(self, *args: object, **kwargs: object) -> ElementId:
        raise self._frozen("add_node")

    def add_edge(self, *args: object, **kwargs: object) -> ElementId:
        raise self._frozen("add_edge")

    def set_property(self, *args: object, **kwargs: object) -> None:
        raise self._frozen("set_property")

    def remove_property(self, *args: object, **kwargs: object) -> None:
        raise self._frozen("remove_property")

    def remove_edge(self, *args: object, **kwargs: object) -> None:
        raise self._frozen("remove_edge")

    def remove_node(self, *args: object, **kwargs: object) -> None:
        raise self._frozen("remove_node")

    # ------------------------------------------------------------------ #
    # the five components of Definition 2.1 (PropertyGraph-compatible)
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Iterator[ElementId]:
        """Iterate over V (insertion order)."""
        return iter(self._node_ids)

    @property
    def edges(self) -> Iterator[ElementId]:
        """Iterate over E (insertion order)."""
        return iter(self._edge_ids)

    def endpoints(self, edge_id: ElementId) -> tuple[ElementId, ElementId]:
        """ρ(e): the (source, target) pair of an edge."""
        ext = self._edge_index.get(edge_id)
        if ext is None:
            raise GraphError(f"no such edge: {edge_id!r}")
        ids = self._node_ids
        return ids[self._edge_src[ext]], ids[self._edge_tgt[ext]]

    def label(self, element_id: ElementId) -> str:
        """λ(x): the label of a node or edge."""
        ext = self._node_index.get(element_id)
        if ext is not None:
            return self.labels[self._node_label_ids[ext]]
        ext = self._edge_index.get(element_id)
        if ext is not None:
            return self.labels[self._edge_label_ids[ext]]
        raise GraphError(f"no such element: {element_id!r}")

    def properties(self, element_id: ElementId) -> Mapping[str, PropertyValue]:
        """All properties of an element as a detached dict (may be empty)."""
        self._require_element(element_id)
        return dict(self.property_map(element_id))

    def property_value(self, element_id: ElementId, name: str) -> PropertyValue | None:
        """σ(element, name), or None when (element, name) ∉ dom(σ)."""
        key_id = self.keys.id_of(name)
        if key_id < 0:
            return None
        row, columns = self._row_and_columns(element_id)
        if row < 0:
            return None
        column = columns.get(key_id)
        if column is None or not column.has(row):
            return None
        return column.get(row)

    def has_property(self, element_id: ElementId, name: str) -> bool:
        """True when (element, name) ∈ dom(σ)."""
        key_id = self.keys.id_of(name)
        if key_id < 0:
            return False
        row, columns = self._row_and_columns(element_id)
        if row < 0:
            return False
        column = columns.get(key_id)
        return column is not None and column.has(row)

    # ------------------------------------------------------------------ #
    # derived views (PropertyGraph-compatible)
    # ------------------------------------------------------------------ #

    def is_node(self, element_id: ElementId) -> bool:
        return element_id in self._node_index

    def is_edge(self, element_id: ElementId) -> bool:
        return element_id in self._edge_index

    @property
    def num_nodes(self) -> int:
        return len(self._node_ids)

    @property
    def num_edges(self) -> int:
        return len(self._edge_ids)

    def out_edges(self, node_id: ElementId, label: str | None = None) -> list[ElementId]:
        """Edges whose source is *node_id*, optionally restricted to one label."""
        return self._incident(
            node_id, label, self._out_starts, self._out_labels, self._out_edges
        )

    def in_edges(self, node_id: ElementId, label: str | None = None) -> list[ElementId]:
        """Edges whose target is *node_id*, optionally restricted to one label."""
        return self._incident(
            node_id, label, self._in_starts, self._in_labels, self._in_edges
        )

    def _incident(
        self,
        node_id: ElementId,
        label: str | None,
        starts: "array[int]",
        labels: "array[int]",
        edges: "array[int]",
    ) -> list[ElementId]:
        ext = self._node_index.get(node_id)
        if ext is None:
            return []
        lo, hi = starts[ext], starts[ext + 1]
        if label is not None:
            label_id = self.labels.id_of(label)
            if label_id < 0:
                return []
            lo = bisect_left(labels, label_id, lo, hi)
            hi = bisect_right(labels, label_id, lo, hi)
        ids = self._edge_ids
        return [ids[edges[position]] for position in range(lo, hi)]

    def out_degree(self, node_id: ElementId, label: str) -> int:
        """Number of outgoing edges with the given label (two bisects)."""
        ext = self._node_index.get(node_id)
        if ext is None:
            return 0
        label_id = self.labels.id_of(label)
        if label_id < 0:
            return 0
        lo, hi = self._out_starts[ext], self._out_starts[ext + 1]
        left = bisect_left(self._out_labels, label_id, lo, hi)
        return bisect_right(self._out_labels, label_id, left, hi) - left

    def iter_in_edges(
        self, node_id: ElementId, label: str
    ) -> tuple[ElementId, ...] | list[ElementId]:
        """Incoming edges with the given label (read-only)."""
        ext = self._node_index.get(node_id)
        if ext is None:
            return ()
        label_id = self.labels.id_of(label)
        if label_id < 0:
            return ()
        lo, hi = self._in_starts[ext], self._in_starts[ext + 1]
        left = bisect_left(self._in_labels, label_id, lo, hi)
        right = bisect_right(self._in_labels, label_id, left, hi)
        ids = self._edge_ids
        edges = self._in_edges
        return tuple(ids[edges[position]] for position in range(left, right))

    def property_map(self, element_id: ElementId) -> Mapping[str, PropertyValue]:
        """The element's properties as a freshly-built dict (the columnar
        kernel never calls this; the generic engines do)."""
        row, columns = self._row_and_columns(element_id)
        if row < 0:
            return _EMPTY_PROPERTIES
        props: dict[str, PropertyValue] = {}
        keys = self.keys
        for key_id, column in columns.items():
            if column.has(row):
                props[keys[key_id]] = column.get(row)
        return props

    def nodes_with_label(self, label: str) -> list[ElementId]:
        """All nodes v with λ(v) = label, in insertion order."""
        label_id = self.labels.id_of(label)
        if label_id < 0:
            return []
        ids = self._node_ids
        ext_of = self._node_ext_of
        for run_label, start, end in self._node_runs:
            if run_label == label_id:
                return [ids[ext_of[row]] for row in range(start, end)]
        return []

    def property_items(self) -> Iterator[tuple[ElementId, str, PropertyValue]]:
        """Iterate over dom(σ) as (element, property name, value) triples."""
        keys = self.keys
        for ids, row_of, columns in (
            (self._node_ids, self._node_row_of, self._node_columns),
            (self._edge_ids, self._edge_row_of, self._edge_columns),
        ):
            for ext, element in enumerate(ids):
                row = row_of[ext]
                for key_id, column in columns.items():
                    if column.has(row):
                        yield element, keys[key_id], column.get(row)

    def node_items(self) -> list[tuple[ElementId, str]]:
        """All (node, λ(node)) pairs, insertion order."""
        labels = self.labels
        return [
            (node, labels[self._node_label_ids[ext]])
            for ext, node in enumerate(self._node_ids)
        ]

    def edge_records(
        self,
    ) -> list[tuple[ElementId, ElementId, ElementId, str, str, str]]:
        """All (edge, source, target, λ(e), λ(src), λ(tgt)) tuples."""
        labels = self.labels
        node_ids = self._node_ids
        node_labels = self._node_label_ids
        src, tgt = self._edge_src, self._edge_tgt
        records = []
        append = records.append
        for ext, edge in enumerate(self._edge_ids):
            source, target = src[ext], tgt[ext]
            append(
                (
                    edge,
                    node_ids[source],
                    node_ids[target],
                    labels[self._edge_label_ids[ext]],
                    labels[node_labels[source]],
                    labels[node_labels[target]],
                )
            )
        return records

    # ------------------------------------------------------------------ #
    # misc (PropertyGraph-compatible)
    # ------------------------------------------------------------------ #

    def copy(self) -> "ColumnarGraph":
        """Immutable, so a copy is the graph itself."""
        return self

    def thaw(self) -> PropertyGraph:
        """A mutable :class:`PropertyGraph` with identical content."""
        graph = PropertyGraph()
        for node, label in self.node_items():
            graph.add_node(node, label, self.property_map(node) or None)
        for edge, source, target, label, _sl, _tl in self.edge_records():
            graph.add_edge(edge, source, target, label, self.property_map(edge) or None)
        return graph

    def __contains__(self, element_id: object) -> bool:
        return element_id in self._node_index or element_id in self._edge_index

    def __len__(self) -> int:
        """Size of the graph: |V| + |E| (the n of the complexity analysis)."""
        return len(self._node_ids) + len(self._edge_ids)

    def __repr__(self) -> str:
        return (
            f"ColumnarGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"labels={len(self.labels)}, keys={len(self.keys)})"
        )

    def _require_element(self, element_id: ElementId) -> None:
        if element_id not in self._node_index and element_id not in self._edge_index:
            raise GraphError(f"no such element: {element_id!r}")

    def _row_and_columns(
        self, element_id: ElementId
    ) -> tuple[int, dict[int, PropertyColumn]]:
        ext = self._node_index.get(element_id)
        if ext is not None:
            return self._node_row_of[ext], self._node_columns
        ext = self._edge_index.get(element_id)
        if ext is not None:
            return self._edge_row_of[ext], self._edge_columns
        return -1, self._node_columns

    # ------------------------------------------------------------------ #
    # columnar layout: the kernel-facing API
    # ------------------------------------------------------------------ #

    @property
    def node_runs(self) -> list[tuple[int, int, int]]:
        """(label id, start row, end row) runs over the node row space."""
        return self._node_runs

    @property
    def edge_runs(self) -> list[tuple[int, int, int, int]]:
        """(source label id, edge label id, start, end) edge-row runs."""
        return self._edge_runs

    @property
    def node_ext_of(self) -> "array[int]":
        """Node row -> insertion position (read-only)."""
        return self._node_ext_of

    @property
    def edge_ext_of(self) -> "array[int]":
        """Edge row -> insertion position (read-only)."""
        return self._edge_ext_of

    @property
    def edge_src(self) -> "array[int]":
        """Edge insertion position -> source node position (read-only)."""
        return self._edge_src

    @property
    def edge_tgt(self) -> "array[int]":
        """Edge insertion position -> target node position (read-only)."""
        return self._edge_tgt

    @property
    def node_label_ids(self) -> "array[int]":
        """Node insertion position -> label id (read-only)."""
        return self._node_label_ids

    @property
    def node_columns(self) -> dict[int, PropertyColumn]:
        """Node property columns by key id (read-only; row space)."""
        return self._node_columns

    @property
    def edge_columns(self) -> dict[int, PropertyColumn]:
        """Edge property columns by key id (read-only; row space)."""
        return self._edge_columns

    def node_id_at(self, ext: int) -> ElementId:
        return self._node_ids[ext]

    def edge_id_at(self, ext: int) -> ElementId:
        return self._edge_ids[ext]

    @property
    def node_id_list(self) -> list[ElementId]:
        """Node insertion position -> identifier (read-only)."""
        return self._node_ids

    @property
    def edge_id_list(self) -> list[ElementId]:
        """Edge insertion position -> identifier (read-only)."""
        return self._edge_ids

    def out_degree_fast(self, ext: int, label_id: int) -> int:
        """out_degree by node position and label id (no dict probes)."""
        lo, hi = self._out_starts[ext], self._out_starts[ext + 1]
        left = bisect_left(self._out_labels, label_id, lo, hi)
        return bisect_right(self._out_labels, label_id, left, hi) - left

    def sources_with_edge_label(self, label_id: int) -> frozenset[int]:
        """Node positions with >= 1 outgoing edge of *label_id* (cached)."""
        found = self._src_sets.get(label_id)
        if found is None:
            edge_labels = self._edge_label_ids
            src = self._edge_src
            found = frozenset(
                src[ext]
                for ext in range(len(self._edge_ids))
                if edge_labels[ext] == label_id
            )
            self._src_sets[label_id] = found
        return found

    def targets_of_labelled_sources(
        self, edge_label_id: int, source_label_ids: frozenset[int]
    ) -> frozenset[int]:
        """Node positions receiving an *edge_label_id* edge from a source
        whose label is in *source_label_ids* (the DS4 membership set;
        cached per (edge label, allowed set))."""
        key = (edge_label_id, source_label_ids)
        found = self._pair_targets.get(key)
        if found is None:
            edge_labels = self._edge_label_ids
            node_labels = self._node_label_ids
            src, tgt = self._edge_src, self._edge_tgt
            found = frozenset(
                tgt[ext]
                for ext in range(len(self._edge_ids))
                if edge_labels[ext] == edge_label_id
                and node_labels[src[ext]] in source_label_ids
            )
            self._pair_targets[key] = found
        return found

    def run_target_labels(self, run_index: int) -> frozenset[int]:
        """Distinct target label ids of one edge run (cached; lets WS3
        accept a whole run when the set is inside the allowed labels)."""
        found = self._run_target_labels.get(run_index)
        if found is None:
            _sl, _el, start, end = self._edge_runs[run_index]
            ext_of = self._edge_ext_of
            node_labels = self._node_label_ids
            tgt = self._edge_tgt
            found = frozenset(
                node_labels[tgt[ext_of[row]]] for row in range(start, end)
            )
            self._run_target_labels[run_index] = found
        return found

    def run_has_loops(self, run_index: int) -> bool:
        """True when some edge of the run is a self-loop (cached)."""
        found = self._run_loops.get(run_index)
        if found is None:
            _sl, _el, start, end = self._edge_runs[run_index]
            ext_of = self._edge_ext_of
            src, tgt = self._edge_src, self._edge_tgt
            found = any(
                src[ext_of[row]] == tgt[ext_of[row]] for row in range(start, end)
            )
            self._run_loops[run_index] = found
        return found

    def run_distinct_sources(self, run_index: int) -> int:
        """Distinct sources of one edge run (cached; DS6 accepts a whole
        node run when this equals the run's node count)."""
        found = self._run_distinct_sources.get(run_index)
        if found is None:
            _sl, _el, start, end = self._edge_runs[run_index]
            ext_of = self._edge_ext_of
            src = self._edge_src
            found = len({src[ext_of[row]] for row in range(start, end)})
            self._run_distinct_sources[run_index] = found
        return found

    def source_groups(self) -> list[tuple[int, int, int, int]]:
        """(source position, edge label id, start, end) slices into the
        outgoing CSR for every (source, label) group with >= 2 edges --
        the WS4/DS1 scopes, enumerated without hashing (cached)."""
        if self._source_groups is None:
            self._source_groups = _csr_groups(
                self._out_starts, self._out_labels, len(self._node_ids)
            )
        return self._source_groups

    def target_groups(self) -> list[tuple[int, int, int, int]]:
        """(target position, edge label id, start, end) slices into the
        incoming CSR for every (target, label) group with >= 2 edges --
        the DS3 scopes (cached)."""
        if self._target_groups is None:
            self._target_groups = _csr_groups(
                self._in_starts, self._in_labels, len(self._node_ids)
            )
        return self._target_groups

    def out_csr_edges(self) -> "array[int]":
        """The outgoing CSR payload: edge positions (read-only)."""
        return self._out_edges

    def in_csr_edges(self) -> "array[int]":
        """The incoming CSR payload: edge positions (read-only)."""
        return self._in_edges

    def out_csr(self) -> "tuple[array[int], array[int]]":
        """The outgoing CSR index: (row starts, per-slot edge label ids).
        Slot ``i`` of node ``ext`` lives at ``starts[ext] <= i <
        starts[ext + 1]``; slots are sorted by label id, so per-label
        degrees are run lengths (how the stats sweep reads histograms)."""
        return self._out_starts, self._out_labels

    def in_csr(self) -> "tuple[array[int], array[int]]":
        """The incoming CSR index: (row starts, per-slot edge label ids)."""
        return self._in_starts, self._in_labels


def _csr_groups(
    starts: "array[int]", labels: "array[int]", num_nodes: int
) -> list[tuple[int, int, int, int]]:
    groups: list[tuple[int, int, int, int]] = []
    append = groups.append
    for ext in range(num_nodes):
        lo, hi = starts[ext], starts[ext + 1]
        position = lo
        while position < hi:
            label_id = labels[position]
            run_end = position + 1
            while run_end < hi and labels[run_end] == label_id:
                run_end += 1
            if run_end - position >= 2:
                append((ext, label_id, position, run_end))
            position = run_end
    return groups


class ColumnarBuilder:
    """Builds a :class:`ColumnarGraph` directly (the loaders' path).

    Mirrors :class:`PropertyGraph`'s construction contract -- unique ids,
    endpoints must exist before an edge referencing them, string labels,
    legal property values -- with identical error messages, then lays the
    data out in columns in one :meth:`build` step.
    """

    def __init__(self) -> None:
        self._labels = StringPool()
        self._keys = StringPool()
        self._node_ids: list[ElementId] = []
        self._node_index: dict[ElementId, int] = {}
        self._node_label_ids: list[int] = []
        self._edge_ids: list[ElementId] = []
        self._edge_index: dict[ElementId, int] = {}
        self._edge_label_ids: list[int] = []
        self._edge_src: list[int] = []
        self._edge_tgt: list[int] = []
        #: key id -> list of (element position, value)
        self._node_props: dict[int, list[tuple[int, PropertyValue]]] = {}
        self._edge_props: dict[int, list[tuple[int, PropertyValue]]] = {}

    def add_node(
        self,
        node_id: ElementId,
        label: str,
        properties: Mapping[str, object] | None = None,
        *,
        _normalized: bool = False,
    ) -> ElementId:
        """Add a node (same contract and errors as PropertyGraph.add_node)."""
        if node_id in self._node_index or node_id in self._edge_index:
            raise GraphError(f"element id already in use: {node_id!r}")
        if not isinstance(label, str):
            raise GraphError(f"labels must be strings, got {label!r}")
        ext = len(self._node_ids)
        self._node_ids.append(node_id)
        self._node_index[node_id] = ext
        self._node_label_ids.append(self._labels.intern(label))
        if properties:
            self._add_props(self._node_props, ext, properties, _normalized)
        return node_id

    def add_edge(
        self,
        edge_id: ElementId,
        source: ElementId,
        target: ElementId,
        label: str,
        properties: Mapping[str, object] | None = None,
        *,
        _normalized: bool = False,
    ) -> ElementId:
        """Add an edge (same contract and errors as PropertyGraph.add_edge)."""
        if edge_id in self._node_index or edge_id in self._edge_index:
            raise GraphError(f"element id already in use: {edge_id!r}")
        src_ext = self._node_index.get(source)
        if src_ext is None:
            raise GraphError(f"edge source is not a node: {source!r}")
        tgt_ext = self._node_index.get(target)
        if tgt_ext is None:
            raise GraphError(f"edge target is not a node: {target!r}")
        if not isinstance(label, str):
            raise GraphError(f"labels must be strings, got {label!r}")
        ext = len(self._edge_ids)
        self._edge_ids.append(edge_id)
        self._edge_index[edge_id] = ext
        self._edge_label_ids.append(self._labels.intern(label))
        self._edge_src.append(src_ext)
        self._edge_tgt.append(tgt_ext)
        if properties:
            self._add_props(self._edge_props, ext, properties, _normalized)
        return edge_id

    def _add_props(
        self,
        store: dict[int, list[tuple[int, PropertyValue]]],
        ext: int,
        properties: Mapping[str, object],
        normalized: bool,
    ) -> None:
        intern = self._keys.intern
        for name, value in properties.items():
            if not isinstance(name, str):
                raise GraphError(f"property names must be strings, got {name!r}")
            if not normalized:
                value = normalize_value(value)
            store.setdefault(intern(name), []).append((ext, value))  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self._node_ids) + len(self._edge_ids)

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #

    def build(self) -> ColumnarGraph:
        """Lay the collected elements out as a :class:`ColumnarGraph`."""
        span = obs.span(
            "pg.freeze", nodes=len(self._node_ids), edges=len(self._edge_ids)
        )
        with span:
            graph = self._build()
            obs.gauge("pg.pool.labels", len(graph.labels))
            obs.gauge("pg.pool.keys", len(graph.keys))
        return graph

    def _build(self) -> ColumnarGraph:
        graph = ColumnarGraph()
        graph.labels = self._labels
        graph.keys = self._keys
        num_nodes = len(self._node_ids)
        num_edges = len(self._edge_ids)
        graph._node_ids = self._node_ids
        graph._node_index = self._node_index
        node_labels = self._node_label_ids
        graph._node_label_ids = array("i", node_labels)
        node_order = _stable_order(node_labels)
        graph._node_ext_of = array("i", node_order)
        graph._node_row_of = _inverse(node_order, num_nodes)
        graph._node_runs = _runs1(node_labels, node_order)
        graph._edge_ids = self._edge_ids
        graph._edge_index = self._edge_index
        edge_labels = self._edge_label_ids
        graph._edge_label_ids = array("i", edge_labels)
        graph._edge_src = array("i", self._edge_src)
        graph._edge_tgt = array("i", self._edge_tgt)
        src_labels = [node_labels[src] for src in self._edge_src]
        edge_order = _stable_order2(src_labels, edge_labels)
        graph._edge_ext_of = array("i", edge_order)
        graph._edge_row_of = _inverse(edge_order, num_edges)
        graph._edge_runs = _runs2(src_labels, edge_labels, edge_order)
        graph._out_starts, graph._out_labels, graph._out_edges = _build_csr(
            self._edge_src, edge_labels, num_nodes
        )
        graph._in_starts, graph._in_labels, graph._in_edges = _build_csr(
            self._edge_tgt, edge_labels, num_nodes
        )
        row_of = graph._node_row_of
        graph._node_columns = {
            key_id: PropertyColumn.build(
                [(row_of[ext], value) for ext, value in pairs], num_nodes
            )
            for key_id, pairs in self._node_props.items()
        }
        edge_row_of = graph._edge_row_of
        graph._edge_columns = {
            key_id: PropertyColumn.build(
                [(edge_row_of[ext], value) for ext, value in pairs], num_edges
            )
            for key_id, pairs in self._edge_props.items()
        }
        return graph


# --------------------------------------------------------------------------- #
# layout helpers (numpy-accelerated when importable, never required)
# --------------------------------------------------------------------------- #


def _stable_order(keys: list[int]) -> list[int]:
    """Positions sorted by key, ties in position order."""
    if _np is not None and len(keys) > 1024:
        order = _np.argsort(_np.asarray(keys, dtype=_np.int64), kind="stable")
        return order.tolist()  # type: ignore[no-any-return]
    return sorted(range(len(keys)), key=keys.__getitem__)


def _stable_order2(primary: list[int], secondary: list[int]) -> list[int]:
    """Positions sorted by (primary, secondary), ties in position order."""
    if _np is not None and len(primary) > 1024:
        order = _np.lexsort(
            (
                _np.asarray(secondary, dtype=_np.int64),
                _np.asarray(primary, dtype=_np.int64),
            )
        )
        return order.tolist()  # type: ignore[no-any-return]
    return sorted(
        range(len(primary)), key=lambda index: (primary[index], secondary[index])
    )


def _inverse(order: list[int], size: int) -> "array[int]":
    inverse = array("i", bytes(4 * size))
    for row, ext in enumerate(order):
        inverse[ext] = row
    return inverse


def _runs1(keys: list[int], order: list[int]) -> list[tuple[int, int, int]]:
    runs: list[tuple[int, int, int]] = []
    size = len(order)
    row = 0
    while row < size:
        key = keys[order[row]]
        start = row
        row += 1
        while row < size and keys[order[row]] == key:
            row += 1
        runs.append((key, start, row))
    return runs


def _runs2(
    primary: list[int], secondary: list[int], order: list[int]
) -> list[tuple[int, int, int, int]]:
    runs: list[tuple[int, int, int, int]] = []
    size = len(order)
    row = 0
    while row < size:
        ext = order[row]
        key = (primary[ext], secondary[ext])
        start = row
        row += 1
        while row < size:
            ext = order[row]
            if (primary[ext], secondary[ext]) != key:
                break
            row += 1
        runs.append((key[0], key[1], start, row))
    return runs


def _build_csr(
    anchors: list[int], edge_labels: list[int], num_nodes: int
) -> tuple["array[int]", "array[int]", "array[int]"]:
    """CSR over *anchors* (per-edge node positions): offsets plus edge
    positions sorted by (anchor, label id, position), with the label ids
    laid out alongside for bisecting inside one node's slice."""
    counts = [0] * (num_nodes + 1)
    for anchor in anchors:
        counts[anchor + 1] += 1
    for position in range(1, num_nodes + 1):
        counts[position] += counts[position - 1]
    order = _stable_order2(anchors, edge_labels)
    labels = array("i", bytes(4 * len(order)))
    payload = array("i", bytes(4 * len(order)))
    for slot, ext in enumerate(order):
        labels[slot] = edge_labels[ext]
        payload[slot] = ext
    return array("i", counts), labels, payload


# --------------------------------------------------------------------------- #
# freezing
# --------------------------------------------------------------------------- #


def freeze(graph: "PropertyGraph | ColumnarGraph") -> ColumnarGraph:
    """The columnar form of *graph* (a no-op for already-frozen graphs)."""
    if isinstance(graph, ColumnarGraph):
        return graph
    builder = ColumnarBuilder()
    property_map = graph.property_map
    for node, label in graph.node_items():
        props = property_map(node)
        builder.add_node(node, label, props if props else None, _normalized=True)
    for edge, source, target, label, _sl, _tl in graph.edge_records():
        props = property_map(edge)
        builder.add_edge(
            edge, source, target, label, props if props else None, _normalized=True
        )
    return builder.build()
