"""Property Graph substrate (Definition 2.1 of the paper)."""

from .build import GraphBuilder
from .columnar import ColumnarBuilder, ColumnarGraph, StringPool, freeze
from .generate import chain_graph, random_graph, star_graph
from .io import (
    dump_graph,
    dump_graph_jsonl,
    dumps_graph,
    graph_from_dict,
    graph_to_dict,
    iter_graph_jsonl,
    load_graph,
    load_graph_jsonl,
    loads_graph,
)
from .model import ElementId, PropertyGraph
from .stats import GraphProfile, profile_graph
from .values import (
    PropertyValue,
    is_array_value,
    is_atomic_value,
    is_property_value,
    normalize_value,
    value_signature,
    values_equal,
)

__all__ = [
    "ColumnarBuilder",
    "ColumnarGraph",
    "ElementId",
    "GraphBuilder",
    "GraphProfile",
    "PropertyGraph",
    "PropertyValue",
    "StringPool",
    "chain_graph",
    "dump_graph",
    "dump_graph_jsonl",
    "dumps_graph",
    "freeze",
    "graph_from_dict",
    "graph_to_dict",
    "is_array_value",
    "is_atomic_value",
    "is_property_value",
    "iter_graph_jsonl",
    "load_graph",
    "load_graph_jsonl",
    "loads_graph",
    "normalize_value",
    "profile_graph",
    "random_graph",
    "star_graph",
    "value_signature",
    "values_equal",
]
