"""The Property Graph data model (Definition 2.1 of the paper).

A Property Graph is a tuple ``(V, E, ρ, λ, σ)`` where ``V`` and ``E`` are
disjoint finite sets of node and edge identifiers, ``ρ : E → V × V`` maps
every edge to its (source, target) pair, ``λ : V ∪ E → Labels`` assigns a
label to every node and edge, and ``σ : (V ∪ E) × Props ⇀ Values`` is a
partial function assigning property values.

:class:`PropertyGraph` realises this definition directly.  Identifiers may be
any hashable Python values (strings and integers in practice).  The class
additionally maintains incidence indexes (outgoing/incoming edges per node,
grouped by edge label) because both the indexed validator and the GraphQL
query executor need them; the indexes are pure acceleration structures and
carry no semantics of their own.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping

from ..errors import GraphError
from .values import PropertyValue, normalize_value

if TYPE_CHECKING:  # pragma: no cover
    from .columnar import ColumnarGraph

ElementId = Hashable

#: Shared empty mapping returned by :meth:`PropertyGraph.property_map` for
#: elements without properties.  A read-only proxy, not a plain dict: it is
#: shared across every element of every graph, so a caller mutating it
#: would silently give *all* property-less elements phantom properties.
_EMPTY_PROPERTIES: Mapping[str, PropertyValue] = MappingProxyType({})


class PropertyGraph:
    """A mutable Property Graph per Definition 2.1.

    Example:
        >>> g = PropertyGraph()
        >>> g.add_node("u1", "User", {"login": "alice"})
        'u1'
        >>> g.add_node("s1", "UserSession", {"startTime": "12:00"})
        's1'
        >>> g.add_edge("e1", "s1", "u1", "user", {"certainty": 0.9})
        'e1'
        >>> g.label("e1")
        'user'
    """

    __slots__ = (
        "_node_labels",
        "_edge_labels",
        "_endpoints",
        "_properties",
        "_out",
        "_in",
    )

    def __init__(self) -> None:
        self._node_labels: dict[ElementId, str] = {}
        self._edge_labels: dict[ElementId, str] = {}
        self._endpoints: dict[ElementId, tuple[ElementId, ElementId]] = {}
        self._properties: dict[ElementId, dict[str, PropertyValue]] = {}
        # incidence indexes: node -> edge label -> list of edge ids
        self._out: dict[ElementId, dict[str, list[ElementId]]] = {}
        self._in: dict[ElementId, dict[str, list[ElementId]]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_node(
        self,
        node_id: ElementId,
        label: str,
        properties: Mapping[str, object] | None = None,
    ) -> ElementId:
        """Add a node with the given *label* and optional *properties*.

        Returns the node id so construction chains read naturally.
        Raises :class:`GraphError` if the id is already used by a node or an
        edge (V and E must be disjoint and ids unique).
        """
        if node_id in self._node_labels or node_id in self._edge_labels:
            raise GraphError(f"element id already in use: {node_id!r}")
        if not isinstance(label, str):
            raise GraphError(f"labels must be strings, got {label!r}")
        self._node_labels[node_id] = label
        if properties:
            self._properties[node_id] = {
                name: normalize_value(value) for name, value in properties.items()
            }
        return node_id

    def add_edge(
        self,
        edge_id: ElementId,
        source: ElementId,
        target: ElementId,
        label: str,
        properties: Mapping[str, object] | None = None,
    ) -> ElementId:
        """Add an edge from *source* to *target* with the given *label*.

        Both endpoints must already exist as nodes (ρ is total into V × V).
        """
        if edge_id in self._node_labels or edge_id in self._edge_labels:
            raise GraphError(f"element id already in use: {edge_id!r}")
        if source not in self._node_labels:
            raise GraphError(f"edge source is not a node: {source!r}")
        if target not in self._node_labels:
            raise GraphError(f"edge target is not a node: {target!r}")
        if not isinstance(label, str):
            raise GraphError(f"labels must be strings, got {label!r}")
        self._edge_labels[edge_id] = label
        self._endpoints[edge_id] = (source, target)
        self._out.setdefault(source, {}).setdefault(label, []).append(edge_id)
        self._in.setdefault(target, {}).setdefault(label, []).append(edge_id)
        if properties:
            self._properties[edge_id] = {
                name: normalize_value(value) for name, value in properties.items()
            }
        return edge_id

    def set_property(self, element_id: ElementId, name: str, value: object) -> None:
        """Set σ(element, name) = value (normalising the value representation)."""
        self._require_element(element_id)
        self._properties.setdefault(element_id, {})[name] = normalize_value(value)

    def remove_property(self, element_id: ElementId, name: str) -> None:
        """Remove (element, name) from the domain of σ; no-op if absent."""
        props = self._properties.get(element_id)
        if props is not None:
            props.pop(name, None)
            if not props:
                del self._properties[element_id]

    def remove_edge(self, edge_id: ElementId) -> None:
        """Remove an edge and its properties."""
        if edge_id not in self._edge_labels:
            raise GraphError(f"no such edge: {edge_id!r}")
        source, target = self._endpoints.pop(edge_id)
        label = self._edge_labels.pop(edge_id)
        self._out[source][label].remove(edge_id)
        self._in[target][label].remove(edge_id)
        self._properties.pop(edge_id, None)

    def remove_node(self, node_id: ElementId) -> None:
        """Remove a node, its properties, and every incident edge."""
        if node_id not in self._node_labels:
            raise GraphError(f"no such node: {node_id!r}")
        incident = [
            edge
            for edges_by_label in (self._out.get(node_id, {}), self._in.get(node_id, {}))
            for edges in edges_by_label.values()
            for edge in edges
        ]
        for edge in set(incident):
            self.remove_edge(edge)
        del self._node_labels[node_id]
        self._properties.pop(node_id, None)
        self._out.pop(node_id, None)
        self._in.pop(node_id, None)

    # ------------------------------------------------------------------ #
    # the five components of Definition 2.1
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Iterator[ElementId]:
        """Iterate over V."""
        return iter(self._node_labels)

    @property
    def edges(self) -> Iterator[ElementId]:
        """Iterate over E."""
        return iter(self._edge_labels)

    def endpoints(self, edge_id: ElementId) -> tuple[ElementId, ElementId]:
        """ρ(e): the (source, target) pair of an edge."""
        try:
            return self._endpoints[edge_id]
        except KeyError:
            raise GraphError(f"no such edge: {edge_id!r}") from None

    def label(self, element_id: ElementId) -> str:
        """λ(x): the label of a node or edge."""
        label = self._node_labels.get(element_id)
        if label is None:
            label = self._edge_labels.get(element_id)
        if label is None:
            raise GraphError(f"no such element: {element_id!r}")
        return label

    def properties(self, element_id: ElementId) -> Mapping[str, PropertyValue]:
        """All properties of an element as a read-only mapping (may be empty)."""
        self._require_element(element_id)
        return dict(self._properties.get(element_id, {}))

    def property_value(self, element_id: ElementId, name: str) -> PropertyValue | None:
        """σ(element, name), or None when (element, name) ∉ dom(σ)."""
        return self._properties.get(element_id, {}).get(name)

    def has_property(self, element_id: ElementId, name: str) -> bool:
        """True when (element, name) ∈ dom(σ)."""
        return name in self._properties.get(element_id, {})

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #

    def is_node(self, element_id: ElementId) -> bool:
        return element_id in self._node_labels

    def is_edge(self, element_id: ElementId) -> bool:
        return element_id in self._edge_labels

    @property
    def num_nodes(self) -> int:
        return len(self._node_labels)

    @property
    def num_edges(self) -> int:
        return len(self._edge_labels)

    def out_edges(self, node_id: ElementId, label: str | None = None) -> list[ElementId]:
        """Edges whose source is *node_id*, optionally restricted to one label."""
        by_label = self._out.get(node_id, {})
        if label is not None:
            return list(by_label.get(label, ()))
        return [edge for edges in by_label.values() for edge in edges]

    def in_edges(self, node_id: ElementId, label: str | None = None) -> list[ElementId]:
        """Edges whose target is *node_id*, optionally restricted to one label."""
        by_label = self._in.get(node_id, {})
        if label is not None:
            return list(by_label.get(label, ()))
        return [edge for edges in by_label.values() for edge in edges]

    def out_degree(self, node_id: ElementId, label: str) -> int:
        """Number of outgoing edges with the given label (no list copy)."""
        edges = self._out.get(node_id)
        if not edges:
            return 0
        return len(edges.get(label, ()))

    def iter_in_edges(
        self, node_id: ElementId, label: str
    ) -> tuple[ElementId, ...] | list[ElementId]:
        """Incoming edges with the given label, without copying the index
        bucket.  The result must be treated as read-only; use
        :meth:`in_edges` for a mutable list."""
        edges = self._in.get(node_id)
        if not edges:
            return ()
        return edges.get(label, ())

    def property_map(self, element_id: ElementId) -> Mapping[str, PropertyValue]:
        """The element's property dict *without* copying (hot-path accessor
        for the validators).  The result must be treated as read-only; use
        :meth:`properties` for a detached copy.  Unlike :meth:`properties`
        this does not verify the element exists -- absent elements simply
        yield an empty mapping."""
        return self._properties.get(element_id, _EMPTY_PROPERTIES)

    def nodes_with_label(self, label: str) -> list[ElementId]:
        """All nodes v with λ(v) = label (linear scan; validators keep their own index)."""
        return [node for node, node_label in self._node_labels.items() if node_label == label]

    def property_items(self) -> Iterator[tuple[ElementId, str, PropertyValue]]:
        """Iterate over dom(σ) as (element, property name, value) triples."""
        for element, props in self._properties.items():
            for name, value in props.items():
                yield element, name, value

    def node_items(self) -> Iterable[tuple[ElementId, str]]:
        """All (node, λ(node)) pairs as a read-only bulk view (one dict
        iteration instead of a :meth:`label` call per node)."""
        return self._node_labels.items()

    def edge_records(
        self,
    ) -> list[tuple[ElementId, ElementId, ElementId, str, str, str]]:
        """All (edge, source, target, λ(edge), λ(source), λ(target)) tuples
        in one bulk pass (the validators' substitute for per-edge
        :meth:`endpoints`/:meth:`label` calls)."""
        endpoints = self._endpoints
        node_labels = self._node_labels
        records = []
        append = records.append
        for edge, label in self._edge_labels.items():
            source, target = endpoints[edge]
            append((edge, source, target, label, node_labels[source], node_labels[target]))
        return records

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def copy(self) -> "PropertyGraph":
        """A deep-enough copy (values are immutable, so sharing them is safe)."""
        clone = PropertyGraph()
        clone._node_labels = dict(self._node_labels)
        clone._edge_labels = dict(self._edge_labels)
        clone._endpoints = dict(self._endpoints)
        clone._properties = {elem: dict(props) for elem, props in self._properties.items()}
        clone._out = {
            node: {label: list(edges) for label, edges in by_label.items()}
            for node, by_label in self._out.items()
        }
        clone._in = {
            node: {label: list(edges) for label, edges in by_label.items()}
            for node, by_label in self._in.items()
        }
        return clone

    def freeze(self) -> "ColumnarGraph":
        """An immutable, columnar copy of this graph (see
        :mod:`repro.pg.columnar`); the validators run unchanged on it."""
        from .columnar import freeze

        return freeze(self)

    def __contains__(self, element_id: object) -> bool:
        return element_id in self._node_labels or element_id in self._edge_labels

    def __len__(self) -> int:
        """Size of the graph: |V| + |E| (the n of the complexity analysis)."""
        return self.num_nodes + self.num_edges

    def __repr__(self) -> str:
        return f"PropertyGraph(nodes={self.num_nodes}, edges={self.num_edges})"

    def _require_element(self, element_id: ElementId) -> None:
        if element_id not in self._node_labels and element_id not in self._edge_labels:
            raise GraphError(f"no such element: {element_id!r}")
