"""Property values for Property Graphs.

The paper (Section 2.1) assumes an infinite set ``Values`` of property values
and, for the GraphQL side, a set ``Vals`` of scalar values with
``Vals ⊆ Values``.  Property values in a Property Graph are either atomic
(booleans, integers, floats, strings) or arrays of atomic values [7].

This module fixes the concrete Python representation used throughout the
library:

* atomic values are ``bool``, ``int``, ``float`` or ``str``;
* array values are ``tuple`` objects whose items are atomic values
  (input ``list`` objects are normalised to tuples so that values stay
  hashable -- hashability is what makes the key-constraint check DS7 a
  linear-time grouping operation);
* ``None`` is *not* a value: the paper's special ``null`` is "not in Vals",
  and a Property Graph's ``σ`` is a partial function, so absence of a
  property models null.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import GraphError

#: Python types accepted as atomic property values.
ATOMIC_TYPES = (bool, int, float, str)

PropertyValue = bool | int | float | str | tuple


def is_atomic_value(value: object) -> bool:
    """Return True if *value* is an atomic property value."""
    return isinstance(value, ATOMIC_TYPES)


def is_array_value(value: object) -> bool:
    """Return True if *value* is an array of atomic property values."""
    return isinstance(value, tuple) and all(is_atomic_value(item) for item in value)


def is_property_value(value: object) -> bool:
    """Return True if *value* is a legal property value (atomic or array)."""
    return is_atomic_value(value) or is_array_value(value)


def normalize_value(value: object) -> PropertyValue:
    """Normalise *value* into the canonical representation.

    Lists and other non-string iterables of atomic values become tuples.
    Raises :class:`GraphError` for anything that is not a legal property
    value (e.g. ``None``, dicts, nested lists).
    """
    if is_atomic_value(value):
        return value  # type: ignore[return-value]
    if isinstance(value, (list, tuple)):
        items = tuple(value)
        if not all(is_atomic_value(item) for item in items):
            raise GraphError(
                f"array property values must contain only atomic values, got {value!r}"
            )
        return items
    raise GraphError(f"not a legal property value: {value!r}")


def value_signature(value: PropertyValue) -> tuple[object, ...]:
    """A hashable, type-strict signature of a property value.

    Two values have the same signature iff they are the same value in the
    type-strict sense this library uses throughout: Python's ``==`` would
    equate ``True``/``1``/``1.0``, but GraphQL's Boolean, Int and Float are
    disjoint scalar domains with distinct lexical forms, so signatures tag
    every atom with its runtime type.  Signatures are what the key check
    (DS7) groups by and what the first-order encoding of Theorem 1 uses as
    the ``value`` sort.
    """
    if isinstance(value, tuple):
        return ("array",) + tuple(value_signature(item) for item in value)
    return (type(value).__name__, value)


def values_equal(left: PropertyValue, right: PropertyValue) -> bool:
    """Type-strict equality of property values (see :func:`value_signature`)."""
    return value_signature(left) == value_signature(right)


def check_values(values: Iterable[object]) -> None:
    """Validate an iterable of candidate property values, raising on the first bad one."""
    for value in values:
        if not is_property_value(value):
            raise GraphError(f"not a legal property value: {value!r}")
