"""Profiling of Property Graph instances.

:func:`profile_graph` computes the per-label statistics a schema designer
(or the schema-inference module) wants to see before writing a schema:
node/edge label histograms, per-label property coverage (how many nodes
carry each property, how many distinct values, inferred scalar kinds),
degree distributions per (source label, edge label), and endpoint-type
distributions per edge label.  `pgschema stats GRAPH.json` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .values import value_signature

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import MetricsRegistry
    from .columnar import ColumnarGraph, PropertyColumn
    from .model import PropertyGraph


@dataclass
class PropertyProfile:
    """Statistics of one property name under one node/edge label."""

    name: str
    count: int = 0
    distinct: int = 0
    kinds: set[str] = field(default_factory=set)

    def coverage(self, total: int) -> float:
        return self.count / total if total else 0.0


@dataclass
class LabelProfile:
    """Statistics of one node label."""

    label: str
    count: int = 0
    properties: dict[str, PropertyProfile] = field(default_factory=dict)


@dataclass
class EdgeLabelProfile:
    """Statistics of one edge label."""

    label: str
    count: int = 0
    endpoint_pairs: dict[tuple[str, str], int] = field(default_factory=dict)
    properties: dict[str, PropertyProfile] = field(default_factory=dict)
    max_out_degree: int = 0
    max_in_degree: int = 0
    loops: int = 0


@dataclass
class GraphProfile:
    """The complete profile of one Property Graph."""

    num_nodes: int = 0
    num_edges: int = 0
    node_labels: dict[str, LabelProfile] = field(default_factory=dict)
    edge_labels: dict[str, EdgeLabelProfile] = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        """A human-readable report, one line per fact."""
        lines = [f"nodes: {self.num_nodes}, edges: {self.num_edges}"]
        for label, profile in sorted(self.node_labels.items()):
            lines.append(f"node label {label}: {profile.count} node(s)")
            for name, prop in sorted(profile.properties.items()):
                kinds = "/".join(sorted(prop.kinds))
                lines.append(
                    f"  .{name}: on {prop.count}/{profile.count} "
                    f"({prop.coverage(profile.count):.0%}), {prop.distinct} distinct, "
                    f"kind {kinds}"
                )
        for label, profile in sorted(self.edge_labels.items()):
            lines.append(
                f"edge label {label}: {profile.count} edge(s), "
                f"max out-degree {profile.max_out_degree}, "
                f"max in-degree {profile.max_in_degree}, loops {profile.loops}"
            )
            for (source, target), count in sorted(profile.endpoint_pairs.items()):
                lines.append(f"  ({source}) -[{label}]-> ({target}): {count}")
            for name, prop in sorted(profile.properties.items()):
                kinds = "/".join(sorted(prop.kinds))
                lines.append(
                    f"  .{name}: on {prop.count}/{profile.count}, kind {kinds}"
                )
        return lines


def profile_to_registry(profile: GraphProfile) -> "MetricsRegistry":
    """Render a profile as a metrics registry (one JSON vocabulary).

    ``pgschema stats --json`` exports the result through
    :func:`repro.obs.export.metrics_payload`, so instance profiles share
    the exact artifact shape of ``--metrics`` run snapshots.
    """
    from ..obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.count("pg.nodes", profile.num_nodes)
    registry.count("pg.edges", profile.num_edges)
    for label, node_profile in profile.node_labels.items():
        registry.count(f"pg.nodes.{label}", node_profile.count)
        registry.observe("pg.label_size.node", node_profile.count)
        for name, prop in node_profile.properties.items():
            registry.count(f"pg.props.node.{label}.{name}", prop.count)
            registry.gauge(f"pg.props_distinct.node.{label}.{name}", prop.distinct)
    for label, edge_profile in profile.edge_labels.items():
        registry.count(f"pg.edges.{label}", edge_profile.count)
        registry.observe("pg.label_size.edge", edge_profile.count)
        registry.count(f"pg.loops.{label}", edge_profile.loops)
        registry.gauge(f"pg.max_out_degree.{label}", edge_profile.max_out_degree)
        registry.gauge(f"pg.max_in_degree.{label}", edge_profile.max_in_degree)
        for name, prop in edge_profile.properties.items():
            registry.count(f"pg.props.edge.{label}.{name}", prop.count)
            registry.gauge(f"pg.props_distinct.edge.{label}.{name}", prop.distinct)
    return registry


def _value_kind(value: object) -> str:
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Int"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, tuple):
        inner = sorted({_value_kind(item) for item in value}) or ["empty"]
        return f"[{'/'.join(inner)}]"
    return "String"


def profile_graph(graph: "PropertyGraph | ColumnarGraph") -> GraphProfile:
    """Compute the full profile of *graph* in two passes.

    Columnar graphs take the dedicated sweep (:func:`_profile_columnar`):
    label histograms fall out of the run table, property coverage out of
    bitmap popcounts, and degree histograms out of CSR run lengths -- no
    per-element dict probes.  Both paths produce equal profiles (the stats
    tests assert it).
    """
    if getattr(graph, "is_columnar", False):
        return _profile_columnar(graph)  # type: ignore[arg-type]
    profile = GraphProfile(num_nodes=graph.num_nodes, num_edges=graph.num_edges)
    distinct_values: dict[tuple[str, str, bool], set[object]] = {}

    for node in graph.nodes:
        label = graph.label(node)
        label_profile = profile.node_labels.setdefault(label, LabelProfile(label))
        label_profile.count += 1
        for name, value in graph.properties(node).items():
            prop = label_profile.properties.setdefault(name, PropertyProfile(name))
            prop.count += 1
            prop.kinds.add(_value_kind(value))
            distinct_values.setdefault((label, name, True), set()).add(
                value_signature(value)
            )

    out_degree: dict[tuple, int] = {}
    in_degree: dict[tuple, int] = {}
    for edge in graph.edges:
        label = graph.label(edge)
        source, target = graph.endpoints(edge)
        edge_profile = profile.edge_labels.setdefault(label, EdgeLabelProfile(label))
        edge_profile.count += 1
        pair = (graph.label(source), graph.label(target))
        edge_profile.endpoint_pairs[pair] = edge_profile.endpoint_pairs.get(pair, 0) + 1
        if source == target:
            edge_profile.loops += 1
        out_key, in_key = (source, label), (target, label)
        out_degree[out_key] = out_degree.get(out_key, 0) + 1
        in_degree[in_key] = in_degree.get(in_key, 0) + 1
        edge_profile.max_out_degree = max(
            edge_profile.max_out_degree, out_degree[out_key]
        )
        edge_profile.max_in_degree = max(edge_profile.max_in_degree, in_degree[in_key])
        for name, value in graph.properties(edge).items():
            prop = edge_profile.properties.setdefault(name, PropertyProfile(name))
            prop.count += 1
            prop.kinds.add(_value_kind(value))
            distinct_values.setdefault((label, name, False), set()).add(
                value_signature(value)
            )

    for (label, name, is_node), values in distinct_values.items():
        holder = profile.node_labels if is_node else profile.edge_labels
        holder[label].properties[name].distinct = len(values)
    return profile


#: Column kind tags -> the profile kind names of :func:`_value_kind`.
_KIND_NAMES = {"bool": "Boolean", "int": "Int", "float": "Float", "str": "String"}


def _profile_columnar(graph: "ColumnarGraph") -> GraphProfile:
    """The columnar profile sweep: one pass over the node runs and their
    columns, one over the edge runs, one over each CSR index."""
    profile = GraphProfile(num_nodes=graph.num_nodes, num_edges=graph.num_edges)
    labels = graph.labels
    keys = graph.keys
    distinct_values: dict[tuple[str, str, bool], set[object]] = {}

    def scan_column(
        column: "PropertyColumn",
        key_id: int,
        lo: int,
        hi: int,
        props: dict[str, PropertyProfile],
        label: str,
        is_node: bool,
    ) -> None:
        count = column.count_range(lo, hi)
        if not count:
            return
        name = keys[key_id]
        prop = props.setdefault(name, PropertyProfile(name))
        prop.count += count
        kind_name = _KIND_NAMES.get(column.kind)
        signatures = distinct_values.setdefault((label, name, is_node), set())
        if kind_name is not None:
            prop.kinds.add(kind_name)
            tag = column.kind
            for row in column.iter_present(lo, hi):
                signatures.add((tag, column.get(row)))
        else:
            for row in column.iter_present(lo, hi):
                value = column.get(row)
                prop.kinds.add(_value_kind(value))
                signatures.add(value_signature(value))

    for label_id, lo, hi in graph.node_runs:
        label = labels[label_id]
        label_profile = profile.node_labels.setdefault(label, LabelProfile(label))
        label_profile.count += hi - lo
        for key_id, column in graph.node_columns.items():
            scan_column(column, key_id, lo, hi, label_profile.properties, label, True)

    edge_ext_of = graph.edge_ext_of
    edge_src = graph.edge_src
    edge_tgt = graph.edge_tgt
    node_label_ids = graph.node_label_ids
    for src_label_id, edge_label_id, lo, hi in graph.edge_runs:
        label = labels[edge_label_id]
        source_label = labels[src_label_id]
        edge_profile = profile.edge_labels.setdefault(label, EdgeLabelProfile(label))
        edge_profile.count += hi - lo
        pairs = edge_profile.endpoint_pairs
        for row in range(lo, hi):
            ext = edge_ext_of[row]
            pair = (source_label, labels[node_label_ids[edge_tgt[ext]]])
            pairs[pair] = pairs.get(pair, 0) + 1
            if edge_src[ext] == edge_tgt[ext]:
                edge_profile.loops += 1
        for key_id, column in graph.edge_columns.items():
            scan_column(column, key_id, lo, hi, edge_profile.properties, label, False)

    # Degree histograms straight off the CSR indexes: slots are sorted by
    # label id, so a (node, label) degree is one run length.
    for attribute, (starts, slot_labels) in (
        ("max_out_degree", graph.out_csr()),
        ("max_in_degree", graph.in_csr()),
    ):
        for ext in range(graph.num_nodes):
            slot, end = starts[ext], starts[ext + 1]
            while slot < end:
                label_id = slot_labels[slot]
                run_end = slot + 1
                while run_end < end and slot_labels[run_end] == label_id:
                    run_end += 1
                edge_profile = profile.edge_labels[labels[label_id]]
                if run_end - slot > getattr(edge_profile, attribute):
                    setattr(edge_profile, attribute, run_end - slot)
                slot = run_end

    for (label, name, is_node), values in distinct_values.items():
        holder = profile.node_labels if is_node else profile.edge_labels
        holder[label].properties[name].distinct = len(values)
    return profile
