"""Profiling of Property Graph instances.

:func:`profile_graph` computes the per-label statistics a schema designer
(or the schema-inference module) wants to see before writing a schema:
node/edge label histograms, per-label property coverage (how many nodes
carry each property, how many distinct values, inferred scalar kinds),
degree distributions per (source label, edge label), and endpoint-type
distributions per edge label.  `pgschema stats GRAPH.json` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .values import value_signature

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import MetricsRegistry
    from .model import PropertyGraph


@dataclass
class PropertyProfile:
    """Statistics of one property name under one node/edge label."""

    name: str
    count: int = 0
    distinct: int = 0
    kinds: set[str] = field(default_factory=set)

    def coverage(self, total: int) -> float:
        return self.count / total if total else 0.0


@dataclass
class LabelProfile:
    """Statistics of one node label."""

    label: str
    count: int = 0
    properties: dict[str, PropertyProfile] = field(default_factory=dict)


@dataclass
class EdgeLabelProfile:
    """Statistics of one edge label."""

    label: str
    count: int = 0
    endpoint_pairs: dict[tuple[str, str], int] = field(default_factory=dict)
    properties: dict[str, PropertyProfile] = field(default_factory=dict)
    max_out_degree: int = 0
    max_in_degree: int = 0
    loops: int = 0


@dataclass
class GraphProfile:
    """The complete profile of one Property Graph."""

    num_nodes: int = 0
    num_edges: int = 0
    node_labels: dict[str, LabelProfile] = field(default_factory=dict)
    edge_labels: dict[str, EdgeLabelProfile] = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        """A human-readable report, one line per fact."""
        lines = [f"nodes: {self.num_nodes}, edges: {self.num_edges}"]
        for label, profile in sorted(self.node_labels.items()):
            lines.append(f"node label {label}: {profile.count} node(s)")
            for name, prop in sorted(profile.properties.items()):
                kinds = "/".join(sorted(prop.kinds))
                lines.append(
                    f"  .{name}: on {prop.count}/{profile.count} "
                    f"({prop.coverage(profile.count):.0%}), {prop.distinct} distinct, "
                    f"kind {kinds}"
                )
        for label, profile in sorted(self.edge_labels.items()):
            lines.append(
                f"edge label {label}: {profile.count} edge(s), "
                f"max out-degree {profile.max_out_degree}, "
                f"max in-degree {profile.max_in_degree}, loops {profile.loops}"
            )
            for (source, target), count in sorted(profile.endpoint_pairs.items()):
                lines.append(f"  ({source}) -[{label}]-> ({target}): {count}")
            for name, prop in sorted(profile.properties.items()):
                kinds = "/".join(sorted(prop.kinds))
                lines.append(
                    f"  .{name}: on {prop.count}/{profile.count}, kind {kinds}"
                )
        return lines


def profile_to_registry(profile: GraphProfile) -> "MetricsRegistry":
    """Render a profile as a metrics registry (one JSON vocabulary).

    ``pgschema stats --json`` exports the result through
    :func:`repro.obs.export.metrics_payload`, so instance profiles share
    the exact artifact shape of ``--metrics`` run snapshots.
    """
    from ..obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.count("pg.nodes", profile.num_nodes)
    registry.count("pg.edges", profile.num_edges)
    for label, node_profile in profile.node_labels.items():
        registry.count(f"pg.nodes.{label}", node_profile.count)
        registry.observe("pg.label_size.node", node_profile.count)
        for name, prop in node_profile.properties.items():
            registry.count(f"pg.props.node.{label}.{name}", prop.count)
            registry.gauge(f"pg.props_distinct.node.{label}.{name}", prop.distinct)
    for label, edge_profile in profile.edge_labels.items():
        registry.count(f"pg.edges.{label}", edge_profile.count)
        registry.observe("pg.label_size.edge", edge_profile.count)
        registry.count(f"pg.loops.{label}", edge_profile.loops)
        registry.gauge(f"pg.max_out_degree.{label}", edge_profile.max_out_degree)
        registry.gauge(f"pg.max_in_degree.{label}", edge_profile.max_in_degree)
        for name, prop in edge_profile.properties.items():
            registry.count(f"pg.props.edge.{label}.{name}", prop.count)
            registry.gauge(f"pg.props_distinct.edge.{label}.{name}", prop.distinct)
    return registry


def _value_kind(value: object) -> str:
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Int"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, tuple):
        inner = sorted({_value_kind(item) for item in value}) or ["empty"]
        return f"[{'/'.join(inner)}]"
    return "String"


def profile_graph(graph: "PropertyGraph") -> GraphProfile:
    """Compute the full profile of *graph* in two passes."""
    profile = GraphProfile(num_nodes=graph.num_nodes, num_edges=graph.num_edges)
    distinct_values: dict[tuple[str, str, bool], set] = {}

    for node in graph.nodes:
        label = graph.label(node)
        label_profile = profile.node_labels.setdefault(label, LabelProfile(label))
        label_profile.count += 1
        for name, value in graph.properties(node).items():
            prop = label_profile.properties.setdefault(name, PropertyProfile(name))
            prop.count += 1
            prop.kinds.add(_value_kind(value))
            distinct_values.setdefault((label, name, True), set()).add(
                value_signature(value)
            )

    out_degree: dict[tuple, int] = {}
    in_degree: dict[tuple, int] = {}
    for edge in graph.edges:
        label = graph.label(edge)
        source, target = graph.endpoints(edge)
        edge_profile = profile.edge_labels.setdefault(label, EdgeLabelProfile(label))
        edge_profile.count += 1
        pair = (graph.label(source), graph.label(target))
        edge_profile.endpoint_pairs[pair] = edge_profile.endpoint_pairs.get(pair, 0) + 1
        if source == target:
            edge_profile.loops += 1
        out_key, in_key = (source, label), (target, label)
        out_degree[out_key] = out_degree.get(out_key, 0) + 1
        in_degree[in_key] = in_degree.get(in_key, 0) + 1
        edge_profile.max_out_degree = max(
            edge_profile.max_out_degree, out_degree[out_key]
        )
        edge_profile.max_in_degree = max(edge_profile.max_in_degree, in_degree[in_key])
        for name, value in graph.properties(edge).items():
            prop = edge_profile.properties.setdefault(name, PropertyProfile(name))
            prop.count += 1
            prop.kinds.add(_value_kind(value))
            distinct_values.setdefault((label, name, False), set()).add(
                value_signature(value)
            )

    for (label, name, is_node), values in distinct_values.items():
        holder = profile.node_labels if is_node else profile.edge_labels
        holder[label].properties[name].distinct = len(values)
    return profile
