"""A fluent builder for Property Graphs.

:class:`GraphBuilder` removes the boilerplate of inventing edge identifiers
and lets graphs be written down in roughly the shape the paper's examples
use.  It never adds semantics beyond :class:`~repro.pg.model.PropertyGraph`.
"""

from __future__ import annotations

from typing import Mapping

from .model import ElementId, PropertyGraph


class GraphBuilder:
    """Build a :class:`PropertyGraph` with auto-generated edge ids.

    Example:
        >>> g = (
        ...     GraphBuilder()
        ...     .node("b1", "Book", title="Dune")
        ...     .node("a1", "Author")
        ...     .edge("b1", "author", "a1")
        ...     .graph()
        ... )
        >>> g.num_edges
        1
    """

    def __init__(self) -> None:
        self._graph = PropertyGraph()
        self._edge_counter = 0

    def node(self, node_id: ElementId, label: str, **properties: object) -> "GraphBuilder":
        """Add a node; properties are given as keyword arguments."""
        self._graph.add_node(node_id, label, properties or None)
        return self

    def nodes(self, label: str, *node_ids: ElementId) -> "GraphBuilder":
        """Add several property-less nodes sharing one label."""
        for node_id in node_ids:
            self._graph.add_node(node_id, label)
        return self

    def edge(
        self,
        source: ElementId,
        label: str,
        target: ElementId,
        properties: Mapping[str, object] | None = None,
        edge_id: ElementId | None = None,
    ) -> "GraphBuilder":
        """Add an edge; the edge id is generated unless given explicitly."""
        if edge_id is None:
            self._edge_counter += 1
            edge_id = f"_e{self._edge_counter}"
            while edge_id in self._graph:
                self._edge_counter += 1
                edge_id = f"_e{self._edge_counter}"
        self._graph.add_edge(edge_id, source, target, label, properties)
        return self

    def prop(self, element_id: ElementId, name: str, value: object) -> "GraphBuilder":
        """Set a property on an existing node or edge."""
        self._graph.set_property(element_id, name, value)
        return self

    def graph(self) -> PropertyGraph:
        """Return the built graph (the builder can keep extending it afterwards)."""
        return self._graph
