"""JSON serialisation of Property Graphs.

The on-disk format is a small, explicit JSON document::

    {
      "nodes": [{"id": "u1", "label": "User", "properties": {"login": "alice"}}],
      "edges": [{"id": "e1", "source": "s1", "target": "u1",
                 "label": "user", "properties": {"certainty": 0.9}}]
    }

Array-valued properties serialise as JSON arrays.  Because JSON has no
tuple/list distinction and no non-string keys, identifiers round-trip as
strings or numbers only; that covers every workload in this repository.

Loading is hardened: every way a document can be malformed -- truncated or
invalid JSON, a non-object top level, non-array ``nodes``/``edges``,
non-object elements, missing required keys, wrongly-typed ``properties``,
or absurdly deep nesting -- raises a typed
:class:`~repro.errors.GraphLoadError` carrying the source name and, for
JSON syntax errors, the line/column/offset of the problem.  Loaders never
leak ``KeyError``/``TypeError``/``RecursionError`` to callers; the fuzz
suite mutates real documents byte-by-byte to enforce this.
"""

from __future__ import annotations

import json
from typing import IO, Any

from .. import obs
from ..errors import GraphLoadError
from .model import PropertyGraph


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Encode *graph* as a JSON-serialisable dictionary."""

    def encode_props(element: Any) -> dict[str, Any]:
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in graph.properties(element).items()
        }

    return {
        "nodes": [
            {"id": node, "label": graph.label(node), "properties": encode_props(node)}
            for node in graph.nodes
        ],
        "edges": [
            {
                "id": edge,
                "source": graph.endpoints(edge)[0],
                "target": graph.endpoints(edge)[1],
                "label": graph.label(edge),
                "properties": encode_props(edge),
            }
            for edge in graph.edges
        ],
    }


def _element(
    record: Any,
    kind: str,
    index: int,
    required: tuple[str, ...],
    source: str | None,
) -> dict[str, Any]:
    """Check one node/edge record's shape; raise with element context."""
    where = f"{kind}[{index}]"
    if not isinstance(record, dict):
        raise GraphLoadError(
            f"{where} must be an object, got {type(record).__name__}",
            source=source,
        )
    for key in required:
        if key not in record:
            raise GraphLoadError(
                f"{where} is missing required key {key!r}", source=source
            )
    properties = record.get("properties")
    if properties is not None and not isinstance(properties, dict):
        raise GraphLoadError(
            f"{where}.properties must be an object, "
            f"got {type(properties).__name__}",
            source=source,
        )
    return record


def graph_from_dict(data: Any, source: str | None = None) -> PropertyGraph:
    """Decode a dictionary produced by :func:`graph_to_dict`.

    *source* names the document (a file path, ``"<stdin>"``, ...) in error
    messages.  Shape problems raise :class:`~repro.errors.GraphLoadError`;
    structural problems (duplicate ids, dangling endpoints) keep raising
    the narrower :class:`~repro.errors.GraphError` subtypes.
    """
    if not isinstance(data, dict):
        raise GraphLoadError(
            f"graph document must be a JSON object, got {type(data).__name__}",
            source=source,
        )
    nodes = data.get("nodes", [])
    edges = data.get("edges", [])
    if not isinstance(nodes, list):
        raise GraphLoadError(
            f'"nodes" must be an array, got {type(nodes).__name__}', source=source
        )
    if not isinstance(edges, list):
        raise GraphLoadError(
            f'"edges" must be an array, got {type(edges).__name__}', source=source
        )
    graph = PropertyGraph()
    try:
        for index, node in enumerate(nodes):
            record = _element(node, "nodes", index, ("id", "label"), source)
            graph.add_node(
                record["id"], record["label"], record.get("properties") or None
            )
        for index, edge in enumerate(edges):
            record = _element(
                edge, "edges", index, ("id", "source", "target", "label"), source
            )
            graph.add_edge(
                record["id"],
                record["source"],
                record["target"],
                record["label"],
                record.get("properties") or None,
            )
    except (TypeError, ValueError) as bad:
        # unhashable ids, tuple-hostile property values, ...
        raise GraphLoadError(
            f"malformed graph element: {bad}", source=source
        ) from bad
    return graph


def _decode(text: str, source: str | None) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError as bad:
        raise GraphLoadError(
            f"invalid JSON: {bad.msg}",
            source=source,
            line=bad.lineno,
            column=bad.colno,
            offset=bad.pos,
        ) from None
    except RecursionError:
        raise GraphLoadError(
            "JSON document is nested too deeply", source=source
        ) from None


def dump_graph(graph: PropertyGraph, fp: IO[str], indent: int | None = 2) -> None:
    """Write *graph* as JSON to an open text file."""
    json.dump(graph_to_dict(graph), fp, indent=indent)


def dumps_graph(graph: PropertyGraph, indent: int | None = 2) -> str:
    """Return *graph* as a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def load_graph(fp: IO[str], source: str | None = None) -> PropertyGraph:
    """Read a graph from an open JSON text file."""
    if source is None:
        source = getattr(fp, "name", None)
    try:
        text = fp.read()
    except UnicodeDecodeError as bad:
        raise GraphLoadError(
            f"graph document is not valid text: {bad.reason}",
            source=source,
            offset=bad.start,
        ) from None
    span = obs.span("pg.load", bytes=len(text))
    with span:
        graph = graph_from_dict(_decode(text, source), source)
        span.set(nodes=graph.num_nodes, edges=graph.num_edges)
    return graph


def loads_graph(text: str, source: str | None = None) -> PropertyGraph:
    """Read a graph from a JSON string."""
    return graph_from_dict(_decode(text, source), source)
