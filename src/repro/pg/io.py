"""JSON serialisation of Property Graphs.

The on-disk format is a small, explicit JSON document::

    {
      "nodes": [{"id": "u1", "label": "User", "properties": {"login": "alice"}}],
      "edges": [{"id": "e1", "source": "s1", "target": "u1",
                 "label": "user", "properties": {"certainty": 0.9}}]
    }

Array-valued properties serialise as JSON arrays.  Because JSON has no
tuple/list distinction and no non-string keys, identifiers round-trip as
strings or numbers only; that covers every workload in this repository.
"""

from __future__ import annotations

import json
from typing import IO, Any

from ..errors import GraphError
from .model import PropertyGraph


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Encode *graph* as a JSON-serialisable dictionary."""

    def encode_props(element: Any) -> dict[str, Any]:
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in graph.properties(element).items()
        }

    return {
        "nodes": [
            {"id": node, "label": graph.label(node), "properties": encode_props(node)}
            for node in graph.nodes
        ],
        "edges": [
            {
                "id": edge,
                "source": graph.endpoints(edge)[0],
                "target": graph.endpoints(edge)[1],
                "label": graph.label(edge),
                "properties": encode_props(edge),
            }
            for edge in graph.edges
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> PropertyGraph:
    """Decode a dictionary produced by :func:`graph_to_dict`."""
    graph = PropertyGraph()
    try:
        for node in data.get("nodes", []):
            graph.add_node(node["id"], node["label"], node.get("properties") or None)
        for edge in data.get("edges", []):
            graph.add_edge(
                edge["id"],
                edge["source"],
                edge["target"],
                edge["label"],
                edge.get("properties") or None,
            )
    except KeyError as missing:
        raise GraphError(f"missing required field in graph document: {missing}") from None
    return graph


def dump_graph(graph: PropertyGraph, fp: IO[str], indent: int | None = 2) -> None:
    """Write *graph* as JSON to an open text file."""
    json.dump(graph_to_dict(graph), fp, indent=indent)


def dumps_graph(graph: PropertyGraph, indent: int | None = 2) -> str:
    """Return *graph* as a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def load_graph(fp: IO[str]) -> PropertyGraph:
    """Read a graph from an open JSON text file."""
    return graph_from_dict(json.load(fp))


def loads_graph(text: str) -> PropertyGraph:
    """Read a graph from a JSON string."""
    return graph_from_dict(json.loads(text))
