"""JSON serialisation of Property Graphs.

The on-disk format is a small, explicit JSON document::

    {
      "nodes": [{"id": "u1", "label": "User", "properties": {"login": "alice"}}],
      "edges": [{"id": "e1", "source": "s1", "target": "u1",
                 "label": "user", "properties": {"certainty": 0.9}}]
    }

Array-valued properties serialise as JSON arrays.  Because JSON has no
tuple/list distinction and no non-string keys, identifiers round-trip as
strings or numbers only; that covers every workload in this repository.

Loading is hardened: every way a document can be malformed -- truncated or
invalid JSON, a non-object top level, non-array ``nodes``/``edges``,
non-object elements, missing required keys, wrongly-typed ``properties``,
or absurdly deep nesting -- raises a typed
:class:`~repro.errors.GraphLoadError` carrying the source name and, for
JSON syntax errors, the line/column/offset of the problem.  Loaders never
leak ``KeyError``/``TypeError``/``RecursionError`` to callers; the fuzz
suite mutates real documents byte-by-byte to enforce this.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Any, Iterator

from .. import obs
from ..errors import GraphError, GraphLoadError
from .model import PropertyGraph

if TYPE_CHECKING:  # pragma: no cover
    from .columnar import ColumnarBuilder, ColumnarGraph


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Encode *graph* as a JSON-serialisable dictionary."""

    def encode_props(element: Any) -> dict[str, Any]:
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in graph.properties(element).items()
        }

    return {
        "nodes": [
            {"id": node, "label": graph.label(node), "properties": encode_props(node)}
            for node in graph.nodes
        ],
        "edges": [
            {
                "id": edge,
                "source": graph.endpoints(edge)[0],
                "target": graph.endpoints(edge)[1],
                "label": graph.label(edge),
                "properties": encode_props(edge),
            }
            for edge in graph.edges
        ],
    }


def _element(
    record: Any,
    kind: str,
    index: int,
    required: tuple[str, ...],
    source: str | None,
) -> dict[str, Any]:
    """Check one node/edge record's shape; raise with element context."""
    where = f"{kind}[{index}]"
    if not isinstance(record, dict):
        raise GraphLoadError(
            f"{where} must be an object, got {type(record).__name__}",
            source=source,
        )
    for key in required:
        if key not in record:
            raise GraphLoadError(
                f"{where} is missing required key {key!r}", source=source
            )
    properties = record.get("properties")
    if properties is not None and not isinstance(properties, dict):
        raise GraphLoadError(
            f"{where}.properties must be an object, "
            f"got {type(properties).__name__}",
            source=source,
        )
    return record


def graph_from_dict(data: Any, source: str | None = None) -> PropertyGraph:
    """Decode a dictionary produced by :func:`graph_to_dict`.

    *source* names the document (a file path, ``"<stdin>"``, ...) in error
    messages.  Shape problems raise :class:`~repro.errors.GraphLoadError`;
    structural problems (duplicate ids, dangling endpoints) keep raising
    the narrower :class:`~repro.errors.GraphError` subtypes.
    """
    if not isinstance(data, dict):
        raise GraphLoadError(
            f"graph document must be a JSON object, got {type(data).__name__}",
            source=source,
        )
    nodes = data.get("nodes", [])
    edges = data.get("edges", [])
    if not isinstance(nodes, list):
        raise GraphLoadError(
            f'"nodes" must be an array, got {type(nodes).__name__}', source=source
        )
    if not isinstance(edges, list):
        raise GraphLoadError(
            f'"edges" must be an array, got {type(edges).__name__}', source=source
        )
    graph = PropertyGraph()
    try:
        for index, node in enumerate(nodes):
            record = _element(node, "nodes", index, ("id", "label"), source)
            graph.add_node(
                record["id"], record["label"], record.get("properties") or None
            )
        for index, edge in enumerate(edges):
            record = _element(
                edge, "edges", index, ("id", "source", "target", "label"), source
            )
            graph.add_edge(
                record["id"],
                record["source"],
                record["target"],
                record["label"],
                record.get("properties") or None,
            )
    except (TypeError, ValueError) as bad:
        # unhashable ids, tuple-hostile property values, ...
        raise GraphLoadError(
            f"malformed graph element: {bad}", source=source
        ) from bad
    return graph


def _decode(text: str, source: str | None) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError as bad:
        raise GraphLoadError(
            f"invalid JSON: {bad.msg}",
            source=source,
            line=bad.lineno,
            column=bad.colno,
            offset=bad.pos,
        ) from None
    except RecursionError:
        raise GraphLoadError(
            "JSON document is nested too deeply", source=source
        ) from None


def dump_graph(graph: PropertyGraph, fp: IO[str], indent: int | None = 2) -> None:
    """Write *graph* as JSON to an open text file."""
    json.dump(graph_to_dict(graph), fp, indent=indent)


def dumps_graph(graph: PropertyGraph, indent: int | None = 2) -> str:
    """Return *graph* as a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def load_graph(fp: IO[str], source: str | None = None) -> PropertyGraph:
    """Read a graph from an open JSON text file."""
    if source is None:
        source = getattr(fp, "name", None)
    try:
        text = fp.read()
    except UnicodeDecodeError as bad:
        raise GraphLoadError(
            f"graph document is not valid text: {bad.reason}",
            source=source,
            offset=bad.start,
        ) from None
    span = obs.span("pg.load", bytes=len(text))
    with span:
        graph = graph_from_dict(_decode(text, source), source)
        span.set(nodes=graph.num_nodes, edges=graph.num_edges)
    return graph


def loads_graph(text: str, source: str | None = None) -> PropertyGraph:
    """Read a graph from a JSON string."""
    return graph_from_dict(_decode(text, source), source)


# --------------------------------------------------------------------------- #
# JSON Lines: the streamable on-disk format
# --------------------------------------------------------------------------- #
#
# One JSON object per line, nodes before the edges that reference them::
#
#     {"type": "node", "id": "u1", "label": "User", "properties": {...}}
#     {"type": "edge", "id": "e1", "source": "s1", "target": "u1",
#      "label": "user", "properties": {...}}
#
# Unlike the single-document format above, a JSONL graph never has to be
# parsed whole: :func:`iter_graph_jsonl` yields one checked record at a
# time, which is what the out-of-core validator
# (:mod:`repro.validation.stream`) chunks over.  Every malformed line
# raises :class:`~repro.errors.GraphLoadError` carrying the 1-based line,
# the column within that line, and the absolute character offset.

_JSONL_TYPES = ("node", "edge")
_JSONL_REQUIRED: dict[str, tuple[str, ...]] = {
    "node": ("id", "label"),
    "edge": ("id", "source", "target", "label"),
}


def dump_graph_jsonl(graph: PropertyGraph, fp: IO[str]) -> None:
    """Write *graph* in JSON Lines form (nodes first, then edges)."""

    def encode_props(element: Any) -> dict[str, Any]:
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in graph.properties(element).items()
        }

    for node in graph.nodes:
        record: dict[str, Any] = {"type": "node", "id": node, "label": graph.label(node)}
        props = encode_props(node)
        if props:
            record["properties"] = props
        fp.write(json.dumps(record, separators=(",", ":")) + "\n")
    for edge in graph.edges:
        source, target = graph.endpoints(edge)
        record = {
            "type": "edge",
            "id": edge,
            "source": source,
            "target": target,
            "label": graph.label(edge),
        }
        props = encode_props(edge)
        if props:
            record["properties"] = props
        fp.write(json.dumps(record, separators=(",", ":")) + "\n")


def check_jsonl_record(
    record: Any, line: int, source: str | None
) -> dict[str, Any]:
    """Check the shape of one decoded JSONL record (see the format note)."""
    if not isinstance(record, dict):
        raise GraphLoadError(
            f"record must be an object, got {type(record).__name__}",
            source=source,
            line=line,
            column=1,
        )
    kind = record.get("type")
    if kind not in _JSONL_TYPES:
        if "type" in record:
            problem = f'record "type" must be "node" or "edge", got {kind!r}'
        else:
            problem = "record is missing required key 'type'"
        raise GraphLoadError(problem, source=source, line=line, column=1)
    for key in _JSONL_REQUIRED[kind]:
        if key not in record:
            raise GraphLoadError(
                f"{kind} record is missing required key {key!r}",
                source=source,
                line=line,
                column=1,
            )
    properties = record.get("properties")
    if properties is not None and not isinstance(properties, dict):
        raise GraphLoadError(
            f"{kind} record properties must be an object, "
            f"got {type(properties).__name__}",
            source=source,
            line=line,
            column=1,
        )
    return record


def iter_graph_jsonl(
    fp: IO[str], source: str | None = None
) -> "Iterator[tuple[int, dict[str, Any]]]":
    """Yield ``(line_number, record)`` pairs from a JSONL graph stream.

    Lines are decoded and shape-checked one at a time -- the whole point of
    the format: memory stays bounded by one line.  Blank lines are skipped.
    Malformed lines raise :class:`~repro.errors.GraphLoadError` pinpointing
    the line, column and absolute character offset of the problem.
    """
    if source is None:
        source = getattr(fp, "name", None)
    offset = 0
    line_number = 0
    while True:
        try:
            text = fp.readline()
        except UnicodeDecodeError as bad:
            raise GraphLoadError(
                f"graph document is not valid text: {bad.reason}",
                source=source,
                offset=bad.start,
            ) from None
        if not text:
            return
        line_number += 1
        if text.strip():
            try:
                record = json.loads(text)
            except json.JSONDecodeError as bad:
                raise GraphLoadError(
                    f"invalid JSON: {bad.msg}",
                    source=source,
                    line=line_number,
                    column=bad.colno,
                    offset=offset + bad.pos,
                ) from None
            except RecursionError:
                raise GraphLoadError(
                    "JSON record is nested too deeply",
                    source=source,
                    line=line_number,
                    column=1,
                    offset=offset,
                ) from None
            yield line_number, check_jsonl_record(record, line_number, source)
        offset += len(text)


def load_graph_jsonl(
    fp: IO[str], source: str | None = None, backend: str = "dict"
) -> "PropertyGraph | ColumnarGraph":
    """Read a JSONL graph stream into memory.

    ``backend="dict"`` builds a mutable :class:`PropertyGraph`;
    ``backend="columnar"`` feeds a
    :class:`~repro.pg.columnar.ColumnarBuilder` directly, so the mutable
    dict-of-dicts representation is never materialised.  Structural errors
    (duplicate ids, dangling endpoints, illegal values) are re-raised as
    :class:`~repro.errors.GraphLoadError` tagged with the offending line.
    """
    if backend not in ("dict", "columnar"):
        raise ValueError(f'backend must be "dict" or "columnar", got {backend!r}')
    if source is None:
        source = getattr(fp, "name", None)
    builder: "PropertyGraph | ColumnarBuilder"
    if backend == "columnar":
        from .columnar import ColumnarBuilder

        builder = ColumnarBuilder()
    else:
        builder = PropertyGraph()
    span = obs.span("pg.load_jsonl", backend=backend)
    with span:
        records = 0
        for line_number, record in iter_graph_jsonl(fp, source):
            records += 1
            try:
                if record["type"] == "node":
                    builder.add_node(
                        record["id"], record["label"], record.get("properties") or None
                    )
                else:
                    builder.add_edge(
                        record["id"],
                        record["source"],
                        record["target"],
                        record["label"],
                        record.get("properties") or None,
                    )
            except GraphLoadError:
                raise
            except (GraphError, TypeError, ValueError) as bad:
                raise GraphLoadError(
                    f"malformed graph element: {bad}",
                    source=source,
                    line=line_number,
                    column=1,
                ) from bad
        span.set(records=records)
        if backend == "columnar":
            assert not isinstance(builder, PropertyGraph)
            return builder.build()
    return builder
