"""A minimal stdlib HTTP client for the ``pgschema serve`` API.

Thin sugar over :mod:`http.client` with keep-alive, shared by the service
tests, the CI service-smoke job and ``bench_e17`` (whose closed-loop
drivers each hold one persistent connection -- connection setup is not
what the benchmark measures).  Not a public SDK: the API is plain
JSON-over-HTTP and any client works (see the curl examples in
``docs/SERVICE.md``).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any

from ..pg import graph_to_dict
from ..pg.model import PropertyGraph

__all__ = ["ServiceClient"]


class ServiceClient:
    """One keep-alive connection to a running service."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: HTTPConnection | None = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """One round-trip; returns ``(status, decoded JSON body)``.

        Reconnects once on a dropped keep-alive connection (the server may
        have restarted between calls)."""
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        for retry in (False, True):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
                assert isinstance(decoded, dict)
                return response.status, decoded
            except (ConnectionError, OSError):
                self.close()
                if retry:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _connect(self) -> HTTPConnection:
        if self._connection is None:
            self._connection = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # endpoint sugar
    # ------------------------------------------------------------------ #

    def register(
        self, tenant: str, name: str, sdl: str
    ) -> tuple[int, dict[str, Any]]:
        return self.request(
            "POST", "/v1/schemas", {"tenant": tenant, "name": name, "sdl": sdl}
        )

    def validate(
        self,
        tenant: str,
        name: str,
        graph: "PropertyGraph | dict[str, Any]",
        *,
        version: int | None = None,
        mode: str = "strong",
        deadline: float | None = None,
    ) -> tuple[int, dict[str, Any]]:
        document = (
            graph_to_dict(graph) if isinstance(graph, PropertyGraph) else graph
        )
        payload: dict[str, Any] = {
            "tenant": tenant,
            "name": name,
            "mode": mode,
            "graph": document,
        }
        if version is not None:
            payload["version"] = version
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request("POST", "/v1/validate", payload)

    def lint(
        self, tenant: str, name: str, version: int | None = None
    ) -> tuple[int, dict[str, Any]]:
        payload: dict[str, Any] = {"tenant": tenant, "name": name}
        if version is not None:
            payload["version"] = version
        return self.request("POST", "/v1/lint", payload)

    def sat(
        self, tenant: str, name: str, version: int | None = None
    ) -> tuple[int, dict[str, Any]]:
        payload: dict[str, Any] = {"tenant": tenant, "name": name}
        if version is not None:
            payload["version"] = version
        return self.request("POST", "/v1/sat", payload)

    def stats(self) -> tuple[int, dict[str, Any]]:
        return self.request("GET", "/v1/stats")

    def healthz(self) -> tuple[int, dict[str, Any]]:
        return self.request("GET", "/v1/healthz")

    def list_schemas(self, tenant: str) -> tuple[int, dict[str, Any]]:
        return self.request("GET", f"/v1/schemas/{tenant}")
