"""``pgschema serve``: the long-lived schema-registry service (PR 9).

The one-shot CLI pays cold-start costs -- SDL parse, plan compile, sat
warm-up -- on every invocation; the caches built in PRs 2-6 amortize them
only within a process.  This package keeps that process alive:

* :mod:`~repro.service.registry` -- versioned, multi-tenant schema records
  pinning their compiled plans and private sat caches (tenant isolation by
  construction), atomically persisted and reloaded across restarts;
* :mod:`~repro.service.batching` -- the hot path: bounded admission,
  coalescing of concurrent validate requests into shared sharded runs,
  per-request deadline budgets, and a retry/serial fallback ladder;
* :mod:`~repro.service.server` -- the stdlib-only asyncio JSON-over-HTTP
  daemon plus :class:`~repro.service.server.ServiceThread` for in-process
  hosting (tests, benchmarks, the CI smoke job);
* :mod:`~repro.service.client` -- a small keep-alive HTTP client those
  harnesses share.

``bench_e17_service.py`` (experiment E17) proves the point: batched
warm-cache serving sustains >= 3x the throughput of per-request cold
subprocess invocation, with p50/p99 latencies from the obs histograms.
"""

from .batching import BatchingValidator
from .client import ServiceClient
from .registry import SchemaRecord, SchemaRegistry
from .server import ServiceThread, ValidationService, report_payload

__all__ = [
    "BatchingValidator",
    "SchemaRecord",
    "SchemaRegistry",
    "ServiceClient",
    "ServiceThread",
    "ValidationService",
    "report_payload",
]
