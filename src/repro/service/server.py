"""The ``pgschema serve`` daemon: stdlib-only asyncio JSON-over-HTTP.

One :class:`ValidationService` owns a :class:`~repro.service.registry.SchemaRegistry`
(versioned, per-tenant, optionally persisted) and a
:class:`~repro.service.batching.BatchingValidator` (coalescing, admission
control, deadlines).  The HTTP layer is a minimal HTTP/1.1 implementation
on ``asyncio.start_server`` -- request line, headers, ``Content-Length``
body, keep-alive -- because the repo's no-new-dependencies rule applies to
the service too.

API (all bodies JSON; see ``docs/SERVICE.md`` for the full reference):

=======  ==============================  ==========================================
method   path                            action
=======  ==============================  ==========================================
POST     ``/v1/schemas``                 register ``{tenant, name, sdl}``
GET      ``/v1/schemas/<tenant>``        list the tenant's schemas/versions
POST     ``/v1/validate``                ``{tenant, name, version?, mode?, graph,
                                         deadline?}`` -> validation report
POST     ``/v1/lint``                    ``{tenant, name, version?}`` -> findings
POST     ``/v1/sat``                     ``{tenant, name, version?}`` -> verdicts
GET      ``/v1/stats``                   metrics snapshot + service counters
GET      ``/v1/healthz``                 liveness probe
=======  ==============================  ==========================================

Status semantics (never wrong answers):

* **200** -- complete result;
* **202** -- *typed partial*: the per-request deadline tripped, the body is
  a report with ``complete: false`` and a structured ``interruption``;
* **400/404** -- typed input errors (``error.code`` carries the ``E_*``
  taxonomy code);
* **503** -- admission queue full (``E_OVERLOAD``): shed, not queued into
  a deadline miss.

:class:`ServiceThread` hosts a service on a background thread with its own
event loop -- the harness the lifecycle tests and ``bench_e17`` share.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Awaitable, Callable

from .. import obs
from ..errors import (
    GraphError,
    OverloadedError,
    ReproError,
    SchemaError,
    SDLSyntaxError,
    ServiceError,
)
from ..obs.export import attach_cache_stats, metrics_payload
from ..pg import graph_from_dict
from ..validation.violations import ValidationReport, rules_for_mode
from .batching import BatchingValidator
from .registry import SchemaRecord, SchemaRegistry

__all__ = ["ServiceThread", "ValidationService", "report_payload"]

_MAX_BODY = 256 * 1024 * 1024  # typed refusal instead of OOM on absurd uploads


def report_payload(report: ValidationReport) -> dict[str, Any]:
    """The canonical JSON shape of a validation report.

    Deterministic by construction (the merge path canonically sorts
    violations), so serializing with ``sort_keys=True`` gives the
    byte-identical-responses guarantee the differential tests assert.
    """
    interruption: dict[str, Any] | None = None
    if report.interruption is not None:
        reason = report.interruption
        interruption = {
            "dimension": getattr(reason, "dimension", None),
            "limit": getattr(reason, "limit", None),
            "used": getattr(reason, "used", None),
            "site": getattr(reason, "site", None),
        }
    return {
        "mode": report.mode,
        "verdict": report.verdict,
        "complete": report.complete,
        "interruption": interruption,
        "rules_checked": list(report.rules_checked),
        "summary": report.summary(),
        "violations": [
            {
                "rule": violation.rule,
                "location": violation.location,
                "elements": [str(element) for element in violation.elements],
                "detail": violation.detail,
            }
            for violation in report.violations
        ],
    }


class _HttpError(Exception):
    """An error with a fixed HTTP status (routing/body problems)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def _status_for(error: ReproError) -> int:
    """Map the typed error taxonomy onto HTTP statuses."""
    if isinstance(error, OverloadedError):
        return 503
    if isinstance(error, ServiceError):
        # registry lookups raise ServiceError for unknown coordinates
        return 404 if "unknown" in str(error) else 400
    if isinstance(error, (SchemaError, SDLSyntaxError, GraphError)):
        return 400
    return 400


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ValidationService:
    """The daemon: registry + batcher behind a JSON-over-HTTP front."""

    def __init__(
        self,
        registry_dir: str | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8351,
        max_queue: int = 256,
        max_batch: int = 32,
        jobs: int | None = None,
        deadline: float | None = None,
        max_retries: int = 2,
        perf_store: str = ".perf",
    ) -> None:
        self.host = host
        self.port = port
        self.perf_store = perf_store
        self.registry = SchemaRegistry(registry_dir)
        self.batcher = BatchingValidator(
            jobs=jobs,
            max_queue=max_queue,
            max_batch=max_batch,
            deadline=deadline,
            max_retries=max_retries,
        )
        self._server: asyncio.Server | None = None
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port).

        A bind failure (port in use, bad address) raises
        :class:`~repro.errors.ServiceError` -- the CLI renders it as
        ``error[E_SERVICE]`` and exits 2, per the uniform taxonomy.
        """
        self._ensure_metrics()
        try:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
        except OSError as error:
            self.batcher.close()
            raise ServiceError(
                f"cannot bind {self.host}:{self.port}: {error}"
            ) from error
        sockname = self._server.sockets[0].getsockname()
        self.address = (str(sockname[0]), int(sockname[1]))
        obs.count("service.started")
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() must run first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight batches."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # the batcher drain blocks on worker threads; keep it off the loop
        await asyncio.get_running_loop().run_in_executor(None, self.batcher.close)

    def _ensure_metrics(self) -> None:
        """Make sure a metrics registry is installed for the daemon's
        lifetime (reusing whatever the CLI ``--metrics`` flag installed, so
        one registry feeds both the snapshot file and ``/v1/stats``)."""
        active = obs.active()
        if active is not None and active.registry is not None:
            return
        obs.install(
            active.tracer if active is not None else None, obs.MetricsRegistry()
        )

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _ = request_line.decode("latin-1").split()
                except ValueError:
                    await self._respond(
                        writer,
                        400,
                        {"error": {"code": "E_SERVICE", "message": "malformed request line"}},
                    )
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY:
                    await self._respond(
                        writer,
                        413,
                        {"error": {"code": "E_SERVICE", "message": "request body too large"}},
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._dispatch(method, target, body)
                await self._respond(writer, status, payload)
                if headers.get("connection", "").lower() == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        path = target.partition("?")[0].rstrip("/")
        try:
            handler = self._route(method, path)
            return await handler(path, body)
        except _HttpError as error:
            return error.status, {
                "error": {"code": error.code, "message": str(error)}
            }
        except ReproError as error:
            return _status_for(error), {
                "error": {"code": error.code, "message": str(error)}
            }
        except Exception as error:  # noqa: BLE001 - fail closed, typed
            obs.count("service.internal_errors")
            return 500, {
                "error": {"code": "E_SERVICE", "message": f"internal error: {error}"}
            }

    def _route(
        self, method: str, path: str
    ) -> Callable[[str, bytes], Awaitable[tuple[int, dict[str, Any]]]]:
        if path == "/v1/healthz" and method == "GET":
            return self._handle_healthz
        if path == "/v1/stats" and method == "GET":
            return self._handle_stats
        if path == "/v1/schemas" and method == "POST":
            return self._handle_register
        if path.startswith("/v1/schemas/") and method == "GET":
            return self._handle_list
        if path == "/v1/validate" and method == "POST":
            return self._handle_validate
        if path == "/v1/lint" and method == "POST":
            return self._handle_lint
        if path == "/v1/sat" and method == "POST":
            return self._handle_sat
        if path.startswith("/v1/"):
            raise _HttpError(405, "E_SERVICE", f"{method} not supported for {path}")
        raise _HttpError(404, "E_SERVICE", f"no such endpoint: {path}")

    @staticmethod
    def _body_json(body: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, "E_SERVICE", f"request body is not JSON: {error}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "E_SERVICE", "request body must be a JSON object")
        return payload

    @staticmethod
    def _field(payload: dict[str, Any], key: str) -> str:
        value = payload.get(key)
        if not isinstance(value, str) or not value:
            raise _HttpError(400, "E_SERVICE", f"missing or non-string field {key!r}")
        return value

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    async def _handle_healthz(
        self, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        return 200, {"status": "ok", "schemas": len(self.registry)}

    async def _handle_register(
        self, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        payload = self._body_json(body)
        tenant = self._field(payload, "tenant")
        name = self._field(payload, "name")
        sdl = self._field(payload, "sdl")
        loop = asyncio.get_running_loop()
        # parse + plan compile are CPU work: keep them off the event loop
        record = await loop.run_in_executor(
            None, self.registry.register, tenant, name, sdl
        )
        return 200, record.describe()

    async def _handle_list(
        self, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        tenant = path[len("/v1/schemas/") :]
        if "/" in tenant or not tenant:
            raise _HttpError(404, "E_SERVICE", f"no such endpoint: {path}")
        return 200, {"tenant": tenant, "schemas": self.registry.list(tenant)}

    def _record_for(self, payload: dict[str, Any]) -> SchemaRecord:
        tenant = self._field(payload, "tenant")
        name = self._field(payload, "name")
        version = payload.get("version")
        if version is not None and not isinstance(version, int):
            raise _HttpError(400, "E_SERVICE", "field 'version' must be an integer")
        return self.registry.get(tenant, name, version)

    async def _handle_validate(
        self, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        payload = self._body_json(body)
        record = self._record_for(payload)
        mode = payload.get("mode", "strong")
        if not isinstance(mode, str):
            raise _HttpError(400, "E_SERVICE", "field 'mode' must be a string")
        try:
            rules_for_mode(mode)
        except ValueError as error:
            raise _HttpError(400, "E_SERVICE", str(error))
        graph_doc = payload.get("graph")
        if not isinstance(graph_doc, dict):
            raise _HttpError(400, "E_SERVICE", "missing or non-object field 'graph'")
        deadline = payload.get("deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise _HttpError(400, "E_SERVICE", "field 'deadline' must be a number")
        graph = graph_from_dict(graph_doc)
        future = self.batcher.submit(
            record,
            graph,
            mode=mode,
            deadline=float(deadline) if deadline is not None else None,
        )
        report = await asyncio.wrap_future(future)
        return (200 if report.complete else 202), report_payload(report)

    async def _handle_lint(
        self, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        from ..lint import lint_schema

        payload = self._body_json(body)
        record = self._record_for(payload)
        loop = asyncio.get_running_loop()
        findings = await loop.run_in_executor(None, lint_schema, record.schema)
        return 200, {
            "tenant": record.tenant,
            "name": record.name,
            "version": record.version,
            "findings": [finding.to_json() for finding in findings],
        }

    async def _handle_sat(
        self, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        from ..satisfiability import SatisfiabilityChecker

        payload = self._body_json(body)
        record = self._record_for(payload)
        loop = asyncio.get_running_loop()

        def check() -> dict[str, Any]:
            # the record's private SatCache keeps repeat sweeps warm without
            # touching the module-level registry other tenants share
            checker = SatisfiabilityChecker(
                record.schema, cache=record.sat_cache
            )
            report = checker.check_schema(find_witnesses=False)
            result = report.to_json()
            assert isinstance(result, dict)
            return result

        report_json = await loop.run_in_executor(None, check)
        return 200, {
            "tenant": record.tenant,
            "name": record.name,
            "version": record.version,
            "report": report_json,
        }

    async def _handle_stats(
        self, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        active = obs.active()
        registry = (
            active.registry if active is not None and active.registry is not None
            else obs.MetricsRegistry()
        )
        for key, value in self.batcher.stats().items():
            registry.gauge(f"service.{key}", value)
        attach_cache_stats(registry)
        payload = metrics_payload(registry)
        payload["service"] = {
            "schemas": len(self.registry),
            "batching": self.batcher.stats(),
            "tenants": self.registry.tenant_stats(),
        }
        from ..perf import ProfileStore, perf_summary

        payload["perf"] = perf_summary(ProfileStore(self.perf_store))
        return 200, payload


class ServiceThread:
    """Host a :class:`ValidationService` on a background thread.

    The thread runs its own event loop; :meth:`start` blocks until the
    server is bound (``port=0`` picks an ephemeral port) and returns the
    address.  Used by the lifecycle tests, the CI service-smoke job and
    ``bench_e17`` -- everything that needs a live daemon in-process.
    """

    def __init__(self, **kwargs: Any) -> None:
        self.service = ValidationService(**kwargs)
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._run, name="pgschema-serve", daemon=True
        )

    def start(self) -> tuple[str, int]:
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            self._thread.join()
            raise self._error
        assert self.service.address is not None
        return self.service.address

    def stop(self) -> None:
        """Graceful shutdown; joins the server thread."""
        if self._loop is not None and not self._stopped.is_set():
            self._loop.call_soon_threadsafe(self._stop_event_set)
        self._thread.join()

    def _stop_event_set(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.service.start()
        except BaseException as error:  # noqa: BLE001 - reported to start()
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            assert self._stop_event is not None
            await self._stop_event.wait()
        finally:
            await self.service.stop()
            self._stopped.set()
