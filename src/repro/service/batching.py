"""Request batching, admission control and fallback for ``pgschema serve``.

The service's hot path: many small concurrent validate requests against
the same schema version should cost one parallel sharded run, not N
serial ones.  :class:`BatchingValidator` owns

* a **bounded admission queue** -- ``submit`` never blocks; a full queue
  raises :class:`~repro.errors.OverloadedError` (the HTTP layer's typed
  503), because shedding load with a typed refusal beats queueing into a
  deadline miss;
* a **drain loop** that dequeues greedily (up to ``max_batch`` requests
  per sweep) and *coalesces* requests sharing ``(schema record, mode)``
  into one batch, fanning every request's shards over one shared thread
  pool before gathering per request;
* **per-request deadlines** through the PR 3 Budget machinery: queue wait
  counts against the deadline, and exhaustion -- in the queue or inside
  the shard kernel -- surfaces as a typed *partial* report
  (``complete=False`` with a structured interruption; HTTP 202), never a
  wrong answer;
* a **fallback ladder**: batches retry with backoff at the
  ``service.batch`` fault site, then fall back to serial in-thread
  execution; graphs at or above the parallel validator's process
  threshold route through :class:`~repro.validation.parallel.ParallelValidator`,
  which carries the full process -> thread -> serial recovery ladder.

Determinism contract: each request's report is produced by
``partition_graph`` + ``validate_shard`` + ``merge_shard_results`` -- the
identical kernel/merge path as the CLI engines -- so a batched response is
byte-identical to a single-shot ``pgschema validate`` run, regardless of
batch composition, job count, or which ladder rung finally served it.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from .. import obs
from ..errors import (
    BudgetExhaustedError,
    BudgetReason,
    OverloadedError,
    ServiceError,
    WorkerFailureError,
)
from ..pg.model import PropertyGraph
from ..resilience import Budget, faults
from ..validation.parallel import (
    ParallelValidator,
    ShardResult,
    merge_shard_results,
    usable_cores,
    validate_shard,
)
from ..validation.shard import GraphShard, partition_graph
from ..validation.violations import ValidationReport, rules_for_mode
from .registry import SchemaRecord

__all__ = ["BatchingValidator"]

#: The fault-injection site every batch attempt passes through.
BATCH_FAULT_SITE = "service.batch"


@dataclass
class _Request:
    """One queued validate call and the future its client awaits."""

    record: SchemaRecord
    graph: PropertyGraph
    mode: str
    deadline: float | None
    future: "Future[ValidationReport]"
    enqueued_at: float = field(default_factory=time.monotonic)

    def budget(self) -> Budget | None:
        """A fresh budget for one execution attempt.

        The deadline is measured from *enqueue*, so time spent waiting in
        the admission queue counts against it -- backpressure surfaces as
        typed partial answers instead of silently late complete ones.
        Recomputed per attempt, a retry never inherits the consumption of
        a crashed attempt.
        """
        if self.deadline is None:
            return None
        remaining = self.deadline - (time.monotonic() - self.enqueued_at)
        if remaining <= 0:
            raise BudgetExhaustedError(
                BudgetReason(
                    "deadline",
                    self.deadline,
                    time.monotonic() - self.enqueued_at,
                    BATCH_FAULT_SITE,
                )
            )
        return Budget(deadline=remaining)


class BatchingValidator:
    """Coalesce concurrent validate requests into shared sharded runs."""

    def __init__(
        self,
        *,
        jobs: int | None = None,
        max_queue: int = 256,
        max_batch: int = 32,
        deadline: float | None = None,
        max_retries: int = 2,
        retry_base_delay: float = 0.05,
    ) -> None:
        """``deadline`` is the default per-request seconds (``submit`` may
        override per call); ``max_retries`` bounds same-rung batch retries
        before the serial fallback."""
        self.jobs = max(1, jobs) if jobs is not None else usable_cores()
        self.max_queue = max_queue
        self.max_batch = max(1, max_batch)
        self.deadline = deadline
        self.max_retries = max(0, max_retries)
        self.retry_base_delay = retry_base_delay
        #: recovery events (one dict per failed batch attempt), mirroring
        #: ``ParallelValidator.recovery_log`` so chaos tests can assert a
        #: fault fired and was survived
        self.recovery_log: list[dict[str, object]] = []
        self.requests = 0
        self.batches = 0
        self.rejected = 0
        self._queue: "queue.Queue[_Request | None]" = queue.Queue(maxsize=max_queue)
        self._pool = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="pgschema-batch"
        )
        self._lock = threading.Lock()
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain_loop, name="pgschema-drain", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        record: SchemaRecord,
        graph: PropertyGraph,
        mode: str = "strong",
        deadline: float | None = None,
    ) -> "Future[ValidationReport]":
        """Enqueue one validate request; never blocks.

        Raises :class:`~repro.errors.OverloadedError` when the admission
        queue is full and :class:`~repro.errors.ServiceError` after
        :meth:`close` -- both typed refusals, never silent drops.
        """
        rules_for_mode(mode)  # reject unknown modes before queueing
        with self._lock:
            if self._closed:
                raise ServiceError("service is shutting down; not accepting requests")
            request = _Request(
                record=record,
                graph=graph,
                mode=mode,
                deadline=deadline if deadline is not None else self.deadline,
                future=Future(),
            )
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self.rejected += 1
                obs.count("service.rejected")
                raise OverloadedError(
                    f"admission queue full ({self.max_queue} request(s) waiting)"
                ) from None
            self.requests += 1
        obs.count("service.requests")
        obs.gauge("service.queue_depth", self._queue.qsize())
        return request.future

    def close(self) -> None:
        """Graceful shutdown: stop admitting, drain every queued request.

        FIFO ordering makes the sentinel a barrier -- every request
        admitted before ``close`` is batched and answered before the drain
        thread exits.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join()
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # the drain loop: dequeue greedily, coalesce, execute
    # ------------------------------------------------------------------ #

    def _drain_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    # sentinel reached mid-sweep: serve this batch, then exit
                    self._queue.put(None)
                    break
                batch.append(extra)
            obs.gauge("service.queue_depth", self._queue.qsize())
            groups: dict[tuple[int, str], list[_Request]] = {}
            for request in batch:
                groups.setdefault(
                    (id(request.record), request.mode), []
                ).append(request)
            for group in groups.values():
                self._run_group(group)

    def _run_group(self, group: list[_Request]) -> None:
        """One coalesced batch: retries, then the serial fallback rung."""
        record = group[0].record
        self.batches += 1
        obs.count("service.batches")
        obs.observe("service.batch_size", len(group))
        started = time.monotonic()
        with obs.span(
            "service.batch",
            tenant=record.tenant,
            schema=record.name,
            version=record.version,
            requests=len(group),
        ):
            attempt = 0
            while True:
                try:
                    faults.fault_point(
                        BATCH_FAULT_SITE,
                        tenant=record.tenant,
                        schema=record.name,
                        requests=len(group),
                        attempt=attempt,
                        executor="thread",
                    )
                    reports = self._execute_group(group, serial=False)
                    break
                except Exception as error:  # noqa: BLE001 - ladder boundary
                    self._record_failure(record, attempt, "thread", error)
                    attempt += 1
                    if attempt > self.max_retries:
                        reports = self._serial_fallback(group, record, attempt)
                        break
                    time.sleep(self.retry_base_delay * (2 ** (attempt - 1)))
        obs.observe("service.batch_seconds", time.monotonic() - started)
        now = time.monotonic()
        for request in group:
            obs.observe(
                "service.latency_ms", (now - request.enqueued_at) * 1000.0
            )
            result = reports.get(id(request))
            if result is None:
                continue  # fallback already set the failure on the future
            request.future.set_result(result)

    def _serial_fallback(
        self, group: list[_Request], record: SchemaRecord, attempt: int
    ) -> dict[int, ValidationReport]:
        """The last rung: run each request inline in the drain thread."""
        try:
            faults.fault_point(
                BATCH_FAULT_SITE,
                tenant=record.tenant,
                schema=record.name,
                requests=len(group),
                attempt=attempt,
                executor="serial",
            )
            return self._execute_group(group, serial=True)
        except Exception as error:  # noqa: BLE001 - ladder boundary
            self._record_failure(record, attempt, "serial", error)
            failure = WorkerFailureError(
                f"batch failed after {attempt} retry attempt(s) and the "
                f"serial fallback: {error}",
                attempts=attempt + 1,
            )
            for request in group:
                request.future.set_exception(failure)
            return {}

    def _record_failure(
        self, record: SchemaRecord, attempt: int, executor: str, error: Exception
    ) -> None:
        self.recovery_log.append(
            {
                "site": BATCH_FAULT_SITE,
                "tenant": record.tenant,
                "schema": record.name,
                "attempt": attempt,
                "executor": executor,
                "error": repr(error),
            }
        )
        obs.count("service.batch_failures")

    # ------------------------------------------------------------------ #
    # execution: shard fan-out over the shared pool, per-request merge
    # ------------------------------------------------------------------ #

    def _execute_group(
        self, group: list[_Request], serial: bool
    ) -> dict[int, ValidationReport]:
        """Run every request of one coalesced batch; nothing is published
        to client futures until the whole batch succeeded, so a crashed
        attempt can be retried without clients observing duplicates."""
        record = group[0].record
        mode = group[0].mode
        rules = rules_for_mode(mode)
        reports: dict[int, ValidationReport] = {}
        pending: list[tuple[_Request, Budget | None, list[GraphShard]]] = []
        for request in group:
            try:
                budget = request.budget()
                if budget is not None:
                    budget.charge_nodes(len(request.graph), site=BATCH_FAULT_SITE)
            except BudgetExhaustedError as stop:
                # deadline burned in the queue (or the graph alone exceeds
                # max_nodes): typed partial report, no shards run
                reports[id(request)] = merge_shard_results(
                    record.plan, [], mode, rules, stop.reason
                )
                continue
            if not serial and len(request.graph) >= ParallelValidator.SMALL_GRAPH_THRESHOLD:
                # big single graph: the process-pool ladder beats thread
                # sharding; ParallelValidator embeds the full
                # process -> thread -> serial recovery contract
                validator = ParallelValidator(
                    record.schema,
                    jobs=self.jobs,
                    plan=record.plan,
                    on_budget="unknown",
                )
                reports[id(request)] = validator.validate(
                    request.graph, mode, budget
                )
                continue
            pending.append(
                (request, budget, partition_graph(request.graph, 1 if serial else self.jobs))
            )
        # fan out every shard of every pooled request before gathering any:
        # this interleaving is the batching win the bench measures
        fanned: list[tuple[_Request, Budget | None, list["Future[ShardResult]"]]] = []
        for request, budget, shards in pending:
            if serial:
                reports[id(request)] = self._run_serial(
                    record, request, budget, shards, rules
                )
                continue
            shard_futures = [
                self._pool.submit(
                    validate_shard, record.plan, request.graph, shard, rules, budget
                )
                for shard in shards
            ]
            fanned.append((request, budget, shard_futures))
        for request, budget, shard_futures in fanned:
            results: list[ShardResult | None] = [None] * len(shard_futures)
            interruption: BudgetReason | None = None
            for index, shard_future in enumerate(shard_futures):
                try:
                    results[index] = shard_future.result()
                except BudgetExhaustedError as stop:
                    interruption = stop.reason
            reports[id(request)] = merge_shard_results(
                record.plan, results, request.mode, rules, interruption
            )
        return reports

    def _run_serial(
        self,
        record: SchemaRecord,
        request: _Request,
        budget: Budget | None,
        shards: list[GraphShard],
        rules: tuple[str, ...],
    ) -> ValidationReport:
        results: list[ShardResult | None] = [None] * len(shards)
        interruption: BudgetReason | None = None
        try:
            for index, shard in enumerate(shards):
                results[index] = validate_shard(
                    record.plan, request.graph, shard, rules, budget
                )
        except BudgetExhaustedError as stop:
            interruption = stop.reason
        return merge_shard_results(
            record.plan, results, request.mode, rules, interruption
        )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, float]:
        """Queue/batch counters for the ``/v1/stats`` payload."""
        return {
            "queue_depth": float(self._queue.qsize()),
            "max_queue": float(self.max_queue),
            "max_batch": float(self.max_batch),
            "jobs": float(self.jobs),
            "requests": float(self.requests),
            "batches": float(self.batches),
            "rejected": float(self.rejected),
            "coalesce_ratio": (
                self.requests / self.batches if self.batches else 0.0
            ),
        }
