"""The versioned, multi-tenant schema registry behind ``pgschema serve``.

A *record* is one registered schema version: the SDL text, the parsed
:class:`~repro.schema.model.GraphQLSchema`, and -- the point of a
long-lived service -- the process-resident state the one-shot CLI pays to
rebuild on every invocation:

* the compiled :class:`~repro.validation.plan.ValidationPlan` (pinned, so
  the global plan LRU evicting it under pressure from other tenants is
  harmless -- the record's strong reference *is* the cache entry);
* a private :class:`~repro.satisfiability.cache.SatCache` handed to every
  :class:`~repro.satisfiability.SatisfiabilityChecker` built for the
  record, so one tenant's sat sweeps never evict another tenant's verdicts
  out of the module-level registry (they never enter it).

That pinning is the whole tenancy model: tenants share nothing but the
process.  Names are scoped ``(tenant, name, version)``; a lookup always
carries the tenant, so tenant A cannot address -- or warm, or evict --
tenant B's state.

Persistence reuses the CDC checkpoint idiom (PR 8): each version is one
``<root>/<tenant>/<name>/<version>.graphql`` file written to a ``.tmp``
sibling, fsynced, then atomically renamed into place, so a crash mid-write
can never leave a half-registered version.  Restart recovery is a
directory walk: every persisted version is re-parsed and re-compiled, so a
restarted daemon comes back warm with the same version numbers.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass, field

from .. import obs
from ..errors import ServiceError
from ..satisfiability.cache import SatCache
from ..schema import parse_schema
from ..schema.model import GraphQLSchema
from ..validation.plan import ValidationPlan

__all__ = ["SchemaRecord", "SchemaRegistry"]

#: Tenants and schema names become path segments on disk, so they are
#: restricted to a safe token shape (no separators, no dotfiles).
_TOKEN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def _check_token(kind: str, value: str) -> str:
    if not _TOKEN.match(value) or ".." in value:
        raise ServiceError(
            f"invalid {kind} {value!r}: expected a name matching "
            "[A-Za-z0-9][A-Za-z0-9._-]* (max 64 chars)"
        )
    return value


@dataclass
class SchemaRecord:
    """One registered schema version with its pinned warm state."""

    tenant: str
    name: str
    version: int
    sdl: str
    schema: GraphQLSchema
    plan: ValidationPlan
    sat_cache: SatCache
    registered_at: float = field(default_factory=time.monotonic)

    def describe(self) -> dict[str, object]:
        """The JSON shape the service returns for registry lookups."""
        return {
            "tenant": self.tenant,
            "name": self.name,
            "version": self.version,
            "object_types": len(self.schema.object_types),
        }


class SchemaRegistry:
    """Versioned schemas per tenant, with optional on-disk persistence.

    Thread-safe: one lock guards the record map and the version counters
    (registration is rare; lookups copy nothing and hold the lock only for
    a dict hit).
    """

    def __init__(self, root: str | None = None) -> None:
        self.root = root
        self._lock = threading.Lock()
        #: (tenant, name) -> {version -> record}, insertion-ordered
        self._records: dict[tuple[str, str], dict[int, SchemaRecord]] = {}
        #: per-tenant counters feeding the /v1/stats payload
        self._tenant_stats: dict[str, dict[str, int]] = {}
        if root is not None:
            self._open_root(root)
            self._reload()

    # ------------------------------------------------------------------ #
    # registration and lookup
    # ------------------------------------------------------------------ #

    def register(self, tenant: str, name: str, sdl: str) -> SchemaRecord:
        """Parse, compile and store *sdl* as the next version of *name*.

        Parsing/consistency failures raise their usual typed errors
        (``E_SYNTAX``/``E_SCHEMA``/``E_CONSISTENCY``) before anything is
        stored -- a bad upload never burns a version number.
        """
        _check_token("tenant", tenant)
        _check_token("schema name", name)
        with obs.span("service.register", tenant=tenant, schema=name):
            schema = parse_schema(sdl, check=True)
            # compile eagerly: registration pays the cold cost once so every
            # later validate against this version is a warm (pinned) hit
            plan = ValidationPlan(schema)
            sat_cache = SatCache(schema)
        with self._lock:
            versions = self._records.setdefault((tenant, name), {})
            version = max(versions, default=0) + 1
            record = SchemaRecord(
                tenant=tenant,
                name=name,
                version=version,
                sdl=sdl,
                schema=schema,
                plan=plan,
                sat_cache=sat_cache,
            )
            versions[version] = record
            stats = self._tenant_counters(tenant)
            stats["schemas_registered"] += 1
            stats["cold_compiles"] += 1
        if self.root is not None:
            self._persist(record)
        obs.count("service.registrations")
        return record

    def get(
        self, tenant: str, name: str, version: int | None = None
    ) -> SchemaRecord:
        """The record for ``(tenant, name, version)`` (latest by default).

        Raises :class:`~repro.errors.ServiceError` for unknown coordinates;
        the HTTP layer maps that to 404.  Every hit counts as a warm plan
        hit for the tenant -- the pinned plan *is* the cache.
        """
        with self._lock:
            versions = self._records.get((tenant, name))
            if not versions:
                raise ServiceError(
                    f"unknown schema {name!r} for tenant {tenant!r}"
                )
            if version is None:
                version = max(versions)
            record = versions.get(version)
            if record is None:
                raise ServiceError(
                    f"unknown version {version} of schema {name!r} "
                    f"for tenant {tenant!r} (have {sorted(versions)})"
                )
            self._tenant_counters(tenant)["warm_plan_hits"] += 1
        return record

    def list(self, tenant: str) -> list[dict[str, object]]:
        """Every (name, versions) pair registered by *tenant* -- and only
        by *tenant*: the scoped key is the isolation boundary."""
        with self._lock:
            return [
                {"name": name, "versions": sorted(versions)}
                for (owner, name), versions in sorted(self._records.items())
                if owner == tenant
            ]

    def tenant_stats(self) -> dict[str, dict[str, int]]:
        """Per-tenant counters (registrations, warm plan hits, compiles)."""
        with self._lock:
            return {
                tenant: dict(counters)
                for tenant, counters in sorted(self._tenant_stats.items())
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(versions) for versions in self._records.values())

    def _tenant_counters(self, tenant: str) -> dict[str, int]:
        return self._tenant_stats.setdefault(
            tenant,
            {"schemas_registered": 0, "cold_compiles": 0, "warm_plan_hits": 0},
        )

    # ------------------------------------------------------------------ #
    # persistence (the PR 8 atomic-checkpoint idiom)
    # ------------------------------------------------------------------ #

    def _open_root(self, root: str) -> None:
        try:
            os.makedirs(root, exist_ok=True)
        except OSError as error:
            raise ServiceError(f"cannot open registry directory: {error}") from error
        if not os.path.isdir(root):
            raise ServiceError(f"registry path is not a directory: {root!r}")

    def _persist(self, record: SchemaRecord) -> None:
        assert self.root is not None
        directory = os.path.join(self.root, record.tenant, record.name)
        try:
            os.makedirs(directory, exist_ok=True)
            final = os.path.join(directory, f"{record.version}.graphql")
            tmp = final + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(record.sdl)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        except OSError as error:
            raise ServiceError(f"cannot persist schema version: {error}") from error

    def _reload(self) -> None:
        """Rebuild every persisted record (restart recovery).

        ``.tmp`` leftovers from a crashed write are skipped -- ``os.replace``
        guarantees a ``.graphql`` file is always a complete document.
        """
        assert self.root is not None
        loaded = 0
        for tenant in sorted(self._listdir(self.root)):
            tenant_dir = os.path.join(self.root, tenant)
            if not os.path.isdir(tenant_dir) or not _TOKEN.match(tenant):
                continue
            for name in sorted(self._listdir(tenant_dir)):
                schema_dir = os.path.join(tenant_dir, name)
                if not os.path.isdir(schema_dir) or not _TOKEN.match(name):
                    continue
                for filename in sorted(self._listdir(schema_dir)):
                    stem, ext = os.path.splitext(filename)
                    if ext != ".graphql" or not stem.isdigit():
                        continue
                    path = os.path.join(schema_dir, filename)
                    with open(path, encoding="utf-8") as handle:
                        sdl = handle.read()
                    schema = parse_schema(sdl, check=True)
                    record = SchemaRecord(
                        tenant=tenant,
                        name=name,
                        version=int(stem),
                        sdl=sdl,
                        schema=schema,
                        plan=ValidationPlan(schema),
                        sat_cache=SatCache(schema),
                    )
                    self._records.setdefault((tenant, name), {})[
                        record.version
                    ] = record
                    self._tenant_counters(tenant)["cold_compiles"] += 1
                    loaded += 1
        if loaded:
            obs.count("service.reloaded_schemas", loaded)

    @staticmethod
    def _listdir(path: str) -> list[str]:
        try:
            return os.listdir(path)
        except OSError as error:
            raise ServiceError(f"cannot read registry directory: {error}") from error
