"""Object-type satisfiability: the decision engines of Section 6.2.

:class:`SatisfiabilityChecker` offers:

* ``check_type`` -- a polynomial lint pre-pass followed, when needed, by the
  paper's procedure (Theorem 3): translate the schema to an ALCQI TBox and
  run the tableau.  The pre-pass runs the ``unsat``-class rules of
  :mod:`repro.lint`; when one proves the type unsatisfiable (Example 6.1's
  conflicting-cardinality class and its dead-required-target closure), the
  checker returns UNSAT immediately, carrying the lint diagnostic, and the
  tableau is never even constructed.  The tableau decides satisfiability
  over *unrestricted* (possibly infinite) models; the pre-pass is sound for
  exactly that semantics, so the two never disagree.
* ``check_type_finite`` -- bounded search for an actual witness Property
  Graph.  Property Graphs are finite, so this is the semantics the paper's
  Definition of satisfiability literally asks for; ALCQI lacks the finite
  model property, and the two engines can diverge on schemas that force
  infinite models (the paper's diagram (b); see EXPERIMENTS.md).
* ``check_field`` -- edge-definition satisfiability via the paper's §6.2
  reduction: an edge definition (t, f) is populatable iff the concept
  ``t ⊓ ∃f.basetype(type_S(t, f))`` is satisfiable.
* ``check_schema`` -- the whole-schema soundness report the paper motivates
  ("every part of the schema can be populated").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dl.concepts import And, Exists, Name, Role
from ..dl.tableau import Tableau
from ..dl.translate import schema_to_tbox
from ..errors import BudgetExhaustedError, BudgetReason
from ..lint.diagnostics import Diagnostic
from ..lint.engine import unsat_diagnostics
from .bounded import BoundedModelFinder, BoundedSearchResult

if TYPE_CHECKING:  # pragma: no cover
    from ..dl.tbox import TBox
    from ..pg.model import PropertyGraph
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

_ON_BUDGET = ("unknown", "error")


@dataclass
class TypeSatisfiability:
    """The verdicts for one object type.

    ``tableau_satisfiable`` is three-valued: True/False for a decided
    SAT/UNSAT, None when an execution budget ran out first -- the
    structured cause is then in ``reason`` and ``decided_by`` is
    ``"budget"``.  ``decided_by`` otherwise records which engine produced
    the verdict: ``"lint"`` when a polynomial unsat pre-check proved the
    type unsatisfiable (in which case ``diagnostic`` holds the finding and
    no tableau ran), or ``"tableau"`` for the Theorem-3 decision.
    """

    type_name: str
    tableau_satisfiable: bool | None
    bounded: BoundedSearchResult | None = None
    decided_by: str = "tableau"
    diagnostic: Diagnostic | None = None
    reason: "BudgetReason | None" = None

    @property
    def verdict(self) -> str:
        """``"sat"``, ``"unsat"`` or ``"unknown"`` (budget exhausted)."""
        if self.tableau_satisfiable is None:
            return "unknown"
        return "sat" if self.tableau_satisfiable else "unsat"

    @property
    def witness(self) -> "PropertyGraph | None":
        return self.bounded.witness if self.bounded else None

    @property
    def finitely_satisfiable(self) -> bool | None:
        """True when a finite witness exists, None when unknown (the bounded
        search failed -- or never completed -- but the tableau says
        satisfiable, or the whole check ran out of budget), False when the
        tableau proves unsatisfiability (no models at all)."""
        if self.bounded is not None and self.bounded.satisfiable:
            return True
        if self.tableau_satisfiable is False:
            return False
        return None


@dataclass
class SchemaSatisfiabilityReport:
    """Per-element satisfiability of a whole schema (§6.2's soundness check)."""

    types: dict[str, TypeSatisfiability] = field(default_factory=dict)
    fields: dict[tuple[str, str], bool | None] = field(default_factory=dict)

    @property
    def unsatisfiable_types(self) -> list[str]:
        return sorted(
            name
            for name, verdict in self.types.items()
            if verdict.tableau_satisfiable is False
        )

    @property
    def unknown_types(self) -> list[str]:
        """Types whose check ran out of budget (no verdict either way)."""
        return sorted(
            name
            for name, verdict in self.types.items()
            if verdict.tableau_satisfiable is None
        )

    @property
    def unsatisfiable_fields(self) -> list[tuple[str, str]]:
        return sorted(key for key, ok in self.fields.items() if ok is False)

    @property
    def unknown_fields(self) -> list[tuple[str, str]]:
        return sorted(key for key, ok in self.fields.items() if ok is None)

    @property
    def sound(self) -> bool:
        """Every object type and every relationship definition is *proven*
        populatable -- budget-exhausted (unknown) elements count against
        soundness because nothing was proven about them."""
        return not (
            self.unsatisfiable_types
            or self.unsatisfiable_fields
            or self.unknown_types
            or self.unknown_fields
        )

    def summary(self) -> str:
        if self.sound:
            return f"sound: all {len(self.types)} object types populatable"
        parts = []
        if self.unsatisfiable_types:
            parts.append("unsatisfiable types: " + ", ".join(self.unsatisfiable_types))
        if self.unsatisfiable_fields:
            parts.append(
                "unpopulatable edges: "
                + ", ".join(f"{t}.{f}" for t, f in self.unsatisfiable_fields)
            )
        if self.unknown_types:
            parts.append(
                "undecided (budget): " + ", ".join(self.unknown_types)
            )
        if self.unknown_fields:
            parts.append(
                "undecided edges (budget): "
                + ", ".join(f"{t}.{f}" for t, f in self.unknown_fields)
            )
        return "; ".join(parts)


class SatisfiabilityChecker:
    """Object-type satisfiability over one (possibly inconsistent) schema."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        max_nodes: int = 5000,
        bounded_max_nodes: int = 4,
        lint_precheck: bool = True,
        budget: "Budget | None" = None,
        on_budget: str = "unknown",
    ) -> None:
        """``budget`` is a *template*: every ``check_type``/``check_field``
        call runs under a fresh :meth:`~repro.resilience.Budget.renew` of
        it, so one pathological type cannot starve the rest of a
        ``check_schema`` sweep.  ``on_budget`` decides what exhaustion
        yields: ``"unknown"`` (default) returns a typed UNKNOWN verdict
        with the structured reason attached, ``"error"`` re-raises the
        :class:`~repro.errors.BudgetExhaustedError`.
        """
        if on_budget not in _ON_BUDGET:
            raise ValueError(
                f"unknown on_budget policy {on_budget!r}; expected one of {_ON_BUDGET}"
            )
        self.schema = schema
        self.bounded_max_nodes = bounded_max_nodes
        self.lint_precheck = lint_precheck
        self.budget = budget
        self.on_budget = on_budget
        self._max_nodes = max_nodes
        self._tbox: "TBox | None" = None
        self._tableau: Tableau | None = None
        self._lint_verdicts: dict[str, Diagnostic] | None = None
        self._finder = BoundedModelFinder(schema)

    # ------------------------------------------------------------------ #
    # lazy components: the lint pre-pass can decide UNSAT without either
    # ------------------------------------------------------------------ #

    @property
    def tbox(self) -> "TBox":
        """The ALCQI translation, built on first tableau use."""
        if self._tbox is None:
            self._tbox = schema_to_tbox(self.schema)
        return self._tbox

    @property
    def tableau(self) -> Tableau:
        """The Theorem-3 tableau, built on first use."""
        if self._tableau is None:
            self._tableau = Tableau(self.tbox, max_nodes=self._max_nodes)
        return self._tableau

    def lint_verdict(self, object_type: str) -> Diagnostic | None:
        """The pre-pass verdict: a diagnostic proving unsatisfiability, or None.

        Always available (regardless of ``lint_precheck``) so callers can ask
        *why* a type is unsatisfiable even when they want tableau decisions.
        """
        if self._lint_verdicts is None:
            self._lint_verdicts = unsat_diagnostics(self.schema)
        return self._lint_verdicts.get(object_type)

    def _fresh_budget(self, override: "Budget | None") -> "Budget | None":
        """The per-call budget: an explicit override as-is, else a renewed
        copy of the template (fresh deadline/counters per check)."""
        if override is not None:
            return override
        return self.budget.renew() if self.budget is not None else None

    # ------------------------------------------------------------------ #

    def is_satisfiable(
        self, object_type: str, budget: "Budget | None" = None
    ) -> bool:
        """The Section-6.2 decision: polynomial pre-checks, then Theorem 3.

        When the lint pre-pass proves the type unsatisfiable the tableau is
        bypassed (and never constructed); otherwise the tableau decides.
        A boolean cannot express UNKNOWN, so budget exhaustion always
        raises here regardless of ``on_budget``; use :meth:`check_type`
        for the graceful three-valued verdict.
        """
        if self.lint_precheck and self.lint_verdict(object_type) is not None:
            return False
        return self.tableau.is_satisfiable(
            Name(object_type), budget=self._fresh_budget(budget)
        )

    def check_type(
        self,
        object_type: str,
        find_witness: bool = True,
        budget: "Budget | None" = None,
    ) -> TypeSatisfiability:
        """The full verdict for one object type.

        Runs the unsat-class lint rules first; a hit yields an immediate
        UNSAT verdict with ``decided_by="lint"`` and the proving diagnostic
        attached.  Otherwise falls back to the tableau (plus the bounded
        witness search when requested).  Under an exhausted budget the
        result is a typed UNKNOWN (``verdict == "unknown"``, structured
        ``reason``) -- never a wrong SAT/UNSAT -- unless
        ``on_budget="error"`` asked for the exception.
        """
        if self.lint_precheck:
            diagnostic = self.lint_verdict(object_type)
            if diagnostic is not None:
                return TypeSatisfiability(
                    object_type,
                    tableau_satisfiable=False,
                    decided_by="lint",
                    diagnostic=diagnostic,
                )
        run_budget = self._fresh_budget(budget)
        try:
            tableau_verdict = self.tableau.is_satisfiable(
                Name(object_type), budget=run_budget
            )
        except BudgetExhaustedError as stop:
            if self.on_budget == "error":
                raise
            return TypeSatisfiability(
                object_type,
                tableau_satisfiable=None,
                decided_by="budget",
                reason=stop.reason,
            )
        bounded = None
        if find_witness and tableau_verdict:
            bounded = self._finder.find_model(
                object_type, self.bounded_max_nodes, budget=run_budget
            )
        return TypeSatisfiability(object_type, tableau_verdict, bounded)

    def check_type_finite(
        self,
        object_type: str,
        max_nodes: int | None = None,
        budget: "Budget | None" = None,
    ) -> BoundedSearchResult:
        """Finite-model search only (the paper's literal semantics)."""
        return self._finder.find_model(
            object_type,
            max_nodes or self.bounded_max_nodes,
            budget=self._fresh_budget(budget),
        )

    def check_field(
        self, type_name: str, field_name: str, budget: "Budget | None" = None
    ) -> bool | None:
        """§6.2: is the edge definition (t, f) populatable?

        Equivalent to adding ``@required`` to the field and asking whether
        the declaring type remains satisfiable: the concept
        ``t ⊓ ∃f.basetype`` must be satisfiable.  Returns None (unknown)
        when the budget runs out under ``on_budget="unknown"``.
        """
        field_def = self.schema.field(type_name, field_name)
        if field_def is None or field_def.is_attribute:
            raise ValueError(f"{type_name}.{field_name} is not a relationship definition")
        if self.lint_precheck and self.schema.is_object_type(type_name):
            if self.lint_verdict(type_name) is not None:
                return False  # the declaring type itself is unpopulatable
        concept = And(
            (
                Name(type_name),
                Exists(Role(field_name), Name(field_def.type.base)),
            )
        )
        try:
            return self.tableau.is_satisfiable(
                concept, budget=self._fresh_budget(budget)
            )
        except BudgetExhaustedError:
            if self.on_budget == "error":
                raise
            return None

    def check_schema(self, find_witnesses: bool = False) -> SchemaSatisfiabilityReport:
        """Check every object type and every relationship definition."""
        report = SchemaSatisfiabilityReport()
        for type_name in sorted(self.schema.object_types):
            report.types[type_name] = self.check_type(
                type_name, find_witness=find_witnesses
            )
        for type_name, field_name, field_def in self.schema.field_declarations():
            if field_def.is_relationship:
                report.fields[(type_name, field_name)] = self.check_field(
                    type_name, field_name
                )
        return report
