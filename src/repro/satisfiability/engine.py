"""Object-type satisfiability: the decision engines of Section 6.2.

:class:`SatisfiabilityChecker` offers:

* ``check_type`` -- a polynomial lint pre-pass followed, when needed, by the
  paper's procedure (Theorem 3): translate the schema to an ALCQI TBox and
  run the tableau.  The pre-pass runs the ``unsat``-class rules of
  :mod:`repro.lint`; when one proves the type unsatisfiable (Example 6.1's
  conflicting-cardinality class and its dead-required-target closure), the
  checker returns UNSAT immediately, carrying the lint diagnostic, and the
  tableau is never even constructed.  The tableau decides satisfiability
  over *unrestricted* (possibly infinite) models; the pre-pass is sound for
  exactly that semantics, so the two never disagree.
* ``check_type_finite`` -- bounded search for an actual witness Property
  Graph.  Property Graphs are finite, so this is the semantics the paper's
  Definition of satisfiability literally asks for; ALCQI lacks the finite
  model property, and the two engines can diverge on schemas that force
  infinite models (the paper's diagram (b); see EXPERIMENTS.md).
* ``check_field`` -- edge-definition satisfiability via the paper's §6.2
  reduction: an edge definition (t, f) is populatable iff the concept
  ``t ⊓ ∃f.basetype(type_S(t, f))`` is satisfiable.
* ``check_schema`` -- the whole-schema soundness report the paper motivates
  ("every part of the schema can be populated").  Since PR 4 this is a
  *portfolio* engine (:mod:`repro.satisfiability.portfolio`): per-type work
  units batched into single tableau searches, fanned over the executor
  ladder (``jobs=``/``engine=``), optionally racing the tableau against the
  bounded finder, with verdicts memoized in a schema-keyed
  :class:`~repro.satisfiability.cache.SatCache`.  ``engine="serial"``
  preserves the original element-by-element loop; all engines agree on
  every verdict, and the deterministic engines produce byte-identical
  reports for any ``jobs``.

Checker instances are cheap: the tableau and the bounded finder are built
lazily *per thread* (a tableau's completion-tree state is not shareable
across concurrent checks), all threads share one TBox, one lint pre-pass
and one :class:`~repro.satisfiability.cache.SatCache`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .. import obs
from ..dl.concepts import And, Concept, Exists, Name, Role
from ..dl.tableau import Tableau
from ..dl.translate import schema_to_tbox
from ..errors import BudgetExhaustedError, BudgetReason
from ..lint.diagnostics import Diagnostic
from ..lint.engine import unsat_diagnostics
from .bounded import BoundedModelFinder, BoundedSearchResult
from .cache import SatCache, sat_cache_for

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis import SatPreVerdicts
    from ..dl.tbox import TBox
    from ..pg.model import PropertyGraph
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema

_ON_BUDGET = ("unknown", "error")


def profile_from_registry(
    registry: "obs.MetricsRegistry", engine: str, executor: str, jobs: int
) -> dict:
    """Derive the ``last_profile`` dict from a per-run metrics registry.

    Every ``check_schema`` run records its unit count and per-engine win
    counts into a private :class:`~repro.obs.MetricsRegistry`
    (``sat.units``, ``sat.wins.<engine>``); this renders that registry in
    the historical ``last_profile`` shape -- the JSON keys ``engine``,
    ``executor``, ``jobs``, ``units`` and ``wins`` are frozen by golden
    tests, so profiling surfaces stay backward-compatible while the
    registry is the single source of truth.
    """
    snapshot = registry.snapshot()
    prefix = "sat.wins."
    wins = {
        name[len(prefix):]: int(value)
        for name, value in snapshot["counters"].items()
        if name.startswith(prefix)
    }
    return {
        "engine": engine,
        "executor": executor,
        "jobs": jobs,
        "units": int(snapshot["counters"].get("sat.units", 0)),
        "wins": wins,
    }


def record_report_outcomes(report: "SchemaSatisfiabilityReport") -> None:
    """Count per-element verdicts of one ``check_schema`` run into the
    active metrics registry (``sat.types.sat`` / ``sat.fields.unknown`` /
    ...).  No-op when observation is off."""
    observation = obs.active()
    if observation is None or observation.registry is None:
        return
    registry = observation.registry
    for verdict in report.types.values():
        registry.count(f"sat.types.{verdict.verdict}")
    for ok in report.fields.values():
        outcome = "sat" if ok else ("unsat" if ok is False else "unknown")
        registry.count(f"sat.fields.{outcome}")


@dataclass
class TypeSatisfiability:
    """The verdicts for one object type.

    ``tableau_satisfiable`` is three-valued: True/False for a decided
    SAT/UNSAT, None when an execution budget ran out first -- the
    structured cause is then in ``reason`` and ``decided_by`` is
    ``"budget"``.  ``decided_by`` otherwise records which engine produced
    the verdict: ``"lint"`` when a polynomial unsat pre-check proved the
    type unsatisfiable (in which case ``diagnostic`` holds the finding and
    no tableau ran), or ``"tableau"`` for the Theorem-3 decision.
    """

    type_name: str
    tableau_satisfiable: bool | None
    bounded: BoundedSearchResult | None = None
    decided_by: str = "tableau"
    diagnostic: Diagnostic | None = None
    reason: "BudgetReason | None" = None

    @property
    def verdict(self) -> str:
        """``"sat"``, ``"unsat"`` or ``"unknown"`` (budget exhausted)."""
        if self.tableau_satisfiable is None:
            return "unknown"
        return "sat" if self.tableau_satisfiable else "unsat"

    @property
    def witness(self) -> "PropertyGraph | None":
        return self.bounded.witness if self.bounded else None

    @property
    def finitely_satisfiable(self) -> bool | None:
        """True when a finite witness exists, None when unknown (the bounded
        search failed -- or never completed -- but the tableau says
        satisfiable, or the whole check ran out of budget), False when the
        tableau proves unsatisfiability (no models at all)."""
        if self.bounded is not None and self.bounded.satisfiable:
            return True
        if self.tableau_satisfiable is False:
            return False
        return None


@dataclass
class SchemaSatisfiabilityReport:
    """Per-element satisfiability of a whole schema (§6.2's soundness check)."""

    types: dict[str, TypeSatisfiability] = field(default_factory=dict)
    fields: dict[tuple[str, str], bool | None] = field(default_factory=dict)

    @property
    def unsatisfiable_types(self) -> list[str]:
        return sorted(
            name
            for name, verdict in self.types.items()
            if verdict.tableau_satisfiable is False
        )

    @property
    def unknown_types(self) -> list[str]:
        """Types whose check ran out of budget (no verdict either way)."""
        return sorted(
            name
            for name, verdict in self.types.items()
            if verdict.tableau_satisfiable is None
        )

    @property
    def unsatisfiable_fields(self) -> list[tuple[str, str]]:
        return sorted(key for key, ok in self.fields.items() if ok is False)

    @property
    def unknown_fields(self) -> list[tuple[str, str]]:
        return sorted(key for key, ok in self.fields.items() if ok is None)

    @property
    def sound(self) -> bool:
        """Every object type and every relationship definition is *proven*
        populatable -- budget-exhausted (unknown) elements count against
        soundness because nothing was proven about them."""
        return not (
            self.unsatisfiable_types
            or self.unsatisfiable_fields
            or self.unknown_types
            or self.unknown_fields
        )

    def to_json(self) -> dict:
        """A canonical, JSON-serializable rendering of every verdict.

        Deterministic engines produce byte-identical dumps for any ``jobs``
        / executor combination -- the portfolio determinism tests serialize
        reports through this and compare the bytes.
        """
        types = {}
        for name in sorted(self.types):
            verdict = self.types[name]
            entry: dict = {
                "verdict": verdict.verdict,
                "decided_by": verdict.decided_by,
            }
            if verdict.diagnostic is not None:
                entry["diagnostic"] = verdict.diagnostic.code
            if verdict.reason is not None:
                entry["reason"] = str(verdict.reason)
            if verdict.bounded is not None:
                bounded = verdict.bounded
                entry["bounded"] = {
                    "satisfiable": bounded.satisfiable,
                    "bound": bounded.bound,
                    "witness_size": (
                        len(bounded.witness) if bounded.witness is not None else None
                    ),
                }
            types[name] = entry
        fields = {
            f"{type_name}.{field_name}": ok
            for (type_name, field_name), ok in sorted(self.fields.items())
        }
        return {"sound": self.sound, "types": types, "fields": fields}

    def summary(self) -> str:
        if self.sound:
            return f"sound: all {len(self.types)} object types populatable"
        parts = []
        if self.unsatisfiable_types:
            parts.append("unsatisfiable types: " + ", ".join(self.unsatisfiable_types))
        if self.unsatisfiable_fields:
            parts.append(
                "unpopulatable edges: "
                + ", ".join(f"{t}.{f}" for t, f in self.unsatisfiable_fields)
            )
        if self.unknown_types:
            parts.append(
                "undecided (budget): " + ", ".join(self.unknown_types)
            )
        if self.unknown_fields:
            parts.append(
                "undecided edges (budget): "
                + ", ".join(f"{t}.{f}" for t, f in self.unknown_fields)
            )
        return "; ".join(parts)


class SatisfiabilityChecker:
    """Object-type satisfiability over one (possibly inconsistent) schema."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        max_nodes: int = 5000,
        bounded_max_nodes: int = 4,
        lint_precheck: bool = True,
        budget: "Budget | None" = None,
        on_budget: str = "unknown",
        cache: "bool | SatCache" = True,
        analysis_precheck: bool = True,
    ) -> None:
        """``budget`` is a *template*: every ``check_type``/``check_field``
        call runs under a fresh :meth:`~repro.resilience.Budget.renew` of
        it, so one pathological type cannot starve the rest of a
        ``check_schema`` sweep.  ``on_budget`` decides what exhaustion
        yields: ``"unknown"`` (default) returns a typed UNKNOWN verdict
        with the structured reason attached, ``"error"`` re-raises the
        :class:`~repro.errors.BudgetExhaustedError`.

        ``cache`` controls verdict memoization: True (default) attaches the
        schema-keyed shared :func:`~repro.satisfiability.cache.sat_cache_for`
        cache (verdicts replay across calls and checker instances), False
        disables caching entirely, and an explicit
        :class:`~repro.satisfiability.cache.SatCache` uses that instance.
        A checker given a custom ``budget`` template gets a *private* cache
        under ``cache=True``: the caller is studying how answers degrade
        under that budget, and a registry hit decided under somebody else's
        budget would bypass exactly the limit being imposed.

        ``analysis_precheck`` enables the dataflow-analysis pre-verdict feed
        (:func:`repro.analysis.sat_preverdicts`): sound SAT *and* UNSAT
        verdicts proved by the cardinality-interval fixpoints, consulted
        after the cache and the lint pre-pass but before any tableau is
        built.  Verdicts decided this way are reported exactly as the
        tableau would report them (``decided_by="tableau"``, no
        diagnostic), so reports stay byte-identical with the feed on or
        off; only the profile/obs accounting records the skip.  The feed
        is automatically disabled for budgeted checkers -- budget studies
        measure how the engines degrade, and an instant fixpoint answer
        would bypass the limit being imposed.
        """
        if on_budget not in _ON_BUDGET:
            raise ValueError(
                f"unknown on_budget policy {on_budget!r}; expected one of {_ON_BUDGET}"
            )
        self.schema = schema
        self.bounded_max_nodes = bounded_max_nodes
        self.lint_precheck = lint_precheck
        self.analysis_precheck = analysis_precheck
        self.budget = budget
        self.on_budget = on_budget
        self._max_nodes = max_nodes
        self._tbox: "TBox | None" = None
        self._tbox_lock = threading.Lock()
        self._lint_verdicts: dict[str, Diagnostic] | None = None
        self._analysis_verdicts: "SatPreVerdicts | None" = None
        self._analysis_ready = False
        self._analysis_lock = threading.Lock()
        if cache is True:
            self.cache: "SatCache | None" = (
                SatCache(schema) if budget is not None else sat_cache_for(schema)
            )
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        #: profile of the last ``check_schema`` run (engine win counts,
        #: executor, unit count) -- filled by the portfolio driver.
        self.last_profile: dict | None = None
        #: worker-recovery events of the last portfolio ``check_schema``.
        self.last_recovery_log: list[dict] = []
        self._field_concepts: dict[tuple[str, str], Concept] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # lazy components: the lint pre-pass can decide UNSAT without either.
    # The tableau and the bounded finder hold per-search mutable state, so
    # they are built per *thread* (fan-out and racing run concurrent
    # checks); the TBox, lint verdicts and SatCache are shared.
    # ------------------------------------------------------------------ #

    @property
    def tbox(self) -> "TBox":
        """The ALCQI translation, built on first tableau use."""
        if self._tbox is None:
            with self._tbox_lock:
                if self._tbox is None:
                    self._tbox = schema_to_tbox(self.schema)
        return self._tbox

    @property
    def tableau(self) -> Tableau:
        """This thread's Theorem-3 tableau, built on first use (all threads
        share one TBox and, through ``label_cache``, one set of proved
        root-label verdicts)."""
        tableau = getattr(self._local, "tableau", None)
        if tableau is None:
            tableau = Tableau(self.tbox, max_nodes=self._max_nodes)
            if self.cache is not None:
                tableau.label_cache = self.cache.labels
            self._local.tableau = tableau
        return tableau

    @property
    def _finder(self) -> BoundedModelFinder:
        """This thread's bounded finite-model finder, built on first use."""
        finder = getattr(self._local, "finder", None)
        if finder is None:
            finder = BoundedModelFinder(self.schema)
            self._local.finder = finder
        return finder

    def lint_verdict(self, object_type: str) -> Diagnostic | None:
        """The pre-pass verdict: a diagnostic proving unsatisfiability, or None.

        Always available (regardless of ``lint_precheck``) so callers can ask
        *why* a type is unsatisfiable even when they want tableau decisions.
        """
        if self._lint_verdicts is None:
            self._lint_verdicts = unsat_diagnostics(self.schema)
        return self._lint_verdicts.get(object_type)

    def analysis_verdicts(self) -> "SatPreVerdicts | None":
        """The dataflow-analysis pre-verdict feed, or None when disabled.

        Computed lazily once per checker; None when ``analysis_precheck``
        is off or the checker carries a budget template (budget studies
        must exercise the real engines).
        """
        if not self.analysis_precheck or self.budget is not None:
            return None
        if not self._analysis_ready:
            from ..analysis import sat_preverdicts

            with self._analysis_lock:
                if not self._analysis_ready:
                    self._analysis_verdicts = sat_preverdicts(self.schema)
                    self._analysis_ready = True
        return self._analysis_verdicts

    def _analysis_type_verdict(
        self, object_type: str, budget: "Budget | None"
    ) -> bool | None:
        """The feed's verdict for one type, None when undecided/disabled.

        A caller-supplied per-call budget also bypasses the feed: such
        calls are explicitly studying engine behaviour under that budget.
        """
        if budget is not None:
            return None
        verdicts = self.analysis_verdicts()
        if verdicts is None:
            return None
        verdict = verdicts.types.get(object_type)
        if verdict is not None:
            obs.count("sat.analysis.type_hits")
        return verdict

    def _fresh_budget(self, override: "Budget | None") -> "Budget | None":
        """The per-call budget: an explicit override as-is, else a renewed
        copy of the template (fresh deadline/counters per check)."""
        if override is not None:
            return override
        return self.budget.renew() if self.budget is not None else None

    # ------------------------------------------------------------------ #

    def is_satisfiable(
        self, object_type: str, budget: "Budget | None" = None
    ) -> bool:
        """The Section-6.2 decision: polynomial pre-checks, then Theorem 3.

        When the lint pre-pass proves the type unsatisfiable the tableau is
        bypassed (and never constructed); otherwise the tableau decides.
        A boolean cannot express UNKNOWN, so budget exhaustion always
        raises here regardless of ``on_budget``; use :meth:`check_type`
        for the graceful three-valued verdict.
        """
        if self.lint_precheck and self.lint_verdict(object_type) is not None:
            return False
        analysis = self._analysis_type_verdict(object_type, budget)
        if analysis is not None:
            return analysis
        return self.tableau.is_satisfiable(
            Name(object_type), budget=self._fresh_budget(budget)
        )

    def check_type(
        self,
        object_type: str,
        find_witness: bool = True,
        budget: "Budget | None" = None,
    ) -> TypeSatisfiability:
        """The full verdict for one object type.

        Runs the unsat-class lint rules first; a hit yields an immediate
        UNSAT verdict with ``decided_by="lint"`` and the proving diagnostic
        attached.  Otherwise falls back to the tableau (plus the bounded
        witness search when requested).  Under an exhausted budget the
        result is a typed UNKNOWN (``verdict == "unknown"``, structured
        ``reason``) -- never a wrong SAT/UNSAT -- unless
        ``on_budget="error"`` asked for the exception.

        Decided verdicts are memoized in the attached
        :class:`~repro.satisfiability.cache.SatCache`; a later call (from
        any checker over the same schema) replays the stored verdict,
        re-attaching a bounded witness per the caller's ``find_witness``.
        """
        with obs.span("sat.check_type", type=object_type):
            return self._check_type(object_type, find_witness, budget)

    def _check_type(
        self,
        object_type: str,
        find_witness: bool,
        budget: "Budget | None",
    ) -> TypeSatisfiability:
        cache = self.cache
        if cache is not None:
            cached = cache.get_type(object_type)
            if cached is not None:
                if find_witness and cached.tableau_satisfiable:
                    cached.bounded = self._bounded_result(
                        object_type, self._fresh_budget(budget)
                    )
                return cached
        if self.lint_precheck:
            diagnostic = self.lint_verdict(object_type)
            if diagnostic is not None:
                verdict = TypeSatisfiability(
                    object_type,
                    tableau_satisfiable=False,
                    decided_by="lint",
                    diagnostic=diagnostic,
                )
                if cache is not None:
                    cache.put_type(verdict)
                return verdict
        analysis = self._analysis_type_verdict(object_type, budget)
        if analysis is not None:
            # report exactly what the tableau would have said: the feed is
            # differentially verified against it, so decided_by stays
            # "tableau" and reports are byte-identical with the feed off
            bounded = None
            if find_witness and analysis:
                bounded = self._bounded_result(object_type, None)
            verdict = TypeSatisfiability(object_type, analysis, bounded)
            if cache is not None:
                cache.put_type(verdict)
            return verdict
        run_budget = self._fresh_budget(budget)
        try:
            tableau_verdict = self.tableau.is_satisfiable(
                Name(object_type), budget=run_budget
            )
        except BudgetExhaustedError as stop:
            if self.on_budget == "error":
                raise
            return TypeSatisfiability(
                object_type,
                tableau_satisfiable=None,
                decided_by="budget",
                reason=stop.reason,
            )
        bounded = None
        if find_witness and tableau_verdict:
            bounded = self._bounded_result(object_type, run_budget)
        verdict = TypeSatisfiability(object_type, tableau_verdict, bounded)
        if cache is not None:
            cache.put_type(verdict)
        return verdict

    def _bounded_result(
        self, object_type: str, budget: "Budget | None"
    ) -> BoundedSearchResult:
        """The bounded witness search at the default bound, memoized."""
        cache = self.cache
        if cache is not None:
            cached = cache.get_bounded(object_type, self.bounded_max_nodes)
            if cached is not None:
                return cached
        result = self._finder.find_model(
            object_type, self.bounded_max_nodes, budget=budget
        )
        if cache is not None:
            cache.put_bounded(object_type, self.bounded_max_nodes, result)
        return result

    def check_type_finite(
        self,
        object_type: str,
        max_nodes: int | None = None,
        budget: "Budget | None" = None,
    ) -> BoundedSearchResult:
        """Finite-model search only (the paper's literal semantics)."""
        return self._finder.find_model(
            object_type,
            max_nodes or self.bounded_max_nodes,
            budget=self._fresh_budget(budget),
        )

    def check_field(
        self, type_name: str, field_name: str, budget: "Budget | None" = None
    ) -> bool | None:
        """§6.2: is the edge definition (t, f) populatable?

        Equivalent to adding ``@required`` to the field and asking whether
        the declaring type remains satisfiable: the concept
        ``t ⊓ ∃f.basetype`` must be satisfiable.  Returns None (unknown)
        when the budget runs out under ``on_budget="unknown"``.  Decided
        verdicts are memoized like :meth:`check_type`'s.
        """
        field_def = self.schema.field(type_name, field_name)
        if field_def is None or field_def.is_attribute:
            raise ValueError(f"{type_name}.{field_name} is not a relationship definition")
        key = (type_name, field_name)
        cache = self.cache
        if cache is not None:
            cached = cache.get_field(key)
            if cached is not None:
                return cached
        if self.lint_precheck and self.schema.is_object_type(type_name):
            if self.lint_verdict(type_name) is not None:
                if cache is not None:
                    cache.put_field(key, False)
                return False  # the declaring type itself is unpopulatable
        if budget is None:
            verdicts = self.analysis_verdicts()
            if verdicts is not None and key in verdicts.fields:
                analysis = verdicts.fields[key]
                obs.count("sat.analysis.field_hits")
                if cache is not None:
                    cache.put_field(key, analysis)
                return analysis
        concept = self._field_concept(type_name, field_name, field_def.type.base)
        try:
            verdict = self.tableau.is_satisfiable(
                concept, budget=self._fresh_budget(budget)
            )
        except BudgetExhaustedError:
            if self.on_budget == "error":
                raise
            return None
        if cache is not None:
            cache.put_field(key, verdict)
        return verdict

    def _field_concept(
        self, type_name: str, field_name: str, base: str
    ) -> Concept:
        """The §6.2 edge-populatability concept, built once per field."""
        key = (type_name, field_name)
        concept = self._field_concepts.get(key)
        if concept is None:
            concept = And(
                (Name(type_name), Exists(Role(field_name), Name(base)))
            )
            self._field_concepts[key] = concept
        return concept

    def check_schema(
        self,
        find_witnesses: bool = False,
        *,
        jobs: int | None = None,
        engine: str = "portfolio",
        executor: str = "auto",
        max_retries: int = 2,
        retry_base_delay: float = 0.05,
        unit_timeout: float | None = None,
        fallback: bool = True,
    ) -> SchemaSatisfiabilityReport:
        """Check every object type and every relationship definition.

        ``engine`` selects the whole-schema strategy:

        * ``"portfolio"`` (default) -- per-type batched work units fanned
          over the executor ladder (``jobs`` workers); deterministic, so
          reports are byte-identical to ``"serial"`` for any ``jobs``.
        * ``"race"`` -- like portfolio, but each satisfiable-looking unit
          races the tableau against the bounded finite-model finder under
          one budget; first decisive verdict wins, the loser's budget is
          cancelled.  Verdicts still agree with serial; ``decided_by`` may
          differ (recorded per engine in ``last_profile``).
        * ``"serial"`` -- the original element-by-element loop.

        The remaining keywords mirror the PR 3 validation fan-out (retry
        with backoff, process→thread→serial fallback, stuck-worker
        ``unit_timeout``).  After any run, ``self.last_profile`` holds the
        executor used, unit count and per-engine win counts.
        """
        if engine == "serial":
            self.last_recovery_log = []
            # the serial sweep has no batched units and tracks no wins: its
            # profile is an empty run registry rendered in the legacy shape
            self.last_profile = profile_from_registry(
                obs.MetricsRegistry(), "serial", "serial", 1
            )
            with obs.span("sat.run", engine="serial", jobs=1):
                report = self._check_schema_serial(find_witnesses)
            record_report_outcomes(report)
            return report
        from .portfolio import run_portfolio

        return run_portfolio(
            self,
            find_witnesses=find_witnesses,
            jobs=jobs,
            engine=engine,
            executor=executor,
            max_retries=max_retries,
            retry_base_delay=retry_base_delay,
            unit_timeout=unit_timeout,
            fallback=fallback,
        )

    def _check_schema_serial(
        self, find_witnesses: bool = False
    ) -> SchemaSatisfiabilityReport:
        """The reference element-by-element sweep (``engine="serial"``)."""
        report = SchemaSatisfiabilityReport()
        for type_name in sorted(self.schema.object_types):
            report.types[type_name] = self.check_type(
                type_name, find_witness=find_witnesses
            )
        for type_name, field_name, field_def in self.schema.field_declarations():
            if field_def.is_relationship:
                report.fields[(type_name, field_name)] = self.check_field(
                    type_name, field_name
                )
        return report
