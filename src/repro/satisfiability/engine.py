"""Object-type satisfiability: the decision engines of Section 6.2.

:class:`SatisfiabilityChecker` offers:

* ``check_type`` -- the paper's procedure (Theorem 3): translate the schema
  to an ALCQI TBox and run the tableau.  This decides satisfiability over
  *unrestricted* (possibly infinite) models.
* ``check_type_finite`` -- bounded search for an actual witness Property
  Graph.  Property Graphs are finite, so this is the semantics the paper's
  Definition of satisfiability literally asks for; ALCQI lacks the finite
  model property, and the two engines can diverge on schemas that force
  infinite models (the paper's diagram (b); see EXPERIMENTS.md).
* ``check_field`` -- edge-definition satisfiability via the paper's §6.2
  reduction: an edge definition (t, f) is populatable iff the concept
  ``t ⊓ ∃f.basetype(type_S(t, f))`` is satisfiable.
* ``check_schema`` -- the whole-schema soundness report the paper motivates
  ("every part of the schema can be populated").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dl.concepts import And, Exists, Name, Role
from ..dl.tableau import Tableau
from ..dl.translate import schema_to_tbox
from .bounded import BoundedModelFinder, BoundedSearchResult

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import PropertyGraph
    from ..schema.model import GraphQLSchema


@dataclass
class TypeSatisfiability:
    """The verdicts for one object type."""

    type_name: str
    tableau_satisfiable: bool
    bounded: BoundedSearchResult | None = None

    @property
    def witness(self) -> "PropertyGraph | None":
        return self.bounded.witness if self.bounded else None

    @property
    def finitely_satisfiable(self) -> bool | None:
        """True when a finite witness exists, None when unknown (the bounded
        search failed but the tableau says satisfiable -- either the bound
        was too small or only infinite models exist), False when the
        tableau proves unsatisfiability (no models at all)."""
        if self.bounded is not None and self.bounded.satisfiable:
            return True
        if not self.tableau_satisfiable:
            return False
        return None


@dataclass
class SchemaSatisfiabilityReport:
    """Per-element satisfiability of a whole schema (§6.2's soundness check)."""

    types: dict[str, TypeSatisfiability] = field(default_factory=dict)
    fields: dict[tuple[str, str], bool] = field(default_factory=dict)

    @property
    def unsatisfiable_types(self) -> list[str]:
        return sorted(
            name
            for name, verdict in self.types.items()
            if not verdict.tableau_satisfiable
        )

    @property
    def unsatisfiable_fields(self) -> list[tuple[str, str]]:
        return sorted(key for key, ok in self.fields.items() if not ok)

    @property
    def sound(self) -> bool:
        """Every object type and every relationship definition is populatable."""
        return not self.unsatisfiable_types and not self.unsatisfiable_fields

    def summary(self) -> str:
        if self.sound:
            return f"sound: all {len(self.types)} object types populatable"
        parts = []
        if self.unsatisfiable_types:
            parts.append("unsatisfiable types: " + ", ".join(self.unsatisfiable_types))
        if self.unsatisfiable_fields:
            parts.append(
                "unpopulatable edges: "
                + ", ".join(f"{t}.{f}" for t, f in self.unsatisfiable_fields)
            )
        return "; ".join(parts)


class SatisfiabilityChecker:
    """Object-type satisfiability over one (possibly inconsistent) schema."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        max_nodes: int = 5000,
        bounded_max_nodes: int = 4,
    ) -> None:
        self.schema = schema
        self.tbox = schema_to_tbox(schema)
        self.tableau = Tableau(self.tbox, max_nodes=max_nodes)
        self.bounded_max_nodes = bounded_max_nodes
        self._finder = BoundedModelFinder(schema)

    # ------------------------------------------------------------------ #

    def is_satisfiable(self, object_type: str) -> bool:
        """The Theorem-3 decision: tableau over the ALCQI translation."""
        return self.tableau.is_satisfiable(Name(object_type))

    def check_type(
        self, object_type: str, find_witness: bool = True
    ) -> TypeSatisfiability:
        """Both verdicts for one object type (tableau + bounded witness search)."""
        tableau_verdict = self.is_satisfiable(object_type)
        bounded = None
        if find_witness and tableau_verdict:
            bounded = self._finder.find_model(object_type, self.bounded_max_nodes)
        return TypeSatisfiability(object_type, tableau_verdict, bounded)

    def check_type_finite(
        self, object_type: str, max_nodes: int | None = None
    ) -> BoundedSearchResult:
        """Finite-model search only (the paper's literal semantics)."""
        return self._finder.find_model(
            object_type, max_nodes or self.bounded_max_nodes
        )

    def check_field(self, type_name: str, field_name: str) -> bool:
        """§6.2: is the edge definition (t, f) populatable?

        Equivalent to adding ``@required`` to the field and asking whether
        the declaring type remains satisfiable: the concept
        ``t ⊓ ∃f.basetype`` must be satisfiable.
        """
        field_def = self.schema.field(type_name, field_name)
        if field_def is None or field_def.is_attribute:
            raise ValueError(f"{type_name}.{field_name} is not a relationship definition")
        concept = And(
            (
                Name(type_name),
                Exists(Role(field_name), Name(field_def.type.base)),
            )
        )
        return self.tableau.is_satisfiable(concept)

    def check_schema(self, find_witnesses: bool = False) -> SchemaSatisfiabilityReport:
        """Check every object type and every relationship definition."""
        report = SchemaSatisfiabilityReport()
        for type_name in sorted(self.schema.object_types):
            report.types[type_name] = self.check_type(
                type_name, find_witness=find_witnesses
            )
        for type_name, field_name, field_def in self.schema.field_declarations():
            if field_def.is_relationship:
                report.fields[(type_name, field_name)] = self.check_field(
                    type_name, field_name
                )
        return report
