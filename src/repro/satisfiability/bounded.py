"""Bounded (finite) model search for object-type satisfiability.

Property Graphs are finite by definition, so satisfiability in the paper's
sense is *finite* satisfiability.  This engine searches exhaustively for a
strongly-satisfying Property Graph with at most ``max_nodes`` nodes that
populates a given object type, and returns the witness graph when it finds
one.

It complements the ALCQI tableau of :mod:`repro.dl`:

* when the bounded search finds a model, the type is satisfiable (and the
  tableau must agree, since finite models are models);
* when the tableau reports UNSAT, no model of any size exists, so the
  bounded search must fail at every bound;
* when the tableau reports SAT but the bounded search keeps failing, the
  schema may require an infinite model -- ALCQI lacks the finite model
  property, and the paper's Example 6.1 diagram (b) is exactly such a case
  (see EXPERIMENTS.md).

Search strategy: enumerate label multisets of size 1..max_nodes containing
the target type; for each, collect the required-edge obligations (DS6 per
node and field, DS4 per node and @requiredForTarget site) and satisfy them
one at a time by adding justified edges, backtracking across target/source
choices; cardinality constraints (WS4/DS3/DS2) are checked on the fly, and
every candidate is confirmed with the real validator (with required scalar
properties filled in with fresh distinct values) before being returned.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..errors import BudgetExhaustedError, BudgetReason
from ..pg.model import PropertyGraph
from ..resilience import faults
from ..schema.subtype import is_named_subtype
from ..validation import sites
from ..validation.indexed import IndexedValidator

if TYPE_CHECKING:  # pragma: no cover
    from ..resilience import Budget
    from ..schema.model import GraphQLSchema


@dataclass
class BoundedSearchResult:
    """Outcome of a bounded model search.

    ``reason`` is set when the search stopped early -- the assignment cap,
    a deadline, or another budget dimension ran out before every label
    multiset up to the bound was tried.  ``satisfiable=False`` with a
    ``reason`` therefore means *unknown below the bound*, not refuted.
    """

    satisfiable: bool
    witness: PropertyGraph | None = None
    nodes_tried: int = 0
    assignments_tried: int = 0
    bound: int = 0
    reason: "BudgetReason | None" = None

    @property
    def exhausted(self) -> bool:
        """Did the search stop on a budget rather than completing?"""
        return self.reason is not None


@dataclass(frozen=True)
class _Obligation:
    """One required edge: ``kind`` is "out" (DS6: node needs an outgoing
    f-edge) or "in" (DS4: node needs an incoming f-edge from a source
    below the declaring type)."""

    kind: str
    node: int
    field_name: str
    declaring_type: str


class BoundedModelFinder:
    """Exhaustive finite-model search up to a node bound."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        max_assignments: int = 20000,
        budget: "Budget | None" = None,
    ) -> None:
        self.schema = schema
        self.max_assignments = max_assignments
        self.budget = budget
        self._validator = IndexedValidator(schema)
        self._required_edge = sites.required_edge_sites(schema)
        self._required_ft = sites.required_for_target_sites(schema)
        self._no_loops = {
            (site.type_name, site.field_name) for site in sites.no_loops_sites(schema)
        }

    def find_model(
        self,
        object_type: str,
        max_nodes: int = 4,
        budget: "Budget | None" = None,
        require_fields: tuple[str, ...] = (),
    ) -> BoundedSearchResult:
        """Search for a strongly-satisfying graph with a node of *object_type*.

        Never raises on exhaustion: the search is best-effort below a bound
        by construction, so a tripped budget (deadline, expansion count, or
        the historical assignment cap) is reported as ``result.reason``.

        ``require_fields`` demands that the witnessing node additionally
        carry an outgoing edge for each named relationship field.  A found
        witness then decides the type *and* every listed edge definition in
        one search -- the bounded half of a portfolio race over a batched
        per-type work unit.
        """
        result = BoundedSearchResult(satisfiable=False, bound=max_nodes)
        if object_type not in self.schema.object_types:
            return result
        budget = budget if budget is not None else self.budget
        other_types = sorted(self.schema.object_types)
        try:
            for size in range(1, max_nodes + 1):
                for extra in itertools.combinations_with_replacement(
                    other_types, size - 1
                ):
                    result.assignments_tried += 1
                    if result.assignments_tried > self.max_assignments:
                        result.reason = BudgetReason(
                            "assignments",
                            self.max_assignments,
                            result.assignments_tried,
                            "satisfiability.bounded",
                        )
                        return result
                    if budget is not None:
                        budget.charge_expansions(1, site="satisfiability.bounded")
                        budget.check_deadline(site="satisfiability.bounded")
                    faults.fault_point(
                        "bounded.assignment", assignment=result.assignments_tried
                    )
                    labels = (object_type,) + extra
                    witness = self._try_labels(labels, require_fields)
                    if witness is not None:
                        result.satisfiable = True
                        result.witness = witness
                        return result
        except BudgetExhaustedError as stop:
            result.reason = stop.reason
        return result

    # ------------------------------------------------------------------ #

    def _try_labels(
        self, labels: tuple[str, ...], require_fields: tuple[str, ...] = ()
    ) -> PropertyGraph | None:
        obligations = self._collect_obligations(labels)
        met = {
            (obligation.kind, obligation.node, obligation.field_name)
            for obligation in obligations
        }
        for field_name in require_fields:
            # node 0 carries the target type; the edge-search machinery
            # treats the extra demand exactly like a DS6 obligation
            if ("out", 0, field_name) not in met:
                obligations.append(_Obligation("out", 0, field_name, labels[0]))
        edges = self._search_edges(labels, frozenset(), obligations, 0)
        if edges is None:
            return None
        graph = self._materialise(labels, edges)
        report = self._validator.validate(graph, mode="strong")
        return graph if report.conforms else None

    def _collect_obligations(self, labels: tuple[str, ...]) -> list[_Obligation]:
        obligations: list[_Obligation] = []
        for node, label in enumerate(labels):
            for site in self._required_edge:
                if is_named_subtype(self.schema, label, site.type_name):
                    obligations.append(
                        _Obligation("out", node, site.field_name, site.type_name)
                    )
            for site in self._required_ft:
                if is_named_subtype(self.schema, label, site.field.type.base):
                    obligations.append(
                        _Obligation("in", node, site.field_name, site.type_name)
                    )
        return obligations

    def _search_edges(
        self,
        labels: tuple[str, ...],
        edges: frozenset[tuple[int, str, int]],
        obligations: list[_Obligation],
        depth: int,
    ) -> frozenset[tuple[int, str, int]] | None:
        pending = [
            obligation
            for obligation in obligations
            if not self._met(labels, edges, obligation)
        ]
        if not pending:
            return edges
        if depth > len(labels) * len(obligations) + 8:
            return None
        obligation = pending[0]
        for candidate in self._candidate_edges(labels, edges, obligation):
            extended = edges | {candidate}
            if not self._edges_admissible(labels, extended, candidate):
                continue
            found = self._search_edges(labels, extended, obligations, depth + 1)
            if found is not None:
                return found
        return None

    def _met(
        self,
        labels: tuple[str, ...],
        edges: frozenset[tuple[int, str, int]],
        obligation: _Obligation,
    ) -> bool:
        if obligation.kind == "out":
            return any(
                source == obligation.node and label == obligation.field_name
                for source, label, _target in edges
            )
        return any(
            target == obligation.node
            and label == obligation.field_name
            and is_named_subtype(
                self.schema, labels[source], obligation.declaring_type
            )
            for source, label, target in edges
        )

    def _candidate_edges(
        self,
        labels: tuple[str, ...],
        edges: frozenset[tuple[int, str, int]],
        obligation: _Obligation,
    ) -> Iterable[tuple[int, str, int]]:
        field_name = obligation.field_name
        if obligation.kind == "out":
            source = obligation.node
            declaration = self.schema.field(labels[source], field_name)
            if declaration is None or declaration.is_attribute:
                return
            for target, target_label in enumerate(labels):
                if is_named_subtype(self.schema, target_label, declaration.type.base):
                    candidate = (source, field_name, target)
                    if candidate not in edges:
                        yield candidate
        else:
            target = obligation.node
            for source, source_label in enumerate(labels):
                if not is_named_subtype(
                    self.schema, source_label, obligation.declaring_type
                ):
                    continue
                declaration = self.schema.field(source_label, field_name)
                if declaration is None or declaration.is_attribute:
                    continue
                if not is_named_subtype(
                    self.schema, labels[target], declaration.type.base
                ):
                    continue
                candidate = (source, field_name, target)
                if candidate not in edges:
                    yield candidate

    def _edges_admissible(
        self,
        labels: tuple[str, ...],
        edges: frozenset[tuple[int, str, int]],
        added: tuple[int, str, int],
    ) -> bool:
        """Quick rejection of the newly added edge against WS4/DS2/DS3."""
        source, field_name, target = added
        declaration = self.schema.field(labels[source], field_name)
        if declaration is None or declaration.is_attribute:
            return False
        # WS4: non-list declarations allow at most one outgoing edge
        if not declaration.type.is_list:
            count = sum(
                1
                for other_source, other_label, _t in edges
                if other_source == source and other_label == field_name
            )
            if count > 1:
                return False
        # DS2: @noLoops forbids self-loops for sources below the declaring type
        if source == target:
            for declaring, loop_field in self._no_loops:
                if loop_field == field_name and is_named_subtype(
                    self.schema, labels[source], declaring
                ):
                    return False
        # DS3: @uniqueForTarget bounds incoming edges per declaring type
        for site in sites.unique_for_target_sites(self.schema):
            if site.field_name != field_name:
                continue
            count = sum(
                1
                for other_source, other_label, other_target in edges
                if other_target == target
                and other_label == field_name
                and is_named_subtype(
                    self.schema, labels[other_source], site.type_name
                )
            )
            if count > 1:
                return False
        return True

    def _materialise(
        self, labels: tuple[str, ...], edges: frozenset[tuple[int, str, int]]
    ) -> PropertyGraph:
        return materialise_graph(self.schema, labels, edges)


def fresh_value(schema: "GraphQLSchema", type_ref, seed: int) -> object:
    """A well-typed value for *type_ref*, distinct per *seed* where the
    domain allows (Theorem 3's argument: scalar values can always be chosen)."""
    base = type_ref.base
    scalars = schema.scalars
    if scalars.is_enum(base):
        value: object = sorted(scalars.enum_values(base))[0]
    elif base == "Int":
        value = seed
    elif base == "Float":
        value = float(seed)
    elif base == "Boolean":
        value = True
    else:  # String, ID, custom scalars
        value = f"value-{seed}"
    if type_ref.is_list:
        return (value,)
    return value


def materialise_graph(
    schema: "GraphQLSchema",
    labels: tuple[str, ...],
    edges: frozenset[tuple[int, str, int]],
) -> PropertyGraph:
    """Build the Property Graph for a label assignment plus edge set,
    filling required scalar node properties and mandatory edge properties
    with fresh, distinct, well-typed values."""
    graph = PropertyGraph()
    counter = itertools.count(1)
    for node, label in enumerate(labels):
        properties: dict[str, object] = {}
        object_type = schema.object_types[label]
        for field_def in object_type.fields:
            if field_def.is_attribute and field_def.has_directive("required"):
                properties[field_def.name] = fresh_value(
                    schema, field_def.type, next(counter)
                )
        # interface-declared required attributes apply to implementors too
        for interface_name in object_type.interfaces:
            for field_def in schema.interface_types[interface_name].fields:
                if (
                    field_def.is_attribute
                    and field_def.has_directive("required")
                    and field_def.name not in properties
                ):
                    properties[field_def.name] = fresh_value(
                        schema, field_def.type, next(counter)
                    )
        graph.add_node(node, label, properties or None)
    for index, (source, field_name, target) in enumerate(sorted(edges)):
        field_def = schema.field(labels[source], field_name)
        properties = {}
        if field_def is not None:
            properties = {
                argument.name: fresh_value(schema, argument.type, next(counter))
                for argument in field_def.arguments
                if argument.type.non_null and not argument.has_default
            }
        graph.add_edge(f"e{index}", source, target, field_name, properties or None)
    return graph
