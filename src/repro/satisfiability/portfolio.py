"""Portfolio whole-schema satisfiability: batching, fan-out, engine racing.

``check_schema`` asks one question per schema element -- every object type
and every relationship (edge) definition.  The serial loop answers them one
tableau search at a time.  This module turns the sweep into a portfolio:

* **Batched work units.**  The schema is partitioned into per-declaring-type
  :class:`SatUnit`\\ s.  A unit's single batch concept
  ``t ⊓ ∃f1.B1 ⊓ ... ⊓ ∃fk.Bk`` decides the type *and* all k of its edge
  definitions with one tableau search when satisfiable (the common case for
  sound schemas: SAT of the conjunction implies SAT of every conjunct
  pair).  Only when the batch is UNSAT does the unit fall back to staged
  per-element checks -- first ``t`` alone (UNSAT there settles every field
  too), then individual fields -- reproducing the serial verdicts exactly.
* **Fan-out.**  Units are scheduled over the shared
  :class:`~repro.resilience.ladder.ExecutorLadder` (the PR 3 retry/backoff/
  process→thread→serial recovery machinery), with results merged
  positionally into canonical report order, so reports are byte-identical
  for any ``jobs`` count or executor rung.
* **Racing** (``engine="race"``).  A unit's batch concept is decided by the
  Theorem-3 tableau and the bounded finite-model finder concurrently, each
  under its own :class:`~repro.resilience.Budget`; the first decisive
  verdict cancels the loser's budget (the loser unwinds at its next
  cooperative check).  The bounded half searches with ``require_fields`` so
  a found witness decides the type and all batched fields at once.  A
  bounded *failure* is never decisive (finite search below a bound refutes
  nothing), so racing cannot change a verdict -- only ``decided_by``.
* **Caching.**  Every decided verdict flows through the checker's
  :class:`~repro.satisfiability.cache.SatCache`; process-worker results are
  absorbed into the parent's cache on merge, so a repeat ``check_schema``
  over the same schema replays from memory.

Verdict soundness of the batch decomposition: the batch concept is the
conjunction of the type concept and each field concept, so batch-SAT
implies every element SAT; batch-UNSAT implies nothing per element and is
always followed by per-element re-checks; a budget-tripped batch falls back
to the serial per-element procedure under fresh budget renewals, so typed
UNKNOWNs match the serial engine's.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .. import obs
from ..dl.concepts import And, Exists, Name, Role
from ..errors import BudgetExhaustedError
from ..resilience import Budget, faults
from ..resilience.ladder import ExecutorLadder
from ..validation.parallel import usable_cores
from .engine import (
    SatisfiabilityChecker,
    SchemaSatisfiabilityReport,
    TypeSatisfiability,
    profile_from_registry,
    record_report_outcomes,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..dl.concepts import Concept
    from ..schema.model import GraphQLSchema
    from .bounded import BoundedSearchResult

__all__ = [
    "SatUnit",
    "UnitResult",
    "build_units",
    "check_unit",
    "run_portfolio",
]

_ENGINES = ("portfolio", "race")
_EXECUTORS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class SatUnit:
    """One batched work unit: a declaring type and its relationship fields.

    ``type_name`` is the object type the unit must produce a
    :class:`~repro.satisfiability.engine.TypeSatisfiability` for, or None
    for interface-declared fields (interfaces get no type verdict in the
    report, only field verdicts).  ``fields`` holds ``(field_name,
    target_base)`` pairs in declaration order.
    """

    index: int
    type_name: str | None
    declaring: str
    fields: tuple[tuple[str, str], ...]


@dataclass
class UnitResult:
    """The picklable outcome of one unit (crosses process boundaries)."""

    index: int
    type_verdict: TypeSatisfiability | None
    fields: dict[tuple[str, str], bool | None]
    wins: dict[str, int] = field(default_factory=dict)


def build_units(schema: "GraphQLSchema") -> list[SatUnit]:
    """Partition the schema into per-declaring-type work units.

    Every object type gets a unit (even field-less ones -- the type verdict
    is still owed); interfaces declaring relationship fields get
    field-only units.  Grouping follows ``field_declarations()`` exactly,
    so the union of unit elements equals the serial sweep's element set.
    """
    groups: dict[str, list[tuple[str, str]]] = {}
    for type_name, field_name, field_def in schema.field_declarations():
        if field_def.is_relationship:
            groups.setdefault(type_name, []).append(
                (field_name, field_def.type.base)
            )
    units: list[SatUnit] = []
    for type_name in sorted(schema.object_types):
        units.append(
            SatUnit(
                len(units), type_name, type_name, tuple(groups.pop(type_name, ()))
            )
        )
    for declaring in sorted(groups):
        units.append(SatUnit(len(units), None, declaring, tuple(groups[declaring])))
    return units


# --------------------------------------------------------------------------- #
# the per-unit kernel (runs on any rung: inline, thread, or worker process)
# --------------------------------------------------------------------------- #


def check_unit(
    checker: SatisfiabilityChecker,
    unit: SatUnit,
    *,
    find_witnesses: bool = False,
    race: bool = False,
) -> UnitResult:
    """Decide one unit: cache → lint → batch concept → staged fallback."""
    with obs.span(
        "sat.unit",
        unit=unit.index,
        declaring=unit.declaring,
        fields=len(unit.fields),
    ):
        return _check_unit(checker, unit, find_witnesses, race)


def _check_unit(
    checker: SatisfiabilityChecker,
    unit: SatUnit,
    find_witnesses: bool,
    race: bool,
) -> UnitResult:
    wins: dict[str, int] = {}

    def win(engine: str) -> None:
        wins[engine] = wins.get(engine, 0) + 1

    cache = checker.cache
    fields: dict[tuple[str, str], bool | None] = {}
    pending: list[tuple[str, str]] = []
    for field_name, base in unit.fields:
        key = (unit.declaring, field_name)
        if cache is not None:
            cached = cache.get_field(key)
            if cached is not None:
                fields[key] = cached
                win("cache")
                continue
        pending.append((field_name, base))

    type_verdict: TypeSatisfiability | None = None
    if unit.type_name is not None:
        if cache is not None:
            cached_type = cache.get_type(unit.type_name)
            if cached_type is not None:
                if find_witnesses and cached_type.tableau_satisfiable:
                    cached_type.bounded = checker._bounded_result(
                        unit.type_name, checker._fresh_budget(None)
                    )
                type_verdict = cached_type
                win("cache")
        if type_verdict is None and checker.lint_precheck:
            diagnostic = checker.lint_verdict(unit.type_name)
            if diagnostic is not None:
                type_verdict = TypeSatisfiability(
                    unit.type_name,
                    tableau_satisfiable=False,
                    decided_by="lint",
                    diagnostic=diagnostic,
                )
                win("lint")
                if cache is not None:
                    cache.put_type(type_verdict)
                # a dead declaring type makes every edge definition dead too
                for field_name, _base in pending:
                    key = (unit.declaring, field_name)
                    fields[key] = False
                    if cache is not None:
                        cache.put_field(key, False)
                pending = []

    # the dataflow-analysis pre-verdict feed: drain elements the fixpoints
    # proved, so the batch concept only carries genuinely open questions.
    # Verdicts are reported exactly as the tableau would report them
    # (decided_by="tableau"), keeping reports byte-identical; only the
    # win/obs accounting records the skipped searches.
    verdicts = checker.analysis_verdicts()
    if verdicts is not None:
        still: list[tuple[str, str]] = []
        for field_name, base in pending:
            key = (unit.declaring, field_name)
            if key in verdicts.fields:
                fields[key] = verdicts.fields[key]
                win("analysis")
                obs.count("sat.analysis.field_hits")
                if cache is not None:
                    cache.put_field(key, verdicts.fields[key])
            else:
                still.append((field_name, base))
        pending = still
        if unit.type_name is not None and type_verdict is None:
            analysis = verdicts.types.get(unit.type_name)
            if analysis is not None:
                bounded = None
                if find_witnesses and analysis:
                    bounded = checker._bounded_result(unit.type_name, None)
                type_verdict = TypeSatisfiability(unit.type_name, analysis, bounded)
                win("analysis")
                obs.count("sat.analysis.type_hits")
                if cache is not None:
                    cache.put_type(type_verdict)

    need_type = unit.type_name is not None and type_verdict is None
    if need_type or pending:
        type_verdict = _decide_batch(
            checker,
            unit,
            pending,
            fields,
            type_verdict,
            need_type,
            find_witnesses,
            race,
            win,
        )
    return UnitResult(unit.index, type_verdict, fields, wins)


def _decide_batch(
    checker: SatisfiabilityChecker,
    unit: SatUnit,
    pending: list[tuple[str, str]],
    fields: dict[tuple[str, str], bool | None],
    type_verdict: TypeSatisfiability | None,
    need_type: bool,
    find_witnesses: bool,
    race: bool,
    win,
) -> TypeSatisfiability | None:
    """Run the batch concept, then stage fallbacks on UNSAT/UNKNOWN."""
    cache = checker.cache
    parts: "list[Concept]" = [Name(unit.declaring)]
    parts.extend(Exists(Role(field_name), Name(base)) for field_name, base in pending)
    batch = parts[0] if len(parts) == 1 else And(tuple(parts))

    race_bounded: "BoundedSearchResult | None" = None
    if race and need_type:
        sat, decided_by, race_bounded = _race_batch(
            checker, unit, batch, tuple(field_name for field_name, _base in pending)
        )
    else:
        sat, decided_by = _tableau_batch(checker, batch)

    if sat is True:
        win(decided_by)
        for field_name, _base in pending:
            key = (unit.declaring, field_name)
            fields[key] = True
            if cache is not None:
                cache.put_field(key, True)
        if need_type:
            bounded = None
            if find_witnesses:
                if race_bounded is not None and race_bounded.satisfiable:
                    bounded = race_bounded
                else:
                    bounded = checker._bounded_result(
                        unit.type_name, checker._fresh_budget(None)
                    )
            type_verdict = TypeSatisfiability(
                unit.type_name, True, bounded, decided_by=decided_by
            )
            if cache is not None:
                cache.put_type(type_verdict)
        return type_verdict

    if sat is False and need_type and not pending:
        # the batch was Name(t) alone: a direct UNSAT verdict
        win(decided_by)
        type_verdict = TypeSatisfiability(unit.type_name, False, decided_by=decided_by)
        if cache is not None:
            cache.put_type(type_verdict)
        return type_verdict

    # batch UNSAT with fields in it, or budget-tripped batch: stage down to
    # the serial per-element procedure (fresh budget renewals per element),
    # which reproduces the serial engine's verdicts exactly.
    if need_type:
        type_verdict = checker.check_type(unit.type_name, find_witness=find_witnesses)
        win(type_verdict.decided_by)
    type_unsat = (
        unit.type_name is not None
        and type_verdict is not None
        and type_verdict.tableau_satisfiable is False
    )
    for field_name, _base in pending:
        key = (unit.declaring, field_name)
        if type_unsat:
            # t ⊓ ∃f.B is subsumed by the unsatisfiable t: False without a
            # search (the serial engine's tableau returns exactly this)
            fields[key] = False
            if cache is not None:
                cache.put_field(key, False)
        else:
            fields[key] = checker.check_field(unit.declaring, field_name)
        win("tableau" if fields[key] is not None else "budget")
    return type_verdict


def _tableau_batch(
    checker: SatisfiabilityChecker, batch: "Concept"
) -> tuple[bool | None, str]:
    """Decide the batch concept with the tableau alone."""
    try:
        return (
            checker.tableau.is_satisfiable(batch, budget=checker._fresh_budget(None)),
            "tableau",
        )
    except BudgetExhaustedError:
        # not decisive; the staged fallback re-checks per element (and
        # re-raises there under on_budget="error")
        return None, "budget"


def _race_batch(
    checker: SatisfiabilityChecker,
    unit: SatUnit,
    batch: "Concept",
    field_names: tuple[str, ...],
) -> "tuple[bool | None, str, BoundedSearchResult | None]":
    """Race the tableau against the bounded finder on one batch concept.

    Each racer gets its own budget (a renewal of the checker's template, or
    a plain unlimited budget serving purely as a cancellation handle); the
    first decisive answer cancels the other racer.  Decisive means: any
    tableau verdict, or a bounded search that *found* a witness.  A bounded
    search that merely failed below its node bound decides nothing.
    """
    template = checker.budget
    budget_tableau = template.renew() if template is not None else Budget()
    budget_bounded = template.renew() if template is not None else Budget()

    def tableau_half() -> "tuple[str, bool | None, BoundedSearchResult | None]":
        try:
            verdict = checker.tableau.is_satisfiable(batch, budget=budget_tableau)
        except BudgetExhaustedError:
            return "tableau", None, None
        return "tableau", verdict, None

    def bounded_half() -> "tuple[str, bool | None, BoundedSearchResult | None]":
        result = checker._finder.find_model(
            unit.type_name,
            checker.bounded_max_nodes,
            budget=budget_bounded,
            require_fields=field_names,
        )
        return "bounded", (True if result.satisfiable else None), result

    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(tableau_half), pool.submit(bounded_half)]
        for future in as_completed(futures):
            engine, sat, bounded = future.result()
            if sat is None:
                continue
            if engine == "tableau":
                budget_bounded.cancel()
                obs.count("sat.race.cancelled.bounded")
            else:
                budget_tableau.cancel()
                obs.count("sat.race.cancelled.tableau")
            obs.count(f"sat.race.won.{engine}")
            return sat, engine, bounded
    return None, "budget", None


# --------------------------------------------------------------------------- #
# executor rungs
# --------------------------------------------------------------------------- #


def _thread_check(
    checker: SatisfiabilityChecker,
    unit: SatUnit,
    find_witnesses: bool,
    race: bool,
    attempt: int,
) -> UnitResult:
    faults.fault_point(
        "portfolio.worker", unit=unit.index, attempt=attempt, executor="thread"
    )
    return check_unit(checker, unit, find_witnesses=find_witnesses, race=race)


_WORKER_CHECKER: "SatisfiabilityChecker | None" = None


def _worker_init(
    schema: "GraphQLSchema",
    config: tuple,
    fault_spec: str | None,
    obs_config: dict | None = None,
) -> None:
    """Process-pool initializer: build this worker's checker once."""
    global _WORKER_CHECKER
    faults.mark_worker_process()
    faults.install(fault_spec)
    obs.install_worker(obs_config)
    (
        max_nodes,
        bounded_max_nodes,
        lint_precheck,
        budget,
        on_budget,
        analysis_precheck,
    ) = config
    _WORKER_CHECKER = SatisfiabilityChecker(
        schema,
        max_nodes=max_nodes,
        bounded_max_nodes=bounded_max_nodes,
        lint_precheck=lint_precheck,
        budget=budget,
        on_budget=on_budget,
        analysis_precheck=analysis_precheck,
    )


def _process_check(payload: tuple) -> "UnitResult | obs.TracedResult":
    unit, find_witnesses, race, attempt = payload
    faults.fault_point(
        "portfolio.worker", unit=unit.index, attempt=attempt, executor="process"
    )
    assert _WORKER_CHECKER is not None
    result = check_unit(
        _WORKER_CHECKER, unit, find_witnesses=find_witnesses, race=race
    )
    return obs.package(result)


def _choose_executor(executor: str, jobs: int, units: int) -> str:
    if executor not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
        )
    if executor != "auto":
        return executor
    if jobs <= 1 or units <= 1 or usable_cores() <= 1:
        return "serial"
    # tableau searches are pure-Python CPU work: threads only help while a
    # unit races (its halves overlap); real fan-out speedup needs processes
    return "process" if units >= jobs else "thread"


# --------------------------------------------------------------------------- #
# the driver
# --------------------------------------------------------------------------- #


def run_portfolio(
    checker: SatisfiabilityChecker,
    *,
    find_witnesses: bool = False,
    jobs: int | None = None,
    engine: str = "portfolio",
    executor: str = "auto",
    max_retries: int = 2,
    retry_base_delay: float = 0.05,
    unit_timeout: float | None = None,
    fallback: bool = True,
) -> SchemaSatisfiabilityReport:
    """The portfolio ``check_schema``: batch, fan out, merge, memoize."""
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    race = engine == "race"
    units = build_units(checker.schema)
    if jobs is None:
        jobs = usable_cores()
    jobs = max(1, jobs)
    mode = _choose_executor(executor, jobs, len(units))
    results: "list[UnitResult | None]" = [None] * len(units)
    ladder = ExecutorLadder(
        jobs=jobs,
        max_retries=max_retries,
        retry_base_delay=retry_base_delay,
        task_timeout=unit_timeout,
        fallback=fallback,
        site="satisfiability.portfolio",
        log_key="unit",
        timeout_label="unit_timeout",
    )

    def serial(index: int, attempt: int) -> UnitResult:
        faults.fault_point(
            "portfolio.worker", unit=index, attempt=attempt, executor="serial"
        )
        return check_unit(
            checker, units[index], find_witnesses=find_witnesses, race=race
        )

    def thread_submit(pool, index, attempt):
        return pool.submit(
            _thread_check, checker, units[index], find_witnesses, race, attempt
        )

    def process_submit(pool, index, attempt):
        return pool.submit(_process_check, (units[index], find_witnesses, race, attempt))

    def make_process_pool(workers: int) -> ProcessPoolExecutor:
        config = (
            checker._max_nodes,
            checker.bounded_max_nodes,
            checker.lint_precheck,
            checker.budget,
            checker.on_budget,
            checker.analysis_precheck,
        )
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(checker.schema, config, faults.active_spec(), obs.worker_config()),
        )

    with obs.span(
        "sat.run", engine=engine, executor=mode, jobs=jobs, units=len(units)
    ):
        ladder.run(
            mode,
            range(len(units)),
            results,
            serial=serial,
            thread_submit=thread_submit,
            process_submit=process_submit,
            make_process_pool=make_process_pool,
        )
        checker.last_recovery_log = ladder.recovery_log
        report, wins = _merge(checker, results, absorb_bounded=not race)

    # ``last_profile`` is derived from a per-run metrics registry -- the
    # unified profiling surface -- then folded into the globally observed
    # registry so ``--metrics`` snapshots carry the same counters.
    run_registry = obs.MetricsRegistry()
    run_registry.count("sat.units", len(units))
    for engine_name, win_count in wins.items():
        run_registry.count(f"sat.wins.{engine_name}", win_count)
    checker.last_profile = profile_from_registry(run_registry, engine, mode, jobs)
    observation = obs.active()
    if observation is not None and observation.registry is not None:
        observation.registry.merge_snapshot(run_registry.drain())
    record_report_outcomes(report)
    return report


def _merge(
    checker: SatisfiabilityChecker,
    results: "list[UnitResult | None]",
    absorb_bounded: bool,
) -> tuple[SchemaSatisfiabilityReport, dict[str, int]]:
    """Deterministic merge into canonical report order + cache absorption.

    Results computed in worker processes never touched the parent cache, so
    their verdicts are absorbed here (race-found bounded witnesses are not:
    a ``require_fields`` search may find a different witness than the plain
    one, and the cache must replay exactly what uncached runs compute).
    """
    cache = checker.cache
    wins: dict[str, int] = {}
    by_type: dict[str, TypeSatisfiability] = {}
    field_verdicts: dict[tuple[str, str], bool | None] = {}
    # span-merge barrier: process-worker results arrive wrapped with their
    # recorded spans/metrics when observability is on; absorb them before
    # the deterministic report merge
    results = [obs.unwrap(result) for result in results]
    for result in results:
        assert result is not None  # the ladder fills every index or raises
        for engine, count in result.wins.items():
            wins[engine] = wins.get(engine, 0) + count
        for key, verdict in result.fields.items():
            field_verdicts[key] = verdict
            if cache is not None:
                cache.put_field(key, verdict)
        if result.type_verdict is not None:
            by_type[result.type_verdict.type_name] = result.type_verdict
            if cache is not None:
                cache.put_type(result.type_verdict)
                bounded = result.type_verdict.bounded
                if absorb_bounded and bounded is not None:
                    cache.put_bounded(
                        result.type_verdict.type_name,
                        checker.bounded_max_nodes,
                        bounded,
                    )
    report = SchemaSatisfiabilityReport()
    for type_name in sorted(checker.schema.object_types):
        report.types[type_name] = by_type[type_name]
    for type_name, field_name, field_def in checker.schema.field_declarations():
        if field_def.is_relationship:
            report.fields[(type_name, field_name)] = field_verdicts[
                (type_name, field_name)
            ]
    return report, wins
