"""The CNF-SAT → object-type satisfiability reduction (Theorem 2).

Given a CNF φ = ψ1 ∧ … ∧ ψn, the proof of Theorem 2 constructs a schema
with a distinguished object type ``ot`` such that ``ot`` is satisfiable iff
φ is:

1. the object type ``ot`` (the "assignment anchor");
2. an interface type ``Clause_j`` per clause, declaring
   ``f: [ot] @requiredForTarget`` -- so every ``ot`` node needs an incoming
   ``f``-edge from *some* implementor of every clause interface (= every
   clause has a true literal);
3. an object type ``Lit_j_i`` per literal occurrence, implementing its
   clause's interface (= the literal's occurrence can be the clause's
   witness);
4. an interface type ``Conflict_…`` per pair of complementary literal
   occurrences, implemented by both, declaring ``f: [ot] @uniqueForTarget``
   -- so an ``ot`` node cannot receive ``f``-edges from both a literal and
   its negation (= the induced truth assignment is consistent).

:func:`reduce_cnf_to_schema` builds the schema; :func:`assignment_from_graph`
extracts the truth assignment back out of a witness Property Graph, and
:func:`graph_from_assignment` builds the canonical witness graph from a
satisfying assignment (used to cross-validate the reduction end-to-end).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pg.model import PropertyGraph
from ..sat.cnf import CNF
from ..schema.build import parse_schema
from ..schema.model import GraphQLSchema

#: The distinguished object type whose satisfiability encodes φ's.
ANCHOR_TYPE = "OTphi"
#: The single relationship field name the construction uses.
FIELD = "f"


def literal_type_name(clause_index: int, position: int) -> str:
    """The object type encoding occurrence *position* of clause *clause_index*."""
    return f"Lit_{clause_index}_{position}"


def clause_interface_name(clause_index: int) -> str:
    return f"Clause_{clause_index}"


@dataclass(frozen=True)
class Reduction:
    """The output of the Theorem-2 construction."""

    cnf: CNF
    schema: GraphQLSchema
    sdl: str
    #: literal occurrence (clause index, position) -> signed variable
    occurrences: dict[tuple[int, int], int]

    @property
    def anchor(self) -> str:
        return ANCHOR_TYPE


def reduce_cnf_to_schema(cnf: CNF) -> Reduction:
    """Run the Theorem-2 construction on *cnf*."""
    lines: list[str] = [f"type {ANCHOR_TYPE} {{ }}", ""]
    occurrences: dict[tuple[int, int], int] = {}

    for clause_index, clause in enumerate(cnf.clauses):
        interface = clause_interface_name(clause_index)
        lines.append(f"interface {interface} {{")
        lines.append(f"  {FIELD}: [{ANCHOR_TYPE}] @requiredForTarget")
        lines.append("}")
        for position, literal in enumerate(clause):
            occurrences[(clause_index, position)] = literal

    conflict_interfaces: dict[tuple[tuple[int, int], tuple[int, int]], str] = {}
    occurrence_list = sorted(occurrences)
    for index, first in enumerate(occurrence_list):
        for second in occurrence_list[index + 1 :]:
            if occurrences[first] == -occurrences[second]:
                name = (
                    f"Conflict_{first[0]}_{first[1]}__{second[0]}_{second[1]}"
                )
                conflict_interfaces[(first, second)] = name
                lines.append(f"interface {name} {{")
                lines.append(f"  {FIELD}: [{ANCHOR_TYPE}] @uniqueForTarget")
                lines.append("}")

    for clause_index, position in occurrence_list:
        implemented = [clause_interface_name(clause_index)]
        for (first, second), name in conflict_interfaces.items():
            if (clause_index, position) in (first, second):
                implemented.append(name)
        lines.append(
            f"type {literal_type_name(clause_index, position)} "
            f"implements {' & '.join(implemented)} {{"
        )
        lines.append(f"  {FIELD}: [{ANCHOR_TYPE}]")
        lines.append("}")

    sdl = "\n".join(lines) + "\n"
    schema = parse_schema(sdl)
    return Reduction(cnf=cnf, schema=schema, sdl=sdl, occurrences=occurrences)


def graph_from_assignment(
    reduction: Reduction, assignment: dict[int, bool]
) -> PropertyGraph:
    """The canonical witness graph for a satisfying *assignment*.

    One ``ot`` node, plus one literal node per *true* literal occurrence,
    each with an ``f``-edge to the anchor.  (False occurrences get a node
    but no edge -- nodes without edges are always allowed.)  If the
    assignment satisfies the CNF, the result strongly satisfies the schema.
    """
    graph = PropertyGraph()
    anchor = graph.add_node("phi", ANCHOR_TYPE)
    edge_count = 0
    for (clause_index, position), literal in sorted(reduction.occurrences.items()):
        node = graph.add_node(
            f"lit_{clause_index}_{position}",
            literal_type_name(clause_index, position),
        )
        literal_true = assignment.get(abs(literal), False) == (literal > 0)
        if literal_true:
            graph.add_edge(f"edge_{edge_count}", node, anchor, FIELD)
            edge_count += 1
    return graph


def assignment_from_graph(
    reduction: Reduction, graph: PropertyGraph
) -> dict[int, bool]:
    """Extract the truth assignment a witness graph induces.

    Every ``f``-edge into an anchor node marks its source's literal
    occurrence as true.  The schema's conflict interfaces guarantee the
    marks are consistent, and the clause interfaces guarantee every clause
    is covered, so the result satisfies the CNF whenever the graph strongly
    satisfies the schema.  Unconstrained variables default to True.
    """
    assignment: dict[int, bool] = {}
    name_to_occurrence = {
        literal_type_name(clause_index, position): literal
        for (clause_index, position), literal in reduction.occurrences.items()
    }
    for edge in graph.edges:
        if graph.label(edge) != FIELD:
            continue
        source, target = graph.endpoints(edge)
        if graph.label(target) != ANCHOR_TYPE:
            continue
        literal = name_to_occurrence.get(graph.label(source))
        if literal is not None:
            assignment[abs(literal)] = literal > 0
    for variable in reduction.cnf.variables:
        assignment.setdefault(variable, True)
    return assignment
