"""Cross-check verdict caching for satisfiability (the DL-reasoner playbook).

Deciding a whole schema re-asks many closely related questions: the same
object type is probed by ``check_type`` and again inside every
``check_field`` concept that names it; repeated ``check_schema`` sweeps
(a server validating uploads against one schema) re-prove everything from
scratch.  This module adds the two classic caching layers of optimised
description-logic reasoners, adapted to this engine:

* :class:`SatCache` -- a schema-keyed verdict memo (mirroring the PR 2
  validation plan cache): decided type verdicts, field (edge-definition)
  verdicts, and bounded witness results, shared across
  ``check_type`` / ``check_field`` / ``check_schema`` calls and across
  checker instances over the same schema object.  Budget-exhausted
  (UNKNOWN) verdicts are never cached -- a later call with a larger budget
  must get a chance to decide.
* :class:`LabelSetCache` -- tableau-level caching of known-satisfiable and
  known-clashing *root label sets*, shared by every tableau over the same
  TBox (each :class:`~repro.dl.tableau.Tableau` interns concepts to
  instance-local integer ids, so the shared key is a frozenset of concept
  *objects*).  Three sound rules, all anchored at the root node:

  - exact: the initial root label was decided before -- replay it;
  - subset-of-SAT: a *completed clash-free* root label ``R`` proves the
    conjunction of ``R`` satisfiable, hence any query whose initial label
    is a subset of ``R`` is satisfiable;
  - superset-of-UNSAT: an initial label proven unsatisfiable stays
    unsatisfiable under any superset.

  These rules are deliberately **not** applied to non-root nodes: with
  inverse roles (ALCQI) the satisfiability of a successor's label depends
  on constraints propagated back from its ancestors, so caching interior
  labels is unsound -- the standard caveat in the DL literature.

The module-level registry (:func:`sat_cache_for`) is keyed by schema
identity with a small LRU, exactly like
:func:`repro.validation.plan.compile_plan`; :func:`sat_cache_info` /
:func:`sat_cache_clear` expose observability and test isolation
(``pgschema sat --profile`` reports these counters).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING

from .. import obs

if TYPE_CHECKING:  # pragma: no cover
    from ..dl.concepts import Concept
    from ..schema.model import GraphQLSchema
    from .bounded import BoundedSearchResult
    from .engine import TypeSatisfiability

__all__ = [
    "SAT_CACHE_MAXSIZE",
    "LabelSetCache",
    "SatCache",
    "sat_cache_clear",
    "sat_cache_for",
    "sat_cache_info",
]

#: Distinct schemas the registry keeps caches for (LRU beyond this).
SAT_CACHE_MAXSIZE = 32

#: Per-layer entry caps: the exact memo, completed-SAT roots and UNSAT
#: seeds are each bounded so a pathological sweep cannot grow without
#: limit (the subset/superset rules scan linearly, so the cap also bounds
#: lookup cost).
LABEL_CACHE_MAXSIZE = 512


class LabelSetCache:
    """Known-satisfiable / known-clashing root label sets for one TBox.

    Thread-compatible by construction: lookups read append-only structures
    (CPython list iteration tolerates concurrent appends), stores take a
    lock.  A lost update under a race costs a re-proof, never a wrong
    verdict.
    """

    def __init__(self, max_entries: int = LABEL_CACHE_MAXSIZE) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._exact: "OrderedDict[frozenset[Concept], bool]" = OrderedDict()
        self._sat_roots: "list[frozenset[Concept]]" = []
        self._unsat_seeds: "list[frozenset[Concept]]" = []

    def lookup(self, initial: "frozenset[Concept]") -> bool | None:
        """A cached verdict for this initial root label, or None."""
        verdict = self._exact.get(initial)
        if verdict is not None or initial in self._exact:
            self.hits += 1
            return verdict
        for completed in self._sat_roots:
            if initial <= completed:
                self.hits += 1
                return True
        for seed in self._unsat_seeds:
            if seed <= initial:
                self.hits += 1
                return False
        self.misses += 1
        return None

    def store(
        self,
        initial: "frozenset[Concept]",
        verdict: bool,
        completed_root: "frozenset[Concept] | None",
    ) -> None:
        """Record a *decided* verdict (budget-tripped runs never get here)."""
        with self._lock:
            if initial not in self._exact and len(self._exact) >= self.max_entries:
                self._exact.popitem(last=False)
            self._exact[initial] = verdict
            if verdict and completed_root is not None:
                if len(self._sat_roots) < self.max_entries:
                    self._sat_roots.append(completed_root)
            elif not verdict:
                if len(self._unsat_seeds) < self.max_entries:
                    self._unsat_seeds.append(initial)

    def info(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._exact),
            "sat_roots": len(self._sat_roots),
            "unsat_seeds": len(self._unsat_seeds),
        }


class SatCache:
    """Memoized satisfiability verdicts for one schema.

    Stores only *decided* results: type verdicts with
    ``tableau_satisfiable`` in {True, False} (the bounded component is kept
    separately, per node bound, so ``find_witnesses=True`` and ``=False``
    sweeps replay identically to uncached runs), field verdicts in
    {True, False}, and completed bounded searches.  The embedded
    :class:`LabelSetCache` is what checker-built tableaux attach as their
    ``label_cache``.
    """

    def __init__(self, schema: "GraphQLSchema") -> None:
        self.schema = schema
        self.labels = LabelSetCache()
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._types: "dict[str, TypeSatisfiability]" = {}
        self._fields: "dict[tuple[str, str], bool]" = {}
        self._bounded: "dict[tuple[str, int], BoundedSearchResult]" = {}

    # -- type verdicts -------------------------------------------------- #

    def get_type(self, type_name: str) -> "TypeSatisfiability | None":
        """A fresh copy of the cached verdict (``bounded`` not attached)."""
        cached = self._types.get(type_name)
        if cached is None:
            self.misses += 1
            obs.count("sat.cache.misses")
            return None
        self.hits += 1
        obs.count("sat.cache.hits")
        return replace(cached)

    def put_type(self, verdict: "TypeSatisfiability") -> None:
        if verdict.tableau_satisfiable is None:
            return  # UNKNOWN: a bigger budget deserves a fresh attempt
        with self._lock:
            self._types.setdefault(
                verdict.type_name, replace(verdict, bounded=None)
            )

    # -- field (edge-definition) verdicts ------------------------------- #

    def get_field(self, key: tuple[str, str]) -> bool | None:
        cached = self._fields.get(key)
        if cached is None and key not in self._fields:
            self.misses += 1
            obs.count("sat.cache.misses")
            return None
        self.hits += 1
        obs.count("sat.cache.hits")
        return cached

    def put_field(self, key: tuple[str, str], verdict: bool | None) -> None:
        if verdict is None:
            return
        with self._lock:
            self._fields.setdefault(key, verdict)

    # -- bounded witness results ---------------------------------------- #

    def get_bounded(
        self, type_name: str, bound: int
    ) -> "BoundedSearchResult | None":
        cached = self._bounded.get((type_name, bound))
        if cached is None:
            self.misses += 1
            obs.count("sat.cache.misses")
            return None
        self.hits += 1
        obs.count("sat.cache.hits")
        return cached

    def put_bounded(
        self, type_name: str, bound: int, result: "BoundedSearchResult"
    ) -> None:
        if result.exhausted and not result.satisfiable:
            return  # stopped on a budget below the bound: not a completed search
        with self._lock:
            self._bounded.setdefault((type_name, bound), result)

    # -- observability --------------------------------------------------- #

    def cache_info(self) -> dict:
        """Hit/miss counters for the verdict layer and the label layer."""
        label_info = self.labels.info()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "types": len(self._types),
            "fields": len(self._fields),
            "bounded": len(self._bounded),
            "label_hits": label_info["hits"],
            "label_misses": label_info["misses"],
            "label_entries": label_info["entries"],
        }


# --------------------------------------------------------------------------- #
# the schema-keyed registry (mirrors the validation plan cache)
# --------------------------------------------------------------------------- #

_registry_lock = threading.Lock()
_registry: "OrderedDict[int, tuple[GraphQLSchema, SatCache]]" = OrderedDict()
_evictions = 0


def sat_cache_for(schema: "GraphQLSchema") -> SatCache:
    """The shared :class:`SatCache` for *schema* (identity-keyed LRU).

    The registry holds a strong reference to the schema, so the ``id()``
    key cannot be recycled while its entry lives.  Long-lived holders (the
    service's schema registry) pin their own :class:`SatCache` instances
    instead, so registry eviction cannot cross tenants.
    """
    global _evictions
    key = id(schema)
    with _registry_lock:
        entry = _registry.get(key)
        if entry is not None:
            _registry.move_to_end(key)
            return entry[1]
        cache = SatCache(schema)
        _registry[key] = (schema, cache)
        if len(_registry) > SAT_CACHE_MAXSIZE:
            _registry.popitem(last=False)
            _evictions += 1
            obs.count("sat.cache.evictions")
        return cache


def sat_cache_info() -> dict:
    """Aggregated counters over every live per-schema cache."""
    with _registry_lock:
        caches = [cache for _schema, cache in _registry.values()]
        evictions = _evictions
    totals = {
        "schemas": len(caches),
        "maxsize": SAT_CACHE_MAXSIZE,
        "evictions": evictions,
        "hits": 0,
        "misses": 0,
        "types": 0,
        "fields": 0,
        "bounded": 0,
        "label_hits": 0,
        "label_misses": 0,
        "label_entries": 0,
    }
    for cache in caches:
        for key, value in cache.cache_info().items():
            totals[key] += value
    return totals


def sat_cache_clear() -> None:
    """Drop every cached verdict (test isolation / cold benchmark runs)."""
    global _evictions
    with _registry_lock:
        _registry.clear()
        _evictions = 0
