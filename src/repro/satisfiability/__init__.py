"""Schema satisfiability: Theorems 2 and 3 made executable."""

from .bounded import BoundedModelFinder, BoundedSearchResult
from .cache import SatCache, sat_cache_clear, sat_cache_for, sat_cache_info
from .engine import (
    SatisfiabilityChecker,
    SchemaSatisfiabilityReport,
    TypeSatisfiability,
)
from .portfolio import SatUnit, UnitResult, build_units, check_unit, run_portfolio
from .sat_encoding import SATModelFinder
from .reduction import (
    ANCHOR_TYPE,
    Reduction,
    assignment_from_graph,
    graph_from_assignment,
    reduce_cnf_to_schema,
)

__all__ = [
    "ANCHOR_TYPE",
    "BoundedModelFinder",
    "BoundedSearchResult",
    "Reduction",
    "SATModelFinder",
    "SatCache",
    "SatUnit",
    "SatisfiabilityChecker",
    "SchemaSatisfiabilityReport",
    "TypeSatisfiability",
    "UnitResult",
    "assignment_from_graph",
    "build_units",
    "check_unit",
    "graph_from_assignment",
    "reduce_cnf_to_schema",
    "run_portfolio",
    "sat_cache_clear",
    "sat_cache_for",
    "sat_cache_info",
]
