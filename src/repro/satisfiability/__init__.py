"""Schema satisfiability: Theorems 2 and 3 made executable."""

from .bounded import BoundedModelFinder, BoundedSearchResult
from .engine import (
    SatisfiabilityChecker,
    SchemaSatisfiabilityReport,
    TypeSatisfiability,
)
from .sat_encoding import SATModelFinder
from .reduction import (
    ANCHOR_TYPE,
    Reduction,
    assignment_from_graph,
    graph_from_assignment,
    reduce_cnf_to_schema,
)

__all__ = [
    "ANCHOR_TYPE",
    "BoundedModelFinder",
    "BoundedSearchResult",
    "Reduction",
    "SATModelFinder",
    "SatisfiabilityChecker",
    "SchemaSatisfiabilityReport",
    "TypeSatisfiability",
    "assignment_from_graph",
    "graph_from_assignment",
    "reduce_cnf_to_schema",
]
