"""Bounded Property Graph satisfiability, encoded as propositional SAT.

A second, independent finite-model engine: the existence of a strongly
satisfying Property Graph with exactly ``k`` nodes containing the queried
object type is encoded as a CNF over

* type variables ``t(i, T)`` -- node i carries object type T (exactly one
  per node), and
* edge variables ``e(i, f, j)`` -- an f-labelled edge from node i to node j
  (at most one per triple; parallel edges never help satisfiability, the
  same argument the Theorem-3 proof uses for @distinct),

with clauses for SS4/WS3 (edges justified and correctly targeted), WS4
(non-list cardinality), DS2 (@noLoops), DS3 (@uniqueForTarget), DS4
(@requiredForTarget, via witness variables), and DS6 (@required edges).
Scalar attributes and @key constraints are handled outside the encoding,
exactly as in :mod:`repro.satisfiability.bounded`: the decoded witness gets
fresh well-typed property values and is confirmed by the real validator.

Used in the differential tests against :class:`BoundedModelFinder` and in
the satisfiability ablation benchmark.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from ..sat.cnf import CNF
from ..sat.solver import solve
from ..schema.subtype import is_named_subtype
from ..validation import sites
from ..validation.indexed import IndexedValidator
from .bounded import BoundedSearchResult, materialise_graph

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import GraphQLSchema


class SATModelFinder:
    """Finite-model search by reduction to propositional SAT."""

    def __init__(self, schema: "GraphQLSchema") -> None:
        self.schema = schema
        self._validator = IndexedValidator(schema)
        self._object_types = sorted(schema.object_types)
        self._roles = sorted(
            {
                field_name
                for _t, field_name, field_def in schema.field_declarations()
                if field_def.is_relationship
            }
        )

    def find_model(self, object_type: str, max_nodes: int = 4) -> BoundedSearchResult:
        """Search size-k models for k = 1..max_nodes."""
        result = BoundedSearchResult(satisfiable=False, bound=max_nodes)
        if object_type not in self.schema.object_types or not self._object_types:
            return result
        for size in range(1, max_nodes + 1):
            result.assignments_tried += 1
            witness = self._solve_at_size(object_type, size)
            if witness is not None:
                result.satisfiable = True
                result.witness = witness
                return result
        return result

    # ------------------------------------------------------------------ #

    def _solve_at_size(self, object_type: str, size: int):
        encoding = _Encoding(self.schema, self._object_types, self._roles, size)
        encoding.encode(object_type)
        solved = solve(CNF(encoding.num_vars, tuple(encoding.clauses)))
        if not solved.satisfiable:
            return None
        labels, edges = encoding.decode(solved.assignment)
        graph = materialise_graph(self.schema, labels, edges)
        report = self._validator.validate(graph, mode="strong")
        return graph if report.conforms else None


class _Encoding:
    """The CNF for one (target type, node count) pair."""

    def __init__(
        self,
        schema: "GraphQLSchema",
        object_types: list[str],
        roles: list[str],
        size: int,
    ) -> None:
        self.schema = schema
        self.object_types = object_types
        self.roles = roles
        self.size = size
        self.clauses: list[tuple[int, ...]] = []
        self.num_vars = 0
        self._type_var: dict[tuple[int, str], int] = {}
        self._edge_var: dict[tuple[int, str, int], int] = {}
        for node in range(size):
            for type_name in object_types:
                self._type_var[(node, type_name)] = self._fresh()
        for source in range(size):
            for role in roles:
                for target in range(size):
                    self._edge_var[(source, role, target)] = self._fresh()

    def _fresh(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def type_var(self, node: int, type_name: str) -> int:
        return self._type_var[(node, type_name)]

    def edge_var(self, source: int, role: str, target: int) -> int:
        return self._edge_var[(source, role, target)]

    def _labels_below(self, type_name: str) -> list[str]:
        return [
            label
            for label in self.object_types
            if is_named_subtype(self.schema, label, type_name)
        ]

    # ------------------------------------------------------------------ #

    def encode(self, target_type: str) -> None:
        schema, size = self.schema, self.size
        nodes = range(size)

        # node 0 carries the queried type
        self.clauses.append((self.type_var(0, target_type),))

        # exactly one object type per node
        for node in nodes:
            self.clauses.append(
                tuple(self.type_var(node, t) for t in self.object_types)
            )
            for first, second in itertools.combinations(self.object_types, 2):
                self.clauses.append(
                    (-self.type_var(node, first), -self.type_var(node, second))
                )

        declarations: dict[str, list[tuple[str, object]]] = {role: [] for role in self.roles}
        for type_name, field_name, field_def in schema.field_declarations():
            if field_def.is_relationship and type_name in schema.object_types:
                declarations[field_name].append((type_name, field_def))

        # SS4 + WS3: an edge needs a declaring source type, and per declaring
        # type the target must lie below the declared base
        for role in self.roles:
            declaring = declarations[role]
            declaring_names = [name for name, _field in declaring]
            for source in nodes:
                for target in nodes:
                    edge = self.edge_var(source, role, target)
                    self.clauses.append(
                        (-edge,)
                        + tuple(self.type_var(source, name) for name in declaring_names)
                    )
                    for name, field_def in declaring:
                        allowed = self._labels_below(field_def.type.base)
                        self.clauses.append(
                            (-edge, -self.type_var(source, name))
                            + tuple(self.type_var(target, t) for t in allowed)
                        )
                    # WS4: non-list declarations allow one outgoing edge
            for name, field_def in declaring:
                if field_def.type.is_list:
                    continue
                for source in nodes:
                    for t1, t2 in itertools.combinations(nodes, 2):
                        self.clauses.append(
                            (
                                -self.type_var(source, name),
                                -self.edge_var(source, role, t1),
                                -self.edge_var(source, role, t2),
                            )
                        )

        # DS2: @noLoops
        for site in sites.no_loops_sites(schema):
            for label in self._labels_below(site.type_name):
                for node in nodes:
                    self.clauses.append(
                        (
                            -self.type_var(node, label),
                            -self.edge_var(node, site.field_name, node),
                        )
                    )

        # DS6: @required relationships
        for site in sites.required_edge_sites(schema):
            for label in self._labels_below(site.type_name):
                for node in nodes:
                    self.clauses.append(
                        (-self.type_var(node, label),)
                        + tuple(
                            self.edge_var(node, site.field_name, target)
                            for target in nodes
                        )
                    )

        # DS3: @uniqueForTarget -- at most one incoming f-edge from sources
        # below the declaring type
        for site in sites.unique_for_target_sites(schema):
            source_labels = self._labels_below(site.type_name)
            for target in nodes:
                for s1, s2 in itertools.combinations(nodes, 2):
                    for l1 in source_labels:
                        for l2 in source_labels:
                            self.clauses.append(
                                (
                                    -self.type_var(s1, l1),
                                    -self.type_var(s2, l2),
                                    -self.edge_var(s1, site.field_name, target),
                                    -self.edge_var(s2, site.field_name, target),
                                )
                            )
                # a single source with... parallel edges are impossible in
                # this encoding (one variable per triple), so same-source
                # double-counting cannot occur

        # DS4: @requiredForTarget -- via witness variables w(source):
        # w -> edge ∧ source-below-t; target-typed -> ⋁ w
        for site in sites.required_for_target_sites(schema):
            source_labels = self._labels_below(site.type_name)
            target_labels = self._labels_below(site.field.type.base)
            for target in nodes:
                witnesses = []
                for source in nodes:
                    witness = self._fresh()
                    witnesses.append(witness)
                    self.clauses.append(
                        (-witness, self.edge_var(source, site.field_name, target))
                    )
                    self.clauses.append(
                        (-witness,)
                        + tuple(self.type_var(source, label) for label in source_labels)
                    )
                for label in target_labels:
                    self.clauses.append(
                        (-self.type_var(target, label),) + tuple(witnesses)
                    )

    def decode(self, assignment: dict[int, bool]):
        labels = []
        for node in range(self.size):
            label = next(
                t for t in self.object_types if assignment[self.type_var(node, t)]
            )
            labels.append(label)
        edges = frozenset(
            (source, role, target)
            for (source, role, target), var in self._edge_var.items()
            if assignment[var]
        )
        return tuple(labels), edges
