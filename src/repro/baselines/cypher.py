"""Export to Neo4j: Cypher constraint DDL and data-loading statements.

Section 2.1 of the paper surveys the proprietary schema facilities of
Property Graph systems — Neo4j's Cypher DDL among them — and notes that
none has a formal semantics.  This module makes the comparison concrete by
compiling an SDL schema into the closest Cypher 3.5-style DDL:

* ``@key(fields: ["f"])`` on a single field → ``CREATE CONSTRAINT ... IS UNIQUE``;
* ``@required`` on an attribute → ``CREATE CONSTRAINT ... IS NOT NULL``
  (property-existence constraint);
* composite ``@key`` → a node-key constraint.

Everything else the paper's proposal can express — target typing of edges,
cardinalities (WS4), ``@distinct``, ``@noLoops``, ``@uniqueForTarget``,
``@requiredForTarget``, value typing beyond existence — has **no Cypher DDL
equivalent** and is reported in :attr:`CypherExport.unsupported`, which is
the measured content of the paper's "systems support different kinds of
constraints [but no commonly agreed schema]" observation.

:func:`graph_to_cypher` additionally renders any Property Graph as Cypher
``CREATE`` statements so exported schema + data can be loaded into a real
Neo4j instance for eyeballing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..schema.directives import (
    DISTINCT,
    NO_LOOPS,
    REQUIRED,
    REQUIRED_FOR_TARGET,
    UNIQUE_FOR_TARGET,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import PropertyGraph
    from ..schema.model import GraphQLSchema


@dataclass
class CypherExport:
    """The DDL statements plus everything Cypher cannot express."""

    statements: list[str] = field(default_factory=list)
    unsupported: list[str] = field(default_factory=list)

    @property
    def ddl(self) -> str:
        return "\n".join(statement + ";" for statement in self.statements) + (
            "\n" if self.statements else ""
        )


def schema_to_cypher_ddl(schema: "GraphQLSchema") -> CypherExport:
    """Compile *schema* into Cypher constraint DDL, reporting the remainder."""
    export = CypherExport()
    for type_name, object_type in sorted(schema.object_types.items()):
        variable = type_name[0].lower()
        for key in object_type.keys:
            scalar_keys = [
                key_field
                for key_field in key
                if (ref := schema.type_f(type_name, key_field)) is not None
                and schema.is_scalar_type(ref.base)
            ]
            if not scalar_keys:
                export.unsupported.append(
                    f"type {type_name}: @key({', '.join(key)}) has no scalar fields"
                )
                continue
            if len(scalar_keys) == 1:
                export.statements.append(
                    f"CREATE CONSTRAINT ON ({variable}:{type_name}) "
                    f"ASSERT {variable}.{scalar_keys[0]} IS UNIQUE"
                )
            else:
                rendered = ", ".join(
                    f"{variable}.{key_field}" for key_field in scalar_keys
                )
                export.statements.append(
                    f"CREATE CONSTRAINT ON ({variable}:{type_name}) "
                    f"ASSERT ({rendered}) IS NODE KEY"
                )
        for field_def in object_type.fields:
            where = f"{type_name}.{field_def.name}"
            if field_def.is_attribute:
                if field_def.has_directive(REQUIRED):
                    export.statements.append(
                        f"CREATE CONSTRAINT ON ({variable}:{type_name}) "
                        f"ASSERT exists({variable}.{field_def.name})"
                    )
                continue
            # relationship declarations: Cypher DDL has no schema for edges
            export.unsupported.append(
                f"{where}: edge target typing ({field_def.type}) has no Cypher DDL"
            )
            if not field_def.type.is_list:
                export.unsupported.append(f"{where}: at-most-one cardinality (WS4)")
            for directive in (
                REQUIRED,
                DISTINCT,
                NO_LOOPS,
                UNIQUE_FOR_TARGET,
                REQUIRED_FOR_TARGET,
            ):
                if field_def.has_directive(directive):
                    export.unsupported.append(f"{where}: @{directive}")
            for argument in field_def.arguments:
                if argument.type.non_null and not argument.has_default:
                    export.unsupported.append(
                        f"{where}({argument.name}): mandatory edge property"
                    )
    return export


def _cypher_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, tuple):
        return "[" + ", ".join(_cypher_value(item) for item in value) + "]"
    escaped = str(value).replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def _cypher_props(properties: dict) -> str:
    if not properties:
        return ""
    inner = ", ".join(
        f"{name}: {_cypher_value(value)}" for name, value in sorted(properties.items())
    )
    return " {" + inner + "}"


def graph_to_cypher(graph: "PropertyGraph") -> str:
    """Render *graph* as a single Cypher CREATE script.

    Node identifiers become Cypher variables (sanitised); each element's
    original id is preserved in a ``_id`` property so the load is lossless.
    """
    lines = []
    variables: dict[object, str] = {}
    for index, node in enumerate(sorted(graph.nodes, key=str)):
        variable = f"n{index}"
        variables[node] = variable
        properties = dict(graph.properties(node))
        properties["_id"] = str(node)
        lines.append(
            f"CREATE ({variable}:{graph.label(node)}{_cypher_props(properties)})"
        )
    for index, edge in enumerate(sorted(graph.edges, key=str)):
        source, target = graph.endpoints(edge)
        properties = dict(graph.properties(edge))
        properties["_id"] = str(edge)
        lines.append(
            f"CREATE ({variables[source]})-[:{graph.label(edge)}"
            f"{_cypher_props(properties)}]->({variables[target]})"
        )
    return "\n".join(lines) + ("\n" if lines else "")
