"""Translation from GraphQL-SDL schemas to Angles' schema model.

The translation is intentionally lossy where Angles' model is less
expressive, and the loss is *reported*: the returned
:class:`TranslationResult` lists every constraint of the source schema that
the Angles schema cannot capture.  Experiment E8 uses this to quantify the
expressiveness gap between the paper's proposal and the only prior formal
Property Graph schema model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..schema.directives import (
    DISTINCT,
    NO_LOOPS,
    REQUIRED,
    REQUIRED_FOR_TARGET,
    UNIQUE_FOR_TARGET,
)
from .angles import AnglesSchema, EdgeType, NodeType, PropertyType

if TYPE_CHECKING:  # pragma: no cover
    from ..schema.model import GraphQLSchema

_SCALAR_TO_ANGLES = {
    "Int": "INTEGER",
    "Float": "REAL",
    "String": "STRING",
    "Boolean": "BOOLEAN",
    "ID": "ANY",
}


@dataclass
class TranslationResult:
    """An Angles schema plus everything that was lost in translation."""

    schema: AnglesSchema
    lost_constraints: list[str] = field(default_factory=list)


def sdl_to_angles(schema: "GraphQLSchema") -> TranslationResult:
    """Translate *schema* into Angles' model, recording what cannot be kept."""
    result = TranslationResult(AnglesSchema())
    lost = result.lost_constraints

    for type_name, object_type in sorted(schema.object_types.items()):
        properties: list[PropertyType] = []
        single_field_keys = {
            key[0] for key in object_type.keys if len(key) == 1
        }
        for key in object_type.keys:
            if len(key) > 1:
                lost.append(
                    f"{type_name}: composite @key({', '.join(key)}) "
                    "(Angles uniqueness is per-property)"
                )
        for field_def in object_type.fields:
            if not field_def.is_attribute:
                continue
            value_type = _SCALAR_TO_ANGLES.get(field_def.type.base, "ANY")
            if schema.scalars.is_enum(field_def.type.base):
                value_type = "STRING"
                lost.append(
                    f"{type_name}.{field_def.name}: enum domain "
                    f"{field_def.type.base} widens to STRING"
                )
            if field_def.type.is_list:
                lost.append(
                    f"{type_name}.{field_def.name}: array element typing "
                    f"({field_def.type}) widens to element-type check"
                )
            properties.append(
                PropertyType(
                    name=field_def.name,
                    value_type=value_type,
                    mandatory=field_def.has_directive(REQUIRED),
                    unique=field_def.name in single_field_keys,
                )
            )
        result.schema.add_node_type(NodeType(type_name, tuple(properties)))

    for type_name, field_name, field_def in schema.field_declarations():
        if not field_def.is_relationship or type_name not in schema.object_types:
            continue
        edge_properties = tuple(
            PropertyType(
                name=argument.name,
                value_type=_SCALAR_TO_ANGLES.get(argument.type.base, "ANY"),
                mandatory=argument.type.non_null and not argument.has_default,
            )
            for argument in field_def.arguments
        )
        max_out = None if field_def.type.is_list else 1
        min_out = 1 if field_def.has_directive(REQUIRED) else 0
        targets = sorted(schema.object_types_below(field_def.type.base))
        if not targets:
            lost.append(
                f"{type_name}.{field_name}: target {field_def.type.base} has no "
                "object types"
            )
        for target in targets:
            result.schema.add_edge_type(
                EdgeType(
                    source=type_name,
                    label=field_name,
                    target=target,
                    properties=edge_properties,
                    min_out=min_out if len(targets) == 1 else 0,
                    max_out=max_out,
                )
            )
        if min_out == 1 and len(targets) > 1:
            lost.append(
                f"{type_name}.{field_name}: @required over the union/interface "
                f"target {field_def.type.base} (Angles cardinality is per edge type)"
            )
        for directive_name, description in (
            (DISTINCT, "@distinct (edge-identity constraint)"),
            (NO_LOOPS, "@noLoops"),
            (UNIQUE_FOR_TARGET, "@uniqueForTarget (target-side cardinality)"),
            (REQUIRED_FOR_TARGET, "@requiredForTarget (target-side participation)"),
        ):
            if field_def.has_directive(directive_name):
                lost.append(f"{type_name}.{field_name}: {description}")
    return result
