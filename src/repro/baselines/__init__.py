"""Baseline schema models (Angles [3]) and translations into them."""

from .angles import (
    AnglesSchema,
    AnglesValidator,
    AnglesViolation,
    EdgeType,
    NodeType,
    PropertyType,
)
from .cypher import CypherExport, graph_to_cypher, schema_to_cypher_ddl
from .translate import TranslationResult, sdl_to_angles

__all__ = [
    "AnglesSchema",
    "AnglesValidator",
    "AnglesViolation",
    "CypherExport",
    "EdgeType",
    "NodeType",
    "PropertyType",
    "TranslationResult",
    "graph_to_cypher",
    "schema_to_cypher_ddl",
    "sdl_to_angles",
]
