"""Angles' Property Graph Schema model [3] -- the paper's research baseline.

Renzo Angles, *The Property Graph Database Model* (AMW 2018), defines a
schema as node types and edge types with property-type constraints:

* a set of node types, each with a set of allowed properties (name, value
  type), some marked mandatory;
* a set of edge types (source node type, label, target node type), each
  with allowed properties, some mandatory;
* optional extra constraints the paper outlines: unique (key) properties
  and edge-cardinality bounds.

The model is *structural*: it has no interfaces, unions, wrapping types or
target-side constraints (no @uniqueForTarget/@requiredForTarget
equivalents), which is exactly the expressiveness gap experiment E8
quantifies.  :class:`AnglesValidator` validates a Property Graph against an
Angles schema; :mod:`repro.baselines.translate` maps GraphQL-SDL schemas
into this model (losing what cannot be expressed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..pg.values import value_signature

if TYPE_CHECKING:  # pragma: no cover
    from ..pg.model import PropertyGraph

#: Value types of the Angles model, with membership predicates.
_VALUE_TYPES = {
    "INTEGER": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "REAL": lambda value: isinstance(value, float)
    or (isinstance(value, int) and not isinstance(value, bool)),
    "STRING": lambda value: isinstance(value, str),
    "BOOLEAN": lambda value: isinstance(value, bool),
    "ANY": lambda value: True,
}


@dataclass(frozen=True)
class PropertyType:
    """An allowed property: name, value type, mandatoriness, uniqueness."""

    name: str
    value_type: str = "ANY"
    mandatory: bool = False
    unique: bool = False

    def admits(self, value: object) -> bool:
        predicate = _VALUE_TYPES.get(self.value_type)
        if predicate is None:
            raise ValueError(f"unknown Angles value type: {self.value_type}")
        if isinstance(value, tuple):
            return all(predicate(item) for item in value)
        return predicate(value)


@dataclass(frozen=True)
class NodeType:
    """A node type: a label plus its allowed properties."""

    label: str
    properties: tuple[PropertyType, ...] = ()

    def property_type(self, name: str) -> PropertyType | None:
        for prop in self.properties:
            if prop.name == name:
                return prop
        return None


@dataclass(frozen=True)
class EdgeType:
    """An edge type: (source label, edge label, target label) + properties.

    ``max_out`` bounds the number of such edges leaving one source node
    (None = unbounded); ``min_out`` forces them (0 = optional).  These
    realise the cardinality constraints Angles outlines.
    """

    source: str
    label: str
    target: str
    properties: tuple[PropertyType, ...] = ()
    min_out: int = 0
    max_out: int | None = None

    def property_type(self, name: str) -> PropertyType | None:
        for prop in self.properties:
            if prop.name == name:
                return prop
        return None


@dataclass
class AnglesSchema:
    """A Property Graph schema in Angles' model."""

    node_types: dict[str, NodeType] = field(default_factory=dict)
    edge_types: list[EdgeType] = field(default_factory=list)

    def add_node_type(self, node_type: NodeType) -> None:
        self.node_types[node_type.label] = node_type

    def add_edge_type(self, edge_type: EdgeType) -> None:
        self.edge_types.append(edge_type)

    def edge_types_for(self, source: str, label: str) -> list[EdgeType]:
        return [
            edge_type
            for edge_type in self.edge_types
            if edge_type.source == source and edge_type.label == label
        ]


@dataclass(frozen=True)
class AnglesViolation:
    """A violation of an Angles schema."""

    kind: str
    element: object
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} ({self.element}): {self.detail}"


class AnglesValidator:
    """Validates Property Graphs against an Angles schema."""

    def __init__(self, schema: AnglesSchema) -> None:
        self.schema = schema

    def validate(self, graph: "PropertyGraph") -> list[AnglesViolation]:
        violations: list[AnglesViolation] = []
        violations.extend(self._check_nodes(graph))
        violations.extend(self._check_edges(graph))
        violations.extend(self._check_uniqueness(graph))
        return violations

    def conforms(self, graph: "PropertyGraph") -> bool:
        return not self.validate(graph)

    # ------------------------------------------------------------------ #

    def _check_nodes(self, graph: "PropertyGraph"):
        for node in graph.nodes:
            node_type = self.schema.node_types.get(graph.label(node))
            if node_type is None:
                yield AnglesViolation(
                    "unknown-node-type", node, f"label {graph.label(node)}"
                )
                continue
            properties = graph.properties(node)
            for name, value in properties.items():
                prop = node_type.property_type(name)
                if prop is None:
                    yield AnglesViolation(
                        "undeclared-property", node, f"property {name}"
                    )
                elif not prop.admits(value):
                    yield AnglesViolation(
                        "property-type", node, f"{name}={value!r} not {prop.value_type}"
                    )
            for prop in node_type.properties:
                if prop.mandatory and prop.name not in properties:
                    yield AnglesViolation(
                        "missing-property", node, f"mandatory property {prop.name}"
                    )

    def _check_edges(self, graph: "PropertyGraph"):
        for edge in graph.edges:
            source, target = graph.endpoints(edge)
            candidates = [
                edge_type
                for edge_type in self.schema.edge_types_for(
                    graph.label(source), graph.label(edge)
                )
                if edge_type.target == graph.label(target)
            ]
            if not candidates:
                yield AnglesViolation(
                    "unknown-edge-type",
                    edge,
                    f"({graph.label(source)})-[{graph.label(edge)}]->"
                    f"({graph.label(target)})",
                )
                continue
            edge_type = candidates[0]
            properties = graph.properties(edge)
            for name, value in properties.items():
                prop = edge_type.property_type(name)
                if prop is None:
                    yield AnglesViolation(
                        "undeclared-property", edge, f"edge property {name}"
                    )
                elif not prop.admits(value):
                    yield AnglesViolation(
                        "property-type", edge, f"{name}={value!r} not {prop.value_type}"
                    )
            for prop in edge_type.properties:
                if prop.mandatory and prop.name not in properties:
                    yield AnglesViolation(
                        "missing-property", edge, f"mandatory edge property {prop.name}"
                    )
        # cardinality bounds per (source node, edge type)
        for edge_type in self.schema.edge_types:
            if edge_type.min_out == 0 and edge_type.max_out is None:
                continue
            for node in graph.nodes_with_label(edge_type.source):
                count = sum(
                    1
                    for out_edge in graph.out_edges(node, edge_type.label)
                    if graph.label(graph.endpoints(out_edge)[1]) == edge_type.target
                )
                if count < edge_type.min_out:
                    yield AnglesViolation(
                        "cardinality",
                        node,
                        f"needs ≥{edge_type.min_out} {edge_type.label} edges, has {count}",
                    )
                if edge_type.max_out is not None and count > edge_type.max_out:
                    yield AnglesViolation(
                        "cardinality",
                        node,
                        f"allows ≤{edge_type.max_out} {edge_type.label} edges, has {count}",
                    )

    def _check_uniqueness(self, graph: "PropertyGraph"):
        for label, node_type in self.schema.node_types.items():
            for prop in node_type.properties:
                if not prop.unique:
                    continue
                seen: dict[tuple, object] = {}
                for node in graph.nodes_with_label(label):
                    if not graph.has_property(node, prop.name):
                        continue
                    signature = value_signature(graph.property_value(node, prop.name))
                    if signature in seen:
                        yield AnglesViolation(
                            "uniqueness",
                            node,
                            f"duplicate {prop.name} with node {seen[signature]}",
                        )
                    else:
                        seen[signature] = node
