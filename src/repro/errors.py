"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Subsystems refine it:

* :class:`GraphError` -- malformed Property Graphs (Definition 2.1 violations
  such as reusing an identifier for both a node and an edge).
* :class:`SDLSyntaxError` -- lexer/parser failures, carrying a source position.
* :class:`SchemaError` -- a schema that cannot be built (unknown types,
  inadmissible wrapping shapes, duplicate definitions).
* :class:`ConsistencyError` -- a schema that violates interface or directives
  consistency (Definitions 4.3/4.4); such schemas are rejected before
  validation, because the paper assumes all schemas are consistent.
* :class:`QueryError` -- errors in the GraphQL-API extension (Section 3.6).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """A Property Graph violates the structural rules of Definition 2.1."""


class SDLSyntaxError(ReproError):
    """A syntax error in a GraphQL SDL (or query) document.

    Attributes:
        message: Human-readable description of the problem.
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")


class SchemaError(ReproError):
    """A schema definition cannot be turned into a formal schema."""


class ConsistencyError(SchemaError):
    """A schema violates Definition 4.3 or 4.4 (interface/directives consistency)."""


class QueryError(ReproError):
    """A GraphQL query cannot be executed against the graph/API schema."""
