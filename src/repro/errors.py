"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Subsystems refine it:

* :class:`GraphError` -- malformed Property Graphs (Definition 2.1 violations
  such as reusing an identifier for both a node and an edge).
* :class:`GraphLoadError` -- a graph *document* (JSON on disk) that cannot
  even be decoded into a Property Graph, carrying file/offset context.
* :class:`SDLSyntaxError` -- lexer/parser failures, carrying a source position.
* :class:`SchemaError` -- a schema that cannot be built (unknown types,
  inadmissible wrapping shapes, duplicate definitions).
* :class:`ConsistencyError` -- a schema that violates interface or directives
  consistency (Definitions 4.3/4.4); such schemas are rejected before
  validation, because the paper assumes all schemas are consistent.
* :class:`QueryError` -- errors in the GraphQL-API extension (Section 3.6).
* :class:`BudgetExhaustedError` -- a cooperative execution budget (deadline,
  node count, expansion count, memory estimate) ran out before a decision
  procedure finished; carries a structured :class:`BudgetReason`.
* :class:`WorkerFailureError` -- a parallel-validation shard could not be
  completed even after retries and executor fallback.
* :class:`FaultConfigError` -- a malformed ``PGSCHEMA_FAULTS`` specification.
* :class:`ServiceError` / :class:`OverloadedError` -- the schema-registry
  service cannot start (bad registry dir, unbindable address) or sheds load
  (admission queue full; surfaced to HTTP clients as a typed 503).

Uniform taxonomy: every class carries a stable machine-readable ``code``
(``E_...``) and the CLI ``exit_code`` it maps to.  Command-line error
rendering goes through :func:`render_error` so every subcommand reports
failures the same way (one line, code included).
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by this library.

    Class attributes:
        code: Stable machine-readable identifier (``E_...``), safe to match
            on across releases.
        exit_code: The process exit status the CLI maps this error to.
    """

    code = "E_GENERIC"
    exit_code = 2


class GraphError(ReproError):
    """A Property Graph violates the structural rules of Definition 2.1."""

    code = "E_GRAPH"


class GraphLoadError(GraphError):
    """A graph document (JSON) could not be decoded into a Property Graph.

    Raised for malformed/truncated JSON, wrong top-level shapes, and missing
    required keys -- always with enough context (source name, element index,
    line/column/offset where known) to locate the problem.
    """

    code = "E_LOAD"

    def __init__(
        self,
        message: str,
        *,
        source: str | None = None,
        line: int | None = None,
        column: int | None = None,
        offset: int | None = None,
    ) -> None:
        self.source = source
        self.line = line
        self.column = column
        self.offset = offset
        where = ""
        if source:
            where = f" in {source}"
        if line is not None:
            where += f" at line {line}, column {column}"
            if offset is not None:
                where += f" (char {offset})"
        super().__init__(f"{message}{where}")


class SDLSyntaxError(ReproError):
    """A syntax error in a GraphQL SDL (or query) document.

    Attributes:
        message: Human-readable description of the problem.
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    code = "E_SYNTAX"

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")


class SchemaError(ReproError):
    """A schema definition cannot be turned into a formal schema."""

    code = "E_SCHEMA"


class ConsistencyError(SchemaError):
    """A schema violates Definition 4.3 or 4.4 (interface/directives consistency)."""

    code = "E_CONSISTENCY"


class QueryError(ReproError):
    """A GraphQL query cannot be executed against the graph/API schema."""

    code = "E_QUERY"


@dataclass(frozen=True)
class BudgetReason:
    """Structured explanation of why a budget-limited run stopped early.

    Attributes:
        dimension: Which limit ran out -- ``"deadline"``, ``"nodes"``,
            ``"expansions"``, ``"memory"``, ``"assignments"``,
            ``"decisions"`` or ``"cancelled"`` (the budget was cancelled
            by a portfolio race that was decided elsewhere).
        limit: The configured ceiling for that dimension (seconds for
            ``"deadline"``, counts/bytes otherwise).
        used: How much had been consumed when the budget tripped.
        site: The subsystem that noticed, e.g. ``"dl.tableau"`` or
            ``"validation.parallel"``.
    """

    dimension: str
    limit: float
    used: float
    site: str = ""

    def __str__(self) -> str:
        where = f" at {self.site}" if self.site else ""
        if self.dimension == "cancelled":
            return f"budget cancelled (race decided elsewhere){where}"
        if self.dimension == "deadline":
            return (
                f"deadline of {self.limit:g}s exceeded after {self.used:.3f}s{where}"
            )
        return (
            f"{self.dimension} budget of {self.limit:g} exhausted "
            f"(used {self.used:g}){where}"
        )


class BudgetExhaustedError(ReproError):
    """A cooperative execution budget ran out before the work finished.

    The answer is *unknown*, not wrong: callers configured with
    ``on_budget="unknown"`` receive a typed UNKNOWN/partial verdict carrying
    :attr:`reason` instead of this exception.
    """

    code = "E_BUDGET"
    exit_code = 3

    def __init__(self, reason: "BudgetReason | str") -> None:
        if isinstance(reason, str):
            reason = BudgetReason(dimension="nodes", limit=0, used=0, site=reason)
        self.reason = reason
        super().__init__(str(reason))

    def __reduce__(self):
        # keep the structured reason across process-pool pickling (the
        # default args-based reconstruction would collapse it to a string)
        return (self.__class__, (self.reason,))


class WorkerFailureError(ReproError):
    """A parallel shard failed even after retries and executor fallback."""

    code = "E_WORKER"

    def __init__(self, message: str, *, shard: int | None = None, attempts: int = 0) -> None:
        self.shard = shard
        self.attempts = attempts
        super().__init__(message)


class FaultConfigError(ReproError):
    """A malformed fault-injection specification (``PGSCHEMA_FAULTS``)."""

    code = "E_FAULTS"


class ServiceError(ReproError):
    """The schema-registry service cannot start or serve (bad registry
    directory, unbindable address, corrupt manifest).  CLI exit 2: these are
    operator-input problems, not undecided questions."""

    code = "E_SERVICE"


class OverloadedError(ServiceError):
    """The service admission queue is full.  Requests rejected this way get
    a *typed* refusal (HTTP 503 carrying this code) -- never a wrong or
    partial answer dressed up as a verdict."""

    code = "E_OVERLOAD"


def render_error(error: BaseException) -> str:
    """One-line, uniformly formatted rendering of an error for the CLI.

    ``ReproError`` subclasses render with their stable code; anything else
    (e.g. ``OSError`` from a missing file) falls back to ``E_IO``.
    """
    code = error.code if isinstance(error, ReproError) else "E_IO"
    return f"error[{code}]: {error}"


def exit_code_for(error: BaseException) -> int:
    """The CLI exit status for *error* (2 for non-library errors)."""
    return error.exit_code if isinstance(error, ReproError) else 2
