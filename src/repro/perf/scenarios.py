"""The registry of deterministic, seeded profiling scenarios.

Every engine the reproduction grew gets a tracked scenario -- parse, lint,
the dataflow analyzer, the indexed/parallel/columnar/stream validation
engines, portfolio satisfiability, CDC apply, and the warm service batch
path -- plus the *adversarial* families from :mod:`repro.workloads` that
stress the hard paths rather than the happy ones: deep interface lattices,
union fan-outs, pathological ``@key`` collision domains, and near-UNSAT
cardinality webs.

A scenario is a context manager factory: ``build(quick)`` performs the
one-time setup (generate the workload, spin up the service thread, write
the journal) and yields a zero-argument ``run`` callable; teardown happens
when the context exits.  :func:`run_scenario` times ``run`` -- one warm-up
execution (absorbing lazy imports, LRU fills and the analysis memo), then
``repeats`` timed samples -- under a scoped metrics observation whose
registry snapshot rides along in the recorded profile, so regressions stay
attributable to internal counters (plan-cache misses, tableau expansions,
shard sizes), not just wall clock.

Workload sizes are fixed per mode (``quick`` vs full) and every generator
is seeded, so two records on the same commit measure the *same* work.
"""

from __future__ import annotations

import gc
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Iterator

from .. import obs
from .store import Profile, environment_fingerprint

__all__ = [
    "SCENARIOS",
    "Scenario",
    "adversarial_families",
    "record_profiles",
    "run_scenario",
    "scenario",
    "select_scenarios",
]

DEFAULT_REPEATS = 5

BuildFn = Callable[[bool], ContextManager[Callable[[], object]]]


@dataclass(frozen=True)
class Scenario:
    """One registered profiling scenario."""

    id: str
    family: str
    description: str
    build: BuildFn
    adversarial: bool = False
    meta: dict[str, Any] = field(default_factory=dict)


SCENARIOS: dict[str, Scenario] = {}


def scenario(
    id: str, family: str, description: str, adversarial: bool = False
) -> Callable[[Callable[[bool], Iterator[Callable[[], object]]]], BuildFn]:
    """Register a generator function as a scenario build context."""

    def register(
        build: Callable[[bool], Iterator[Callable[[], object]]],
    ) -> BuildFn:
        managed: BuildFn = contextmanager(build)
        if id in SCENARIOS:
            raise ValueError(f"duplicate scenario id {id!r}")
        SCENARIOS[id] = Scenario(
            id=id,
            family=family,
            description=description,
            build=managed,
            adversarial=adversarial,
        )
        return managed

    return register


def adversarial_families() -> list[str]:
    return sorted(
        {entry.family for entry in SCENARIOS.values() if entry.adversarial}
    )


def select_scenarios(only: list[str] | None = None) -> list[Scenario]:
    """Scenarios in registry order, optionally filtered by id or prefix.

    Each ``only`` entry matches an exact scenario id, an id prefix
    (``validate.``), or a family name; unknown selectors raise with the
    known ids so CLI typos fail fast.
    """
    entries = list(SCENARIOS.values())
    if not only:
        return entries
    selected: dict[str, Scenario] = {}
    for pattern in only:
        matches = [
            entry
            for entry in entries
            if entry.id == pattern
            or entry.id.startswith(pattern)
            or entry.family == pattern
        ]
        if not matches:
            known = ", ".join(sorted(SCENARIOS))
            raise ValueError(f"unknown scenario {pattern!r}; known: {known}")
        for entry in matches:
            selected[entry.id] = entry
    return [entry for entry in entries if entry.id in selected]


def run_scenario(
    entry: Scenario, *, quick: bool = False, repeats: int = DEFAULT_REPEATS
) -> tuple[tuple[float, ...], dict[str, Any]]:
    """Time one scenario: per-repeat wall samples plus its metrics snapshot.

    The scenario runs under a private scoped observation, so recording
    composes with (and never clobbers) any ``--trace``/``--metrics``
    observation installed by the caller.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    previous = obs.active()
    samples: list[float] = []
    with entry.build(quick) as run:
        observation = obs.install(None, obs.MetricsRegistry())
        gc_was_enabled = gc.isenabled()
        try:
            run()  # warm-up: lazy imports, LRU caches, analysis memo
            # collect-then-disable: a GC pause (import-time garbage hits
            # threshold mid-loop) would otherwise land in one sample
            gc.collect()
            gc.disable()
            for _ in range(repeats):
                start = time.perf_counter()
                run()
                samples.append(time.perf_counter() - start)
            assert observation.registry is not None
            metrics = observation.registry.snapshot()
        finally:
            if gc_was_enabled:
                gc.enable()
            if previous is not None:
                obs.install(previous.tracer, previous.registry)
            else:
                obs.uninstall()
    return tuple(samples), metrics


def record_profiles(
    *,
    commit: str,
    run: int,
    quick: bool = False,
    repeats: int = DEFAULT_REPEATS,
    only: list[str] | None = None,
    progress: Callable[[str, float], None] | None = None,
) -> list[Profile]:
    """Run the (selected) registry and package the results as profiles."""
    env = environment_fingerprint()
    profiles: list[Profile] = []
    for entry in select_scenarios(only):
        samples, metrics = run_scenario(entry, quick=quick, repeats=repeats)
        profiles.append(
            Profile(
                commit=commit,
                run=run,
                scenario=entry.id,
                family=entry.family,
                samples=samples,
                env=env,
                quick=quick,
                metrics=metrics,
                meta={
                    "repeats": repeats,
                    "adversarial": entry.adversarial,
                    "description": entry.description,
                },
            )
        )
        if progress is not None:
            progress(entry.id, min(samples))
    return profiles


# --------------------------------------------------------------------------- #
# core-engine scenarios
# --------------------------------------------------------------------------- #


@scenario("parse.corpus", "parse", "parse + build every paper corpus schema")
def _parse_corpus(quick: bool) -> Iterator[Callable[[], object]]:
    from ..schema import parse_schema
    from ..workloads import CORPUS

    texts = [entry.sdl for entry in CORPUS.values()]
    rounds = 1 if quick else 3

    def run() -> object:
        for _ in range(rounds):
            for sdl in texts:
                parse_schema(sdl, check=False)
        return None

    yield run


@scenario("lint.corpus", "lint", "the PG001-PG018 rule set over the corpus")
def _lint_corpus(quick: bool) -> Iterator[Callable[[], object]]:
    from ..lint import lint_schema
    from ..workloads import CORPUS, load

    schemas = [load(name) for name in CORPUS]
    rounds = 1 if quick else 3

    def run() -> object:
        for _ in range(rounds):
            for schema in schemas:
                lint_schema(schema)
        return None

    yield run


@scenario("analysis.corpus", "analysis", "all dataflow fixpoint passes, cold")
def _analysis_corpus(quick: bool) -> Iterator[Callable[[], object]]:
    from ..analysis import analysis_cache_clear, analyze_schema
    from ..workloads import CORPUS, load

    names = list(CORPUS)[: 6 if quick else len(CORPUS)]
    schemas = [load(name) for name in names]

    def run() -> object:
        analysis_cache_clear()
        for schema in schemas:
            analyze_schema(schema)
        return None

    yield run


@scenario("validate.indexed", "validate", "indexed engine, user/session graph")
def _validate_indexed(quick: bool) -> Iterator[Callable[[], object]]:
    from ..validation import IndexedValidator, compile_plan
    from ..workloads import load, user_session_graph

    schema = load("user_session_edge_props")
    graph = user_session_graph(60 if quick else 600, 2, seed=7)
    validator = IndexedValidator(schema, plan=compile_plan(schema))
    yield lambda: validator.validate(graph)


@scenario("validate.parallel", "validate", "sharded engine, 2 thread workers")
def _validate_parallel(quick: bool) -> Iterator[Callable[[], object]]:
    from ..validation import ParallelValidator, compile_plan
    from ..workloads import load, user_session_graph

    schema = load("user_session_edge_props")
    graph = user_session_graph(60 if quick else 600, 2, seed=7)
    validator = ParallelValidator(schema, jobs=2, plan=compile_plan(schema))
    yield lambda: validator.validate(graph)


@scenario("validate.columnar", "validate", "column-sweeping kernel, frozen graph")
def _validate_columnar(quick: bool) -> Iterator[Callable[[], object]]:
    from ..pg import freeze
    from ..validation import ParallelValidator, compile_plan
    from ..workloads import load, user_session_graph

    schema = load("user_session_edge_props")
    frozen = freeze(user_session_graph(60 if quick else 600, 2, seed=7))
    validator = ParallelValidator(schema, jobs=1, plan=compile_plan(schema))
    yield lambda: validator.validate(frozen)


@scenario("validate.stream", "validate", "out-of-core JSONL streaming engine")
def _validate_stream(quick: bool) -> Iterator[Callable[[], object]]:
    from ..pg.io import dump_graph_jsonl
    from ..validation import StreamValidator, compile_plan
    from ..workloads import load, user_session_graph

    schema = load("user_session_edge_props")
    graph = user_session_graph(40 if quick else 400, 2, seed=7)
    with tempfile.TemporaryDirectory(prefix="pgschema-perf-") as tmp:
        path = os.path.join(tmp, "graph.jsonl")
        with open(path, "w", encoding="utf-8") as fp:
            dump_graph_jsonl(graph, fp)
        validator = StreamValidator(
            schema, chunk_elements=64 if quick else 512, plan=compile_plan(schema)
        )
        yield lambda: validator.validate(path)


@scenario("sat.portfolio", "sat", "portfolio fan-out over a hub/chain schema")
def _sat_portfolio(quick: bool) -> Iterator[Callable[[], object]]:
    from ..satisfiability import SatCache, SatisfiabilityChecker
    from ..workloads import hub_chain_schema

    schema = hub_chain_schema(depth=3 if quick else 8, leaves=2 if quick else 6)

    def run() -> object:
        # a fresh SatCache per execution: the measured work is the sweep,
        # not the warm-cache lookup path
        checker = SatisfiabilityChecker(schema, cache=SatCache(schema))
        return checker.check_schema(find_witnesses=False, jobs=2)

    yield run


@scenario("cdc.apply", "cdc", "mutation-journal consume over the CDC engine")
def _cdc_apply(quick: bool) -> Iterator[Callable[[], object]]:
    from ..schema import parse_schema
    from ..validation import CDCConsumer
    from ..workloads import (
        MUTATION_SCHEMA_SDL,
        MutationWorkloadConfig,
        write_mutation_journal,
    )

    schema = parse_schema(MUTATION_SCHEMA_SDL)
    with tempfile.TemporaryDirectory(prefix="pgschema-perf-") as tmp:
        path = os.path.join(tmp, "journal.jsonl")
        write_mutation_journal(
            path,
            MutationWorkloadConfig(
                commits=6 if quick else 30, ops_per_commit=5, seed=11
            ),
        )
        yield lambda: CDCConsumer(schema, path).run()


@scenario("service.batch", "service", "warm batched serving over HTTP keep-alive")
def _service_batch(quick: bool) -> Iterator[Callable[[], object]]:
    from ..pg import graph_to_dict
    from ..service import ServiceClient, ServiceThread
    from ..workloads import CORPUS, user_session_graph

    requests = 4 if quick else 16
    document = graph_to_dict(user_session_graph(8, 2, seed=3))
    thread = ServiceThread(port=0)
    host, port = thread.start()
    try:
        with ServiceClient(host, port) as register_client:
            register_client.register(
                "perf", "users", CORPUS["user_session_edge_props"].sdl
            )

        def run() -> object:
            with ServiceClient(host, port) as client:
                for _ in range(requests):
                    status, payload = client.validate("perf", "users", document)
                    assert status == 200, payload
            return None

        yield run
    finally:
        thread.stop()


# --------------------------------------------------------------------------- #
# adversarial families (grammar-driven generators from repro.workloads)
# --------------------------------------------------------------------------- #


@scenario(
    "adversarial.lattice.sat",
    "adversarial.lattice",
    "deep interface/union lattice: ∀-meet resolution + looping models",
    adversarial=True,
)
def _adversarial_lattice(quick: bool) -> Iterator[Callable[[], object]]:
    from ..satisfiability import SatisfiabilityChecker
    from ..workloads import deep_lattice_schema

    schema = deep_lattice_schema(3 if quick else 5, 2)

    def run() -> object:
        checker = SatisfiabilityChecker(schema, cache=False)
        return checker.check_schema(find_witnesses=False, engine="serial")

    yield run


@scenario(
    "adversarial.union_fanout.sat",
    "adversarial.union_fanout",
    "suffix-union fan-outs: every field expands up to |members| alternatives",
    adversarial=True,
)
def _adversarial_union_fanout(quick: bool) -> Iterator[Callable[[], object]]:
    from ..satisfiability import SatisfiabilityChecker
    from ..workloads import union_fanout_schema

    schema = union_fanout_schema(
        members=4 if quick else 10, fields=4 if quick else 12
    )

    def run() -> object:
        checker = SatisfiabilityChecker(schema, cache=False)
        return checker.check_schema(find_witnesses=False, engine="serial")

    yield run


@scenario(
    "adversarial.key_collision.validate",
    "adversarial.key_collision",
    "pathological @key collision domains: DS7 over a saturated finite key space",
    adversarial=True,
)
def _adversarial_key_collision(quick: bool) -> Iterator[Callable[[], object]]:
    from ..validation import IndexedValidator, compile_plan
    from ..workloads import key_collision_graph, key_collision_schema

    blocks, enum_values = (3, 3) if quick else (6, 4)
    nodes_per_type = 40 if quick else 400
    schema = key_collision_schema(blocks, enum_values)
    graph = key_collision_graph(
        blocks, enum_values, nodes_per_type=nodes_per_type, seed=13
    )
    validator = IndexedValidator(schema, plan=compile_plan(schema))
    # DS7 reports one violation per colliding pair: nodes are dealt
    # round-robin over the 2*enum_values key tuples, so the count is
    # sum-over-tuples C(count, 2) per block
    domain = 2 * enum_values
    expected = blocks * sum(
        count * (count - 1) // 2
        for count in (
            nodes_per_type // domain + (1 if slot < nodes_per_type % domain else 0)
            for slot in range(domain)
        )
    )

    def run() -> object:
        report = validator.validate(graph)
        assert len(report.violations) == expected, len(report.violations)
        return report

    yield run


@scenario(
    "adversarial.cardinality_web.sat",
    "adversarial.cardinality_web",
    "near-UNSAT cardinality web: Example 6.1 blocks wired in a @required ring",
    adversarial=True,
)
def _adversarial_cardinality_web(quick: bool) -> Iterator[Callable[[], object]]:
    from ..satisfiability import SatisfiabilityChecker
    from ..workloads import cardinality_web_schema

    schema = cardinality_web_schema(2 if quick else 5)

    def run() -> object:
        checker = SatisfiabilityChecker(schema, cache=False)
        return checker.check_schema(find_witnesses=False, engine="serial")

    yield run
