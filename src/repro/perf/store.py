"""The per-commit profile store: append-only JSONL plus an atomic index.

A *profile* is one scenario's measurement batch: the commit it was recorded
at, the run number (one ``pgschema perf record`` invocation == one run),
the per-repeat wall-clock samples, an environment fingerprint, and -- when
the scenario ran under a metrics observation -- the obs registry snapshot,
so a regression is attributable to internal signals (plan-cache misses,
tableau expansions, shard sizes), not just wall clock.

Layout under the store root (default ``.perf/``)::

    .perf/profiles.jsonl   append-only, one profile object per line
    .perf/index.json       atomic summary (tmp + fsync + os.replace)

The JSONL file is the source of truth; the index is a cheap derived
summary and is rebuilt whenever it disagrees with the data file (so a
crash between the two writes can never corrupt the store).  A torn final
line -- the only state an interrupted append can leave -- is ignored on
read, mirroring the CDC journal's crash posture.

Every profile is schema-pinned: :data:`PROFILE_SCHEMA` is validated on
append *and* on read through the same mini JSON-schema checker the
metrics/trace exporters use, and the golden copy is checked in at
``docs/schemas/perf_profile.schema.json`` (a test asserts the two stay
byte-for-byte in sync).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
import sys
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import ReproError

__all__ = [
    "PROFILE_FORMAT",
    "PROFILE_SCHEMA",
    "PROFILE_VERSION",
    "PerfStoreError",
    "Profile",
    "ProfileStore",
    "environment_fingerprint",
]

PROFILE_FORMAT = "pgschema-perf-profile"
PROFILE_VERSION = 1

INDEX_FORMAT = "pgschema-perf-index"
INDEX_VERSION = 1


class PerfStoreError(ReproError):
    """A profile store that cannot be read or written (corrupt line,
    schema-violating record, unwritable root)."""

    code = "E_PERF"


#: The runtime copy of ``docs/schemas/perf_profile.schema.json``.  The
#: store validates every record against it on append and on read; the
#: checked-in golden file must match byte-for-byte (pinned by a test and
#: checkable via ``python -m repro.obs check``).
PROFILE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "format",
        "version",
        "commit",
        "run",
        "scenario",
        "family",
        "quick",
        "env",
        "samples",
        "stats",
    ],
    "properties": {
        "format": {"type": "string", "enum": [PROFILE_FORMAT]},
        "version": {"type": "integer", "minimum": 1},
        "commit": {"type": "string"},
        "run": {"type": "integer", "minimum": 1},
        "scenario": {"type": "string"},
        "family": {"type": "string"},
        "quick": {"type": "boolean"},
        "env": {
            "type": "object",
            "required": [
                "digest",
                "python",
                "implementation",
                "platform",
                "machine",
                "cpu_count",
            ],
            "properties": {
                "digest": {"type": "string"},
                "python": {"type": "string"},
                "implementation": {"type": "string"},
                "platform": {"type": "string"},
                "machine": {"type": "string"},
                "cpu_count": {"type": "integer", "minimum": 1},
            },
        },
        "samples": {
            "type": "array",
            "items": {"type": "number", "minimum": 0},
        },
        "stats": {
            "type": "object",
            "required": ["median", "mean", "min", "max"],
            "properties": {
                "median": {"type": "number", "minimum": 0},
                "mean": {"type": "number", "minimum": 0},
                "min": {"type": "number", "minimum": 0},
                "max": {"type": "number", "minimum": 0},
            },
        },
        "metrics": {"type": ["object", "null"]},
        "meta": {"type": "object"},
    },
}


def environment_fingerprint() -> dict[str, Any]:
    """Where a profile was measured: interpreter, platform, CPU budget.

    Timings are only comparable within one fingerprint, so the ``digest``
    (a stable hash of the other fields) keys every cross-run comparison.
    The same fingerprint is stamped into each ``BENCH_*.json`` artifact by
    the benchmark collector.
    """
    info: dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]
    return {**info, "digest": digest}


@dataclass(frozen=True)
class Profile:
    """One scenario's recorded measurement batch."""

    commit: str
    run: int
    scenario: str
    family: str
    samples: tuple[float, ...]
    env: dict[str, Any] = field(default_factory=environment_fingerprint)
    quick: bool = False
    metrics: dict[str, Any] | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.samples:
            raise PerfStoreError(
                f"profile {self.scenario!r}@{self.commit!r} has no samples"
            )

    @property
    def median(self) -> float:
        return float(statistics.median(self.samples))

    @property
    def best(self) -> float:
        return min(self.samples)

    def to_json(self) -> dict[str, Any]:
        return {
            "format": PROFILE_FORMAT,
            "version": PROFILE_VERSION,
            "commit": self.commit,
            "run": self.run,
            "scenario": self.scenario,
            "family": self.family,
            "quick": self.quick,
            "env": dict(self.env),
            "samples": list(self.samples),
            "stats": {
                "median": self.median,
                "mean": sum(self.samples) / len(self.samples),
                "min": min(self.samples),
                "max": max(self.samples),
            },
            "metrics": self.metrics,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Profile":
        problems = _check_profile(payload)
        if problems:
            raise PerfStoreError(
                "profile record violates the pinned schema: "
                + "; ".join(problems[:3])
            )
        return cls(
            commit=payload["commit"],
            run=payload["run"],
            scenario=payload["scenario"],
            family=payload["family"],
            samples=tuple(float(s) for s in payload["samples"]),
            env=dict(payload["env"]),
            quick=payload["quick"],
            metrics=payload.get("metrics"),
            meta=dict(payload.get("meta", {})),
        )


def _check_profile(payload: Any) -> list[str]:
    # imported lazily: obs.export imports nothing from perf, so this is the
    # dependency direction that keeps the layering acyclic
    from ..obs.export import check_schema

    return check_schema(payload, PROFILE_SCHEMA)


class ProfileStore:
    """Append-only, schema-pinned store of :class:`Profile` records."""

    DATA_NAME = "profiles.jsonl"
    INDEX_NAME = "index.json"

    def __init__(self, root: str) -> None:
        self.root = root

    @property
    def data_path(self) -> str:
        return os.path.join(self.root, self.DATA_NAME)

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, self.INDEX_NAME)

    def exists(self) -> bool:
        return os.path.exists(self.data_path)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def profiles(self) -> list[Profile]:
        """Every valid record, in append order.

        A torn *final* line (interrupted append) is silently ignored;
        corruption anywhere else raises :class:`PerfStoreError` with the
        line number.
        """
        if not self.exists():
            return []
        records: list[Profile] = []
        lines = self._raw_lines()
        for number, line in lines:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as bad:
                if number == lines[-1][0]:
                    break  # torn tail from an interrupted append
                raise PerfStoreError(
                    f"{self.data_path}:{number}: corrupt profile record: {bad}"
                ) from None
            records.append(Profile.from_json(payload))
        return records

    def _raw_lines(self) -> list[tuple[int, str]]:
        with open(self.data_path, "r", encoding="utf-8") as fp:
            return [
                (number, line)
                for number, line in enumerate(fp, start=1)
                if line.strip()
            ]

    def runs(self) -> dict[int, list[Profile]]:
        """Profiles grouped by run number, in run order."""
        grouped: dict[int, list[Profile]] = {}
        for profile in self.profiles():
            grouped.setdefault(profile.run, []).append(profile)
        return dict(sorted(grouped.items()))

    def last_run(self) -> int:
        index = self._load_index()
        if index is not None:
            return int(index.get("runs", 0))
        return max((p.run for p in self.profiles()), default=0)

    def commits(self) -> list[str]:
        """Distinct commits in first-recorded order."""
        seen: dict[str, None] = {}
        for profile in self.profiles():
            seen.setdefault(profile.commit, None)
        return list(seen)

    def scenarios(self) -> list[str]:
        return sorted({p.scenario for p in self.profiles()})

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def append(self, profiles: list[Profile]) -> None:
        """Append a batch of profiles and refresh the index atomically.

        Records are validated against :data:`PROFILE_SCHEMA` before any
        byte is written, so a malformed profile can never reach the data
        file.
        """
        if not profiles:
            return
        payloads = [profile.to_json() for profile in profiles]
        for payload in payloads:
            problems = _check_profile(payload)
            if problems:
                raise PerfStoreError(
                    "refusing to append a schema-violating profile: "
                    + "; ".join(problems[:3])
                )
        os.makedirs(self.root, exist_ok=True)
        self._drop_torn_tail()
        with open(self.data_path, "a", encoding="utf-8") as fp:
            for payload in payloads:
                fp.write(json.dumps(payload, sort_keys=True) + "\n")
            fp.flush()
            os.fsync(fp.fileno())
        self._write_index()

    def _drop_torn_tail(self) -> None:
        """Truncate a torn final line (interrupted append) before writing.

        Readers already skip the fragment; dropping it keeps the data file
        clean so the fragment can never end up mid-file after new appends.
        """
        try:
            fp = open(self.data_path, "rb+")
        except FileNotFoundError:
            return
        with fp:
            fp.seek(0, os.SEEK_END)
            size = fp.tell()
            if size == 0:
                return
            fp.seek(size - 1)
            if fp.read(1) == b"\n":
                return
            position = size
            while position > 0:
                step = min(4096, position)
                fp.seek(position - step)
                chunk = fp.read(step)
                cut = chunk.rfind(b"\n")
                if cut != -1:
                    fp.truncate(position - step + cut + 1)
                    return
                position -= step
            fp.truncate(0)

    def _write_index(self) -> None:
        profiles = self.profiles()
        index = {
            "format": INDEX_FORMAT,
            "version": INDEX_VERSION,
            "profiles": len(profiles),
            "runs": max((p.run for p in profiles), default=0),
            "commits": self._ordered_commits(profiles),
            "scenarios": sorted({p.scenario for p in profiles}),
            "last_commit": profiles[-1].commit if profiles else None,
            "env_digests": sorted({p.env.get("digest", "") for p in profiles}),
        }
        tmp = self.index_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fp:
            json.dump(index, fp, indent=2, sort_keys=True)
            fp.write("\n")
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, self.index_path)

    @staticmethod
    def _ordered_commits(profiles: list[Profile]) -> list[str]:
        seen: dict[str, None] = {}
        for profile in profiles:
            seen.setdefault(profile.commit, None)
        return list(seen)

    def _load_index(self) -> dict[str, Any] | None:
        """The index if it exists and agrees with the data file, else a
        freshly rebuilt one (crash between the two writes heals here)."""
        if not self.exists():
            return None
        try:
            with open(self.index_path, "r", encoding="utf-8") as fp:
                index = json.load(fp)
        except (OSError, json.JSONDecodeError):
            index = None
        if (
            not isinstance(index, dict)
            or index.get("format") != INDEX_FORMAT
            or index.get("profiles") != len(self._raw_lines())
        ):
            self._write_index()
            with open(self.index_path, "r", encoding="utf-8") as fp:
                loaded = json.load(fp)
            assert isinstance(loaded, dict)
            return loaded
        return index

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #

    def summary(self) -> dict[str, Any]:
        """The cheap health view surfaced by ``pgschema stats --json`` and
        the service's ``/v1/stats`` (see :func:`repro.perf.perf_summary`
        for the variant that adds the newest verdicts)."""
        index = self._load_index()
        if index is None:
            return {
                "store": self.root,
                "profiles": 0,
                "runs": 0,
                "scenarios": 0,
                "commits": 0,
                "last_commit": None,
            }
        return {
            "store": self.root,
            "profiles": index["profiles"],
            "runs": index["runs"],
            "scenarios": len(index["scenarios"]),
            "commits": len(index["commits"]),
            "last_commit": index["last_commit"],
        }

    def __iter__(self) -> Iterator[Profile]:
        return iter(self.profiles())

    def __len__(self) -> int:
        return len(self.profiles())
