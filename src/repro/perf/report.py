"""Reports over the profile store: run diffs, per-scenario trends, CI gate.

The shapes mirror perun's ``status``/``check`` split: :func:`diff_runs`
compares two recorded runs scenario-by-scenario through the detector and
is what ``pgschema perf diff``/``perf check`` render; :func:`trend_rows`
walks one scenario's history across every recorded run and backs
``pgschema perf trend``.  Both render to markdown (human) and JSON
(machine); the CI gate is just ``diff.has_degradation``.

Environment fingerprints gate comparability: a scenario whose baseline
and target were measured under different fingerprints is reported as
``incomparable`` rather than risked as a false verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .detect import Comparison, Thresholds, Verdict, compare_samples
from .store import Profile, ProfileStore

__all__ = [
    "DiffEntry",
    "DiffReport",
    "diff_runs",
    "perf_summary",
    "render_diff_markdown",
    "render_trend_markdown",
    "trend_rows",
]

#: Report-layer statuses for scenarios the detector cannot judge.
STATUS_COMPARED = "compared"
STATUS_ADDED = "added"
STATUS_REMOVED = "removed"
STATUS_INCOMPARABLE = "incomparable"


@dataclass(frozen=True)
class DiffEntry:
    """One scenario's row in a run diff."""

    scenario: str
    family: str
    status: str
    comparison: Comparison | None = None
    baseline: Profile | None = None
    target: Profile | None = None

    @property
    def verdict(self) -> str | None:
        return self.comparison.verdict if self.comparison else None

    def to_json(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "family": self.family,
            "status": self.status,
            "comparison": self.comparison.to_json() if self.comparison else None,
            "baseline_commit": self.baseline.commit if self.baseline else None,
            "target_commit": self.target.commit if self.target else None,
        }


@dataclass(frozen=True)
class DiffReport:
    """Every scenario's comparison between two recorded runs."""

    baseline_run: int
    target_run: int
    entries: tuple[DiffEntry, ...]

    @property
    def has_degradation(self) -> bool:
        return any(
            entry.comparison is not None and entry.comparison.is_degradation
            for entry in self.entries
        )

    @property
    def degradations(self) -> list[DiffEntry]:
        return [
            entry
            for entry in self.entries
            if entry.comparison is not None and entry.comparison.is_degradation
        ]

    def verdict_counts(self) -> dict[str, int]:
        counts = {verdict: 0 for verdict in Verdict.ALL}
        for entry in self.entries:
            if entry.comparison is not None:
                counts[entry.comparison.verdict] += 1
        return counts

    def to_json(self) -> dict[str, Any]:
        return {
            "baseline_run": self.baseline_run,
            "target_run": self.target_run,
            "has_degradation": self.has_degradation,
            "verdicts": self.verdict_counts(),
            "entries": [entry.to_json() for entry in self.entries],
        }


def _latest_by_scenario(profiles: list[Profile]) -> dict[str, Profile]:
    latest: dict[str, Profile] = {}
    for profile in profiles:
        latest[profile.scenario] = profile  # append order: last one wins
    return latest


def diff_runs(
    store: ProfileStore,
    baseline_run: int | None = None,
    target_run: int | None = None,
    thresholds: Thresholds | None = None,
) -> DiffReport:
    """Compare two runs scenario-by-scenario through the detector.

    Defaults to the last two recorded runs -- the ``perf check`` CI shape,
    where run N-1 is the baseline artifact and run N is the fresh record.
    """
    runs = store.runs()
    if target_run is None:
        target_run = max(runs, default=0)
    if baseline_run is None:
        earlier = [run for run in runs if run < target_run]
        baseline_run = max(earlier, default=0)
    for run, role in ((baseline_run, "baseline"), (target_run, "target")):
        if run not in runs:
            recorded = ", ".join(str(r) for r in runs) or "none"
            raise ValueError(
                f"{role} run {run} is not in the store (recorded runs: {recorded})"
            )
    baseline_profiles = _latest_by_scenario(runs[baseline_run])
    target_profiles = _latest_by_scenario(runs[target_run])
    entries: list[DiffEntry] = []
    for scenario in sorted(set(baseline_profiles) | set(target_profiles)):
        baseline = baseline_profiles.get(scenario)
        target = target_profiles.get(scenario)
        if baseline is None:
            assert target is not None
            entries.append(
                DiffEntry(scenario, target.family, STATUS_ADDED, target=target)
            )
        elif target is None:
            entries.append(
                DiffEntry(
                    scenario, baseline.family, STATUS_REMOVED, baseline=baseline
                )
            )
        elif baseline.env.get("digest") != target.env.get("digest"):
            entries.append(
                DiffEntry(
                    scenario,
                    target.family,
                    STATUS_INCOMPARABLE,
                    baseline=baseline,
                    target=target,
                )
            )
        else:
            comparison = compare_samples(
                baseline.samples, target.samples, thresholds
            )
            entries.append(
                DiffEntry(
                    scenario,
                    target.family,
                    STATUS_COMPARED,
                    comparison=comparison,
                    baseline=baseline,
                    target=target,
                )
            )
    return DiffReport(
        baseline_run=baseline_run, target_run=target_run, entries=tuple(entries)
    )


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1000:.2f}ms"


def render_diff_markdown(report: DiffReport) -> str:
    """The human view ``pgschema perf diff`` prints."""
    lines = [
        f"## perf diff: run {report.baseline_run} -> run {report.target_run}",
        "",
        "| scenario | verdict | ratio | p | baseline | target |",
        "|---|---|---|---|---|---|",
    ]
    for entry in report.entries:
        if entry.comparison is None:
            lines.append(
                f"| {entry.scenario} | ({entry.status}) | - | - | - | - |"
            )
            continue
        comparison = entry.comparison
        verdict = comparison.verdict
        if comparison.severity is not None:
            verdict = f"{verdict} ({comparison.severity})"
        p_text = "-" if comparison.p_value is None else f"{comparison.p_value:.4f}"
        lines.append(
            f"| {entry.scenario} | {verdict} | {comparison.ratio:.2f}x"
            f" | {p_text} | {_format_seconds(comparison.baseline_median)}"
            f" | {_format_seconds(comparison.target_median)} |"
        )
    counts = report.verdict_counts()
    summary = ", ".join(
        f"{verdict}: {counts[verdict]}" for verdict in Verdict.ALL if counts[verdict]
    )
    lines += ["", summary or "no comparable scenarios"]
    return "\n".join(lines) + "\n"


def trend_rows(
    store: ProfileStore, scenario: str | None = None
) -> dict[str, list[dict[str, Any]]]:
    """Per-scenario history across runs: median, best, delta vs previous.

    ``delta_pct`` is the median's percentage change against the previous
    run of the *same* scenario under the same environment fingerprint
    (``None`` for the first run or across a fingerprint change).
    """
    history: dict[str, list[dict[str, Any]]] = {}
    previous: dict[str, Profile] = {}
    for run, profiles in store.runs().items():
        for profile in _latest_by_scenario(profiles).values():
            if scenario is not None and profile.scenario != scenario:
                continue
            prior = previous.get(profile.scenario)
            delta_pct: float | None = None
            if (
                prior is not None
                and prior.env.get("digest") == profile.env.get("digest")
                and prior.median > 0
            ):
                delta_pct = (profile.median / prior.median - 1.0) * 100
            history.setdefault(profile.scenario, []).append(
                {
                    "run": run,
                    "commit": profile.commit,
                    "median_s": profile.median,
                    "best_s": profile.best,
                    "samples": len(profile.samples),
                    "quick": profile.quick,
                    "delta_pct": delta_pct,
                }
            )
            previous[profile.scenario] = profile
    if scenario is not None and not history:
        known = ", ".join(store.scenarios()) or "none"
        raise ValueError(
            f"scenario {scenario!r} has no recorded profiles (known: {known})"
        )
    return history


def render_trend_markdown(history: dict[str, list[dict[str, Any]]]) -> str:
    """The human view ``pgschema perf trend`` prints."""
    lines = ["## perf trend", ""]
    for name in sorted(history):
        lines += [
            f"### {name}",
            "",
            "| run | commit | median | best | delta |",
            "|---|---|---|---|---|",
        ]
        for row in history[name]:
            delta = (
                "-"
                if row["delta_pct"] is None
                else f"{row['delta_pct']:+.1f}%"
            )
            lines.append(
                f"| {row['run']} | {row['commit'][:12]}"
                f" | {_format_seconds(row['median_s'])}"
                f" | {_format_seconds(row['best_s'])} | {delta} |"
            )
        lines.append("")
    if len(lines) == 2:
        lines.append("no recorded profiles")
    return "\n".join(lines) + "\n"


def perf_summary(
    store: ProfileStore, thresholds: Thresholds | None = None
) -> dict[str, Any]:
    """The ``perf`` block for ``pgschema stats --json`` and ``/v1/stats``.

    The store summary plus the newest verdicts -- the diff of the last two
    recorded runs, reduced to counts and the degraded scenario ids.
    """
    summary = store.summary()
    summary["verdicts"] = None
    runs = sorted(store.runs()) if store.exists() else []
    if len(runs) >= 2:
        report = diff_runs(store, thresholds=thresholds)
        summary["verdicts"] = {
            "baseline_run": report.baseline_run,
            "target_run": report.target_run,
            "counts": report.verdict_counts(),
            "degradations": [entry.scenario for entry in report.degradations],
        }
    return summary
