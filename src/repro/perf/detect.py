"""Degradation detection between profile batches (perun's ``check`` idiom).

Two stages, both deterministic and stdlib-only:

1. **Median-ratio screen** -- the fast path.  ``ratio = median(target) /
   median(baseline)``; batches whose medians differ by less than the
   degradation/optimization thresholds (or by less than an absolute jitter
   floor, :attr:`Thresholds.min_delta_s`) are ``NoChange`` without any
   statistics.  This is perun's ``degradation_profiles`` best-model screen
   reduced to the one model our samples need.

2. **Nonparametric confirmation** -- batches that trip the screen are
   confirmed with an *exact* one-sided rank permutation test (the
   Mann-Whitney/Wilcoxon rank-sum statistic evaluated against its exact
   permutation null, midranks for ties).  Exactness matters at benchmark
   sample sizes: with 5-vs-5 repeats the normal approximation is badly
   behaved, while the exact null has only ``C(10,5) = 252`` states.  Large
   batches (beyond :data:`_EXACT_LIMIT` permutation states) fall back to
   the tie-corrected normal approximation with continuity correction.

Verdicts are typed (:class:`Verdict`): ``Degradation`` needs *both* a
median ratio past the threshold *and* rank-test significance;
``MaybeDegradation`` is a tripped screen the rank test could not confirm
(the CI gate does not fail on it); ``Optimization`` is the mirror image on
the fast side.  Degradations carry a severity derived from the ratio
(``minor`` < 1.5x <= ``major`` < 2.5x <= ``severe``).

Everything here is a pure function of its inputs: the same two sample
batches always produce byte-identical comparisons, which the soundness
tests assert.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from itertools import combinations
from typing import Any, Sequence

__all__ = [
    "Comparison",
    "Thresholds",
    "Verdict",
    "compare_samples",
    "rank_sum_p_value",
    "severity_for_ratio",
]

#: Largest number of permutation states the exact test enumerates; beyond
#: it the tie-corrected normal approximation takes over (12-vs-12 repeats
#: is still exact: C(24, 12) = 2.7M > limit, so the cap binds just above
#: the repeat counts benchmarks actually use).
_EXACT_LIMIT = 400_000


class Verdict:
    """The four typed comparison outcomes (string constants, not an enum,
    so verdicts serialise naturally into JSON and markdown)."""

    OPTIMIZATION = "Optimization"
    NO_CHANGE = "NoChange"
    MAYBE_DEGRADATION = "MaybeDegradation"
    DEGRADATION = "Degradation"

    ALL = (OPTIMIZATION, NO_CHANGE, MAYBE_DEGRADATION, DEGRADATION)


@dataclass(frozen=True)
class Thresholds:
    """Detector tuning; the defaults are what ``perf check`` gates CI on.

    Attributes:
        degradation_ratio: Median ratio at which the slow-side screen trips.
        optimization_ratio: Median ratio at which the fast-side screen trips.
        alpha: Significance level the rank test must reach to confirm.
        min_delta_s: Absolute median-difference jitter floor (seconds);
            micro-scenario noise below it can never trip either screen.
        major_ratio: Severity boundary minor -> major.
        severe_ratio: Severity boundary major -> severe.
    """

    degradation_ratio: float = 1.25
    optimization_ratio: float = 0.80
    alpha: float = 0.05
    min_delta_s: float = 0.002
    major_ratio: float = 1.5
    severe_ratio: float = 2.5


@dataclass(frozen=True)
class Comparison:
    """The typed outcome of comparing one scenario across two batches."""

    verdict: str
    severity: str | None
    ratio: float
    p_value: float | None
    baseline_median: float
    target_median: float
    baseline_samples: int
    target_samples: int

    @property
    def is_degradation(self) -> bool:
        return self.verdict == Verdict.DEGRADATION

    def to_json(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "severity": self.severity,
            "ratio": round(self.ratio, 6),
            "p_value": None if self.p_value is None else round(self.p_value, 8),
            "baseline_median_s": self.baseline_median,
            "target_median_s": self.target_median,
            "baseline_samples": self.baseline_samples,
            "target_samples": self.target_samples,
        }


def severity_for_ratio(ratio: float, thresholds: Thresholds) -> str:
    if ratio >= thresholds.severe_ratio:
        return "severe"
    if ratio >= thresholds.major_ratio:
        return "major"
    return "minor"


def _midranks(values: Sequence[float]) -> list[float]:
    """Ranks of the sorted combined sample, ties sharing their midrank."""
    ranks = [0.0] * len(values)
    index = 0
    while index < len(values):
        tie_end = index
        while tie_end + 1 < len(values) and values[tie_end + 1] == values[index]:
            tie_end += 1
        midrank = (index + tie_end) / 2 + 1  # ranks are 1-based
        for position in range(index, tie_end + 1):
            ranks[position] = midrank
        index = tie_end + 1
    return ranks


def rank_sum_p_value(
    baseline: Sequence[float],
    target: Sequence[float],
    alternative: str = "greater",
) -> float:
    """One-sided rank-sum p-value for *target* vs *baseline*.

    ``alternative="greater"`` tests whether target values are
    stochastically *larger* (slower); ``"less"`` is the mirror.  Exact
    permutation null (midranks for ties) up to :data:`_EXACT_LIMIT`
    states, tie-corrected normal approximation beyond.
    """
    if alternative not in ("greater", "less"):
        raise ValueError(f"unknown alternative {alternative!r}")
    if not baseline or not target:
        raise ValueError("both sample batches must be non-empty")
    combined = sorted(
        [(value, 0) for value in baseline] + [(value, 1) for value in target]
    )
    values = [value for value, _side in combined]
    ranks = _midranks(values)
    observed = sum(
        rank for rank, (_value, side) in zip(ranks, combined) if side == 1
    )
    n_target = len(target)
    total_states = math.comb(len(values), n_target)
    if total_states <= _EXACT_LIMIT:
        hits = 0
        for chosen in combinations(range(len(values)), n_target):
            rank_sum = sum(ranks[position] for position in chosen)
            if alternative == "greater":
                # half-weight exactly-equal states: the mid-p convention
                # keeps the two one-sided tests symmetric under ties
                hits += 2 * (rank_sum > observed) + (rank_sum == observed)
            else:
                hits += 2 * (rank_sum < observed) + (rank_sum == observed)
        return hits / (2 * total_states)
    return _normal_approximation(ranks, observed, len(baseline), n_target, alternative)


def _normal_approximation(
    ranks: Sequence[float],
    observed: float,
    n_baseline: int,
    n_target: int,
    alternative: str,
) -> float:
    total = n_baseline + n_target
    mean = n_target * (total + 1) / 2
    tie_term = 0.0
    index = 0
    while index < len(ranks):
        tie_end = index
        while tie_end + 1 < len(ranks) and ranks[tie_end + 1] == ranks[index]:
            tie_end += 1
        tie_size = tie_end - index + 1
        tie_term += tie_size**3 - tie_size
        index = tie_end + 1
    variance = (
        n_baseline * n_target / 12 * ((total + 1) - tie_term / (total * (total - 1)))
    )
    if variance <= 0:
        return 0.5  # every value tied: no evidence either way
    if alternative == "greater":
        z = (observed - mean - 0.5) / math.sqrt(variance)
    else:
        z = (mean - observed - 0.5) / math.sqrt(variance)
    return 0.5 * math.erfc(z / math.sqrt(2))


def compare_samples(
    baseline: Sequence[float],
    target: Sequence[float],
    thresholds: Thresholds | None = None,
) -> Comparison:
    """Screen then confirm: the full detector over two sample batches."""
    thresholds = thresholds or Thresholds()
    if not baseline or not target:
        raise ValueError("both sample batches must be non-empty")
    baseline_median = float(statistics.median(baseline))
    target_median = float(statistics.median(target))
    ratio = (
        target_median / baseline_median
        if baseline_median > 0
        else (math.inf if target_median > 0 else 1.0)
    )

    def result(
        verdict: str, severity: str | None, p_value: float | None
    ) -> Comparison:
        return Comparison(
            verdict=verdict,
            severity=severity,
            ratio=ratio,
            p_value=p_value,
            baseline_median=baseline_median,
            target_median=target_median,
            baseline_samples=len(baseline),
            target_samples=len(target),
        )

    if abs(target_median - baseline_median) < thresholds.min_delta_s:
        return result(Verdict.NO_CHANGE, None, None)
    if ratio >= thresholds.degradation_ratio:
        p_value = rank_sum_p_value(baseline, target, "greater")
        severity = severity_for_ratio(ratio, thresholds)
        if p_value <= thresholds.alpha:
            return result(Verdict.DEGRADATION, severity, p_value)
        return result(Verdict.MAYBE_DEGRADATION, severity, p_value)
    if ratio <= thresholds.optimization_ratio:
        p_value = rank_sum_p_value(baseline, target, "less")
        if p_value <= thresholds.alpha:
            return result(Verdict.OPTIMIZATION, None, p_value)
        return result(Verdict.NO_CHANGE, None, p_value)
    return result(Verdict.NO_CHANGE, None, None)
