"""Continuous performance tracking (perun's record/check idiom, stdlib-only).

Four layers, composed by the ``pgschema perf`` CLI:

- :mod:`repro.perf.store` -- the append-only, schema-pinned profile store
  under ``.perf/`` (JSONL data + atomic index), keyed by commit, scenario
  and environment fingerprint.
- :mod:`repro.perf.scenarios` -- the registry of deterministic, seeded
  profiling scenarios spanning every engine, including the adversarial
  workload families (deep lattices, union fan-outs, ``@key`` collision
  domains, near-UNSAT cardinality webs).
- :mod:`repro.perf.detect` -- degradation detection: a median-ratio
  screen confirmed by an exact rank permutation test, producing typed
  verdicts (``Optimization``/``NoChange``/``MaybeDegradation``/
  ``Degradation`` with severity).
- :mod:`repro.perf.report` -- run diffs, per-scenario trends, and the
  ``perf`` summary block that ``pgschema stats`` and ``/v1/stats`` expose.
"""

from .detect import (
    Comparison,
    Thresholds,
    Verdict,
    compare_samples,
    rank_sum_p_value,
    severity_for_ratio,
)
from .report import (
    DiffEntry,
    DiffReport,
    diff_runs,
    perf_summary,
    render_diff_markdown,
    render_trend_markdown,
    trend_rows,
)
from .scenarios import (
    SCENARIOS,
    Scenario,
    adversarial_families,
    record_profiles,
    run_scenario,
    scenario,
    select_scenarios,
)
from .store import (
    PROFILE_FORMAT,
    PROFILE_SCHEMA,
    PROFILE_VERSION,
    PerfStoreError,
    Profile,
    ProfileStore,
    environment_fingerprint,
)

__all__ = [
    "PROFILE_FORMAT",
    "PROFILE_SCHEMA",
    "PROFILE_VERSION",
    "SCENARIOS",
    "Comparison",
    "DiffEntry",
    "DiffReport",
    "PerfStoreError",
    "Profile",
    "ProfileStore",
    "Scenario",
    "Thresholds",
    "Verdict",
    "adversarial_families",
    "compare_samples",
    "diff_runs",
    "environment_fingerprint",
    "perf_summary",
    "rank_sum_p_value",
    "record_profiles",
    "render_diff_markdown",
    "render_trend_markdown",
    "run_scenario",
    "scenario",
    "select_scenarios",
    "severity_for_ratio",
    "trend_rows",
]
