"""Recursive-descent parser for GraphQL SDL documents (June 2018 spec, §3).

Covers everything the paper's proposal touches: schema definitions, scalar /
object / interface / union / enum / input-object type definitions, directive
definitions, field definitions with argument definitions, default values,
wrapping types, applied directives, and descriptions.

One deliberate relaxation: the GraphQL grammar requires at least one field in
a ``FieldsDefinition``, but the paper's Example 6.1 uses ``type OT1 { }``, so
empty field blocks are accepted.
"""

from __future__ import annotations

from ..errors import SDLSyntaxError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind


def parse_document(source: str) -> ast.Document:
    """Parse an SDL document from source text.

    Raises :class:`~repro.errors.SDLSyntaxError` for every malformed input,
    including pathologically nested documents that would otherwise escape
    as ``RecursionError`` (the parser recurses on list/wrapping nesting).
    """
    try:
        return _Parser(tokenize(source)).parse_document()
    except RecursionError:
        raise SDLSyntaxError("document is nested too deeply") from None


def parse_type(source: str) -> ast.TypeNode:
    """Parse a single type reference such as ``[String!]!`` (for tests/tools)."""
    parser = _Parser(tokenize(source))
    try:
        node = parser.parse_type_reference()
    except RecursionError:
        raise SDLSyntaxError("type reference is nested too deeply") from None
    parser.expect(TokenKind.EOF)
    return node


def parse_value(source: str) -> ast.ValueNode:
    """Parse a single constant value literal such as ``["id", 3]``."""
    parser = _Parser(tokenize(source))
    try:
        node = parser.parse_value_literal(const=True)
    except RecursionError:
        raise SDLSyntaxError("value literal is nested too deeply") from None
    parser.expect(TokenKind.EOF)
    return node


class _Parser:
    """Token-stream parser; also reused by the query parser in repro.api."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        token = self.current
        if token.kind is not kind:
            raise SDLSyntaxError(
                f"expected {kind.value}, found {token.kind.value} {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_keyword(self, keyword: str) -> Token:
        token = self.current
        if token.kind is not TokenKind.NAME or token.value != keyword:
            raise SDLSyntaxError(
                f"expected keyword {keyword!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def peek(self, kind: TokenKind) -> bool:
        return self.current.kind is kind

    def peek_keyword(self, keyword: str) -> bool:
        return self.current.kind is TokenKind.NAME and self.current.value == keyword

    def skip(self, kind: TokenKind) -> bool:
        if self.peek(kind):
            self.advance()
            return True
        return False

    def parse_name(self) -> str:
        return self.expect(TokenKind.NAME).value

    # ------------------------------------------------------------------ #
    # document structure
    # ------------------------------------------------------------------ #

    def parse_document(self) -> ast.Document:
        definitions: list[ast.Definition] = []
        while not self.peek(TokenKind.EOF):
            definitions.append(self.parse_definition())
        return ast.Document(tuple(definitions))

    def parse_definition(self) -> ast.Definition:
        description = self.parse_description()
        token = self.current
        if token.kind is not TokenKind.NAME:
            raise SDLSyntaxError(
                f"expected a definition, found {token.kind.value} {token.value!r}",
                token.line,
                token.column,
            )
        keyword = token.value
        if keyword == "schema":
            if description is not None:
                raise SDLSyntaxError(
                    "schema definitions take no description", token.line, token.column
                )
            return self.parse_schema_definition()
        if keyword == "scalar":
            return self.parse_scalar_definition(description)
        if keyword == "type":
            return self.parse_object_definition(description)
        if keyword == "interface":
            return self.parse_interface_definition(description)
        if keyword == "union":
            return self.parse_union_definition(description)
        if keyword == "enum":
            return self.parse_enum_definition(description)
        if keyword == "input":
            return self.parse_input_object_definition(description)
        if keyword == "directive":
            return self.parse_directive_definition(description)
        raise SDLSyntaxError(
            f"unexpected keyword {keyword!r}", token.line, token.column
        )

    def parse_description(self) -> str | None:
        if self.peek(TokenKind.STRING) or self.peek(TokenKind.BLOCK_STRING):
            return self.advance().value
        return None

    def parse_schema_definition(self) -> ast.SchemaDefinition:
        keyword = self.expect_keyword("schema")
        directives = self.parse_directives()
        self.expect(TokenKind.BRACE_L)
        operations: list[tuple[str, str]] = []
        while not self.skip(TokenKind.BRACE_R):
            operation = self.parse_name()
            self.expect(TokenKind.COLON)
            operations.append((operation, self.parse_name()))
        return ast.SchemaDefinition(
            tuple(operations), directives, line=keyword.line, column=keyword.column
        )

    # ------------------------------------------------------------------ #
    # type definitions
    # ------------------------------------------------------------------ #

    def parse_scalar_definition(self, description: str | None) -> ast.ScalarTypeDefinition:
        keyword = self.expect_keyword("scalar")
        name = self.parse_name()
        return ast.ScalarTypeDefinition(
            name,
            self.parse_directives(),
            description,
            line=keyword.line,
            column=keyword.column,
        )

    def parse_object_definition(self, description: str | None) -> ast.ObjectTypeDefinition:
        keyword = self.expect_keyword("type")
        name = self.parse_name()
        interfaces = self.parse_implements_interfaces()
        directives = self.parse_directives()
        fields = self.parse_fields_definition()
        return ast.ObjectTypeDefinition(
            name,
            fields,
            interfaces,
            directives,
            description,
            line=keyword.line,
            column=keyword.column,
        )

    def parse_interface_definition(
        self, description: str | None
    ) -> ast.InterfaceTypeDefinition:
        keyword = self.expect_keyword("interface")
        name = self.parse_name()
        directives = self.parse_directives()
        fields = self.parse_fields_definition()
        return ast.InterfaceTypeDefinition(
            name, fields, directives, description, line=keyword.line, column=keyword.column
        )

    def parse_union_definition(self, description: str | None) -> ast.UnionTypeDefinition:
        keyword = self.expect_keyword("union")
        name = self.parse_name()
        directives = self.parse_directives()
        members: list[str] = []
        if self.skip(TokenKind.EQUALS):
            self.skip(TokenKind.PIPE)
            members.append(self.parse_name())
            while self.skip(TokenKind.PIPE):
                members.append(self.parse_name())
        return ast.UnionTypeDefinition(
            name,
            tuple(members),
            directives,
            description,
            line=keyword.line,
            column=keyword.column,
        )

    def parse_enum_definition(self, description: str | None) -> ast.EnumTypeDefinition:
        keyword = self.expect_keyword("enum")
        name = self.parse_name()
        directives = self.parse_directives()
        values: list[ast.EnumValueDefinition] = []
        if self.skip(TokenKind.BRACE_L):
            while not self.skip(TokenKind.BRACE_R):
                value_description = self.parse_description()
                value_token = self.expect(TokenKind.NAME)
                value_name = value_token.value
                if value_name in ("true", "false", "null"):
                    raise SDLSyntaxError(
                        f"enum value must not be {value_name!r}",
                        value_token.line,
                        value_token.column,
                    )
                values.append(
                    ast.EnumValueDefinition(
                        value_name,
                        self.parse_directives(),
                        value_description,
                        line=value_token.line,
                        column=value_token.column,
                    )
                )
        return ast.EnumTypeDefinition(
            name,
            tuple(values),
            directives,
            description,
            line=keyword.line,
            column=keyword.column,
        )

    def parse_input_object_definition(
        self, description: str | None
    ) -> ast.InputObjectTypeDefinition:
        keyword = self.expect_keyword("input")
        name = self.parse_name()
        directives = self.parse_directives()
        fields: list[ast.InputValueDefinition] = []
        if self.skip(TokenKind.BRACE_L):
            while not self.skip(TokenKind.BRACE_R):
                fields.append(self.parse_input_value_definition())
        return ast.InputObjectTypeDefinition(
            name,
            tuple(fields),
            directives,
            description,
            line=keyword.line,
            column=keyword.column,
        )

    def parse_directive_definition(
        self, description: str | None
    ) -> ast.DirectiveDefinition:
        keyword = self.expect_keyword("directive")
        self.expect(TokenKind.AT)
        name = self.parse_name()
        arguments = self.parse_arguments_definition()
        self.expect_keyword("on")
        self.skip(TokenKind.PIPE)
        locations = [self.parse_name()]
        while self.skip(TokenKind.PIPE):
            locations.append(self.parse_name())
        return ast.DirectiveDefinition(
            name,
            arguments,
            tuple(locations),
            description,
            line=keyword.line,
            column=keyword.column,
        )

    def parse_implements_interfaces(self) -> tuple[str, ...]:
        interfaces: list[str] = []
        if self.peek_keyword("implements"):
            self.advance()
            self.skip(TokenKind.AMP)
            interfaces.append(self.parse_name())
            # both `implements A & B` (June 2018) and the legacy
            # space-separated `implements A B` are accepted
            while self.skip(TokenKind.AMP) or self.peek(TokenKind.NAME):
                interfaces.append(self.parse_name())
        return tuple(interfaces)

    def parse_fields_definition(self) -> tuple[ast.FieldDefinition, ...]:
        fields: list[ast.FieldDefinition] = []
        if self.skip(TokenKind.BRACE_L):
            while not self.skip(TokenKind.BRACE_R):
                fields.append(self.parse_field_definition())
        return tuple(fields)

    def parse_field_definition(self) -> ast.FieldDefinition:
        description = self.parse_description()
        name_token = self.expect(TokenKind.NAME)
        arguments = self.parse_arguments_definition()
        self.expect(TokenKind.COLON)
        field_type = self.parse_type_reference()
        directives = self.parse_directives()
        return ast.FieldDefinition(
            name_token.value,
            field_type,
            arguments,
            directives,
            description,
            line=name_token.line,
            column=name_token.column,
        )

    def parse_arguments_definition(self) -> tuple[ast.InputValueDefinition, ...]:
        arguments: list[ast.InputValueDefinition] = []
        if self.skip(TokenKind.PAREN_L):
            while not self.skip(TokenKind.PAREN_R):
                arguments.append(self.parse_input_value_definition())
        return tuple(arguments)

    def parse_input_value_definition(self) -> ast.InputValueDefinition:
        description = self.parse_description()
        name_token = self.expect(TokenKind.NAME)
        self.expect(TokenKind.COLON)
        value_type = self.parse_type_reference()
        default: ast.ValueNode | None = None
        if self.skip(TokenKind.EQUALS):
            default = self.parse_value_literal(const=True)
        directives = self.parse_directives()
        return ast.InputValueDefinition(
            name_token.value,
            value_type,
            default,
            directives,
            description,
            line=name_token.line,
            column=name_token.column,
        )

    # ------------------------------------------------------------------ #
    # types, values, directives
    # ------------------------------------------------------------------ #

    def parse_type_reference(self) -> ast.TypeNode:
        node: ast.TypeNode
        if self.skip(TokenKind.BRACKET_L):
            inner = self.parse_type_reference()
            self.expect(TokenKind.BRACKET_R)
            node = ast.ListTypeNode(inner)
        else:
            node = ast.NamedTypeNode(self.parse_name())
        if self.skip(TokenKind.BANG):
            node = ast.NonNullTypeNode(node)
        return node

    def parse_value_literal(self, const: bool) -> ast.ValueNode:
        token = self.current
        if token.kind is TokenKind.INT:
            self.advance()
            return ast.IntValue(int(token.value))
        if token.kind is TokenKind.FLOAT:
            self.advance()
            return ast.FloatValue(float(token.value))
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.StringValue(token.value)
        if token.kind is TokenKind.BLOCK_STRING:
            self.advance()
            return ast.StringValue(token.value, block=True)
        if token.kind is TokenKind.NAME:
            self.advance()
            if token.value == "true":
                return ast.BooleanValue(True)
            if token.value == "false":
                return ast.BooleanValue(False)
            if token.value == "null":
                return ast.NullValue()
            return ast.EnumValue(token.value)
        if token.kind is TokenKind.BRACKET_L:
            self.advance()
            values: list[ast.ValueNode] = []
            while not self.skip(TokenKind.BRACKET_R):
                values.append(self.parse_value_literal(const))
            return ast.ListValue(tuple(values))
        if token.kind is TokenKind.BRACE_L:
            self.advance()
            fields: list[tuple[str, ast.ValueNode]] = []
            while not self.skip(TokenKind.BRACE_R):
                field_name = self.parse_name()
                self.expect(TokenKind.COLON)
                fields.append((field_name, self.parse_value_literal(const)))
            return ast.ObjectValue(tuple(fields))
        if token.kind is TokenKind.DOLLAR and not const:
            self.advance()
            return ast.Variable(self.parse_name())
        raise SDLSyntaxError(
            f"unexpected token {token.kind.value} {token.value!r} in value position",
            token.line,
            token.column,
        )

    def parse_directives(self) -> tuple[ast.DirectiveNode, ...]:
        directives: list[ast.DirectiveNode] = []
        while self.peek(TokenKind.AT):
            at_token = self.advance()
            name = self.parse_name()
            directives.append(
                ast.DirectiveNode(
                    name,
                    self.parse_arguments(),
                    line=at_token.line,
                    column=at_token.column,
                )
            )
        return tuple(directives)

    def parse_arguments(self) -> tuple[ast.ArgumentNode, ...]:
        arguments: list[ast.ArgumentNode] = []
        if self.skip(TokenKind.PAREN_L):
            while not self.skip(TokenKind.PAREN_R):
                name_token = self.expect(TokenKind.NAME)
                self.expect(TokenKind.COLON)
                arguments.append(
                    ast.ArgumentNode(
                        name_token.value,
                        self.parse_value_literal(const=True),
                        line=name_token.line,
                        column=name_token.column,
                    )
                )
        return tuple(arguments)
