"""Token kinds for the GraphQL lexical grammar (June 2018 specification, §2).

The same token stream serves both the schema definition language parser
(:mod:`repro.sdl.parser`) and the query parser of the API extension
(:mod:`repro.api.query_parser`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical token kinds of the GraphQL grammar."""

    SOF = "<SOF>"
    EOF = "<EOF>"
    BANG = "!"
    DOLLAR = "$"
    PAREN_L = "("
    PAREN_R = ")"
    SPREAD = "..."
    COLON = ":"
    EQUALS = "="
    AT = "@"
    BRACKET_L = "["
    BRACKET_R = "]"
    BRACE_L = "{"
    BRACE_R = "}"
    PIPE = "|"
    AMP = "&"
    NAME = "Name"
    INT = "Int"
    FLOAT = "Float"
    STRING = "String"
    BLOCK_STRING = "BlockString"


#: Single-character punctuators, mapped to their token kinds.
PUNCTUATORS = {
    "!": TokenKind.BANG,
    "$": TokenKind.DOLLAR,
    "(": TokenKind.PAREN_L,
    ")": TokenKind.PAREN_R,
    ":": TokenKind.COLON,
    "=": TokenKind.EQUALS,
    "@": TokenKind.AT,
    "[": TokenKind.BRACKET_L,
    "]": TokenKind.BRACKET_R,
    "{": TokenKind.BRACE_L,
    "}": TokenKind.BRACE_R,
    "|": TokenKind.PIPE,
    "&": TokenKind.AMP,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: The :class:`TokenKind`.
        value: The token text (for NAME/INT/FLOAT/STRING kinds) or the
            punctuator string.
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: TokenKind
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.column})"
