"""GraphQL SDL front end: lexer, AST, parser, printer (June 2018 edition)."""

from . import ast
from .lexer import tokenize
from .parser import parse_document, parse_type, parse_value
from .printer import print_definition, print_document, print_type, print_value
from .tokens import Token, TokenKind

__all__ = [
    "Token",
    "TokenKind",
    "ast",
    "parse_document",
    "parse_type",
    "parse_value",
    "print_definition",
    "print_document",
    "print_type",
    "print_value",
    "tokenize",
]
