"""Lexer for the GraphQL lexical grammar (June 2018 specification, §2).

Implements names, integers, floats, single-line strings with escapes, block
strings (``\"\"\" ... \"\"\"`` with the spec's common-indentation stripping),
punctuators, the spread token, comments, and the ignored tokens (whitespace,
commas, BOM).
"""

from __future__ import annotations

from ..errors import SDLSyntaxError
from .tokens import PUNCTUATORS, Token, TokenKind

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONTINUE = _NAME_START | set("0123456789")
_DIGITS = set("0123456789")
_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}


def tokenize(source: str) -> list[Token]:
    """Tokenise *source*, returning the token list terminated by an EOF token.

    Raises :class:`SDLSyntaxError` on any lexically invalid input.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def column(at: int) -> int:
        return at - line_start + 1

    while pos < length:
        char = source[pos]

        # --- ignored tokens -------------------------------------------- #
        if char in " \t,﻿":
            pos += 1
            continue
        if char == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if char == "\r":
            pos += 1
            if pos < length and source[pos] == "\n":
                pos += 1
            line += 1
            line_start = pos
            continue
        if char == "#":
            while pos < length and source[pos] not in "\r\n":
                pos += 1
            continue

        start = pos
        start_column = column(pos)

        # --- punctuators ------------------------------------------------ #
        if char == ".":
            if source[pos : pos + 3] == "...":
                tokens.append(Token(TokenKind.SPREAD, "...", line, start_column))
                pos += 3
                continue
            raise SDLSyntaxError("unexpected character '.'", line, start_column)
        if char in PUNCTUATORS:
            tokens.append(Token(PUNCTUATORS[char], char, line, start_column))
            pos += 1
            continue

        # --- names ------------------------------------------------------ #
        if char in _NAME_START:
            pos += 1
            while pos < length and source[pos] in _NAME_CONTINUE:
                pos += 1
            tokens.append(Token(TokenKind.NAME, source[start:pos], line, start_column))
            continue

        # --- numbers ----------------------------------------------------- #
        if char in _DIGITS or char == "-":
            pos, token = _read_number(source, pos, line, start_column)
            tokens.append(token)
            continue

        # --- strings ------------------------------------------------------ #
        if char == '"':
            if source[pos : pos + 3] == '"""':
                pos, line, line_start, token = _read_block_string(
                    source, pos, line, line_start
                )
            else:
                pos, token = _read_string(source, pos, line, start_column)
            tokens.append(token)
            continue

        raise SDLSyntaxError(f"unexpected character {char!r}", line, start_column)

    tokens.append(Token(TokenKind.EOF, "", line, column(pos)))
    return tokens


def _read_number(source: str, pos: int, line: int, start_column: int) -> tuple[int, Token]:
    """Read an IntValue or FloatValue starting at *pos*."""
    start = pos
    length = len(source)
    if source[pos] == "-":
        pos += 1
    if pos >= length or source[pos] not in _DIGITS:
        raise SDLSyntaxError("invalid number: expected a digit", line, start_column)
    if source[pos] == "0":
        pos += 1
        if pos < length and source[pos] in _DIGITS:
            raise SDLSyntaxError("invalid number: leading zero", line, start_column)
    else:
        while pos < length and source[pos] in _DIGITS:
            pos += 1
    is_float = False
    if pos < length and source[pos] == ".":
        is_float = True
        pos += 1
        if pos >= length or source[pos] not in _DIGITS:
            raise SDLSyntaxError("invalid number: expected digits after '.'", line, start_column)
        while pos < length and source[pos] in _DIGITS:
            pos += 1
    if pos < length and source[pos] in "eE":
        is_float = True
        pos += 1
        if pos < length and source[pos] in "+-":
            pos += 1
        if pos >= length or source[pos] not in _DIGITS:
            raise SDLSyntaxError("invalid number: malformed exponent", line, start_column)
        while pos < length and source[pos] in _DIGITS:
            pos += 1
    kind = TokenKind.FLOAT if is_float else TokenKind.INT
    return pos, Token(kind, source[start:pos], line, start_column)


def _read_string(source: str, pos: int, line: int, start_column: int) -> tuple[int, Token]:
    """Read a single-line StringValue starting at the opening quote."""
    length = len(source)
    pos += 1  # opening quote
    chunks: list[str] = []
    while pos < length:
        char = source[pos]
        if char == '"':
            return pos + 1, Token(TokenKind.STRING, "".join(chunks), line, start_column)
        if char in "\r\n":
            break
        if char == "\\":
            pos += 1
            if pos >= length:
                break
            escape = source[pos]
            if escape in _ESCAPES:
                chunks.append(_ESCAPES[escape])
                pos += 1
                continue
            if escape == "u":
                hex_digits = source[pos + 1 : pos + 5]
                if len(hex_digits) != 4:
                    raise SDLSyntaxError("invalid unicode escape", line, start_column)
                try:
                    chunks.append(chr(int(hex_digits, 16)))
                except ValueError:
                    raise SDLSyntaxError("invalid unicode escape", line, start_column) from None
                pos += 5
                continue
            raise SDLSyntaxError(f"invalid escape \\{escape}", line, start_column)
        chunks.append(char)
        pos += 1
    raise SDLSyntaxError("unterminated string", line, start_column)


def _read_block_string(
    source: str, pos: int, line: int, line_start: int
) -> tuple[int, int, int, Token]:
    """Read a BlockString starting at the opening triple quote.

    Returns (new position, new line number, new line-start offset, token).
    """
    start_line = line
    start_column = pos - line_start + 1
    length = len(source)
    pos += 3  # opening triple quote
    raw: list[str] = []
    while pos < length:
        if source[pos : pos + 3] == '"""':
            value = _dedent_block_string("".join(raw))
            return pos + 3, line, line_start, Token(
                TokenKind.BLOCK_STRING, value, start_line, start_column
            )
        if source[pos : pos + 4] == '\\"""':
            raw.append('"""')
            pos += 4
            continue
        char = source[pos]
        if char == "\n":
            line += 1
            line_start = pos + 1
        raw.append(char)
        pos += 1
    raise SDLSyntaxError("unterminated block string", start_line, start_column)


def _dedent_block_string(raw: str) -> str:
    """Apply the spec's BlockStringValue() semantics (§2.9.4): strip the
    common indentation and leading/trailing blank lines."""
    lines = raw.split("\n")
    common_indent: int | None = None
    for text in lines[1:]:
        stripped = text.lstrip(" \t")
        if stripped:
            indent = len(text) - len(stripped)
            if common_indent is None or indent < common_indent:
                common_indent = indent
    if common_indent:
        lines = [lines[0]] + [text[common_indent:] for text in lines[1:]]
    while lines and not lines[0].strip(" \t"):
        lines.pop(0)
    while lines and not lines[-1].strip(" \t"):
        lines.pop()
    return "\n".join(lines)
