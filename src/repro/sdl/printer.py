"""Printer turning SDL AST nodes back into GraphQL SDL source text.

``parse_document(print_document(doc))`` is the identity on ASTs (modulo
descriptions' block-string form), which the property-based round-trip tests
exercise.
"""

from __future__ import annotations

from ..errors import ReproError
from . import ast


def print_document(document: ast.Document) -> str:
    """Render a document with one blank line between top-level definitions."""
    return "\n\n".join(print_definition(defn) for defn in document.definitions) + "\n"


def print_definition(definition: ast.Definition) -> str:
    if isinstance(definition, ast.SchemaDefinition):
        operations = "\n".join(
            f"  {operation}: {type_name}"
            for operation, type_name in definition.operation_types
        )
        return f"schema{_directives(definition.directives)} {{\n{operations}\n}}"
    if isinstance(definition, ast.ScalarTypeDefinition):
        return (
            _description(definition.description)
            + f"scalar {definition.name}{_directives(definition.directives)}"
        )
    if isinstance(definition, ast.ObjectTypeDefinition):
        implements = (
            " implements " + " & ".join(definition.interfaces)
            if definition.interfaces
            else ""
        )
        return (
            _description(definition.description)
            + f"type {definition.name}{implements}{_directives(definition.directives)}"
            + _fields_block(definition.fields)
        )
    if isinstance(definition, ast.InterfaceTypeDefinition):
        return (
            _description(definition.description)
            + f"interface {definition.name}{_directives(definition.directives)}"
            + _fields_block(definition.fields)
        )
    if isinstance(definition, ast.UnionTypeDefinition):
        members = " = " + " | ".join(definition.types) if definition.types else ""
        return (
            _description(definition.description)
            + f"union {definition.name}{_directives(definition.directives)}{members}"
        )
    if isinstance(definition, ast.EnumTypeDefinition):
        body = "\n".join(
            _description(value.description, indent="  ")
            + f"  {value.name}{_directives(value.directives)}"
            for value in definition.values
        )
        block = f" {{\n{body}\n}}" if definition.values else ""
        return (
            _description(definition.description)
            + f"enum {definition.name}{_directives(definition.directives)}{block}"
        )
    if isinstance(definition, ast.InputObjectTypeDefinition):
        body = "\n".join(
            "  " + _input_value(field_def) for field_def in definition.fields
        )
        block = f" {{\n{body}\n}}" if definition.fields else ""
        return (
            _description(definition.description)
            + f"input {definition.name}{_directives(definition.directives)}{block}"
        )
    if isinstance(definition, ast.DirectiveDefinition):
        arguments = (
            "(" + ", ".join(_input_value(arg) for arg in definition.arguments) + ")"
            if definition.arguments
            else ""
        )
        locations = " | ".join(definition.locations)
        return (
            _description(definition.description)
            + f"directive @{definition.name}{arguments} on {locations}"
        )
    raise ReproError(f"cannot print definition node: {definition!r}")


def print_type(node: ast.TypeNode) -> str:
    if isinstance(node, ast.NamedTypeNode):
        return node.name
    if isinstance(node, ast.ListTypeNode):
        return f"[{print_type(node.of_type)}]"
    if isinstance(node, ast.NonNullTypeNode):
        return f"{print_type(node.of_type)}!"
    raise ReproError(f"cannot print type node: {node!r}")


def print_value(node: ast.ValueNode) -> str:
    if isinstance(node, ast.IntValue):
        return str(node.value)
    if isinstance(node, ast.FloatValue):
        return repr(node.value)
    if isinstance(node, ast.StringValue):
        return _quote(node.value)
    if isinstance(node, ast.BooleanValue):
        return "true" if node.value else "false"
    if isinstance(node, ast.NullValue):
        return "null"
    if isinstance(node, ast.EnumValue):
        return node.name
    if isinstance(node, ast.ListValue):
        return "[" + ", ".join(print_value(value) for value in node.values) + "]"
    if isinstance(node, ast.ObjectValue):
        inner = ", ".join(f"{name}: {print_value(value)}" for name, value in node.fields)
        return "{" + inner + "}"
    if isinstance(node, ast.Variable):
        return f"${node.name}"
    raise ReproError(f"cannot print value node: {node!r}")


def _fields_block(fields: tuple[ast.FieldDefinition, ...]) -> str:
    if not fields:
        return " {\n}"
    lines = []
    for field_def in fields:
        arguments = (
            "("
            + ", ".join(_input_value(arg) for arg in field_def.arguments)
            + ")"
            if field_def.arguments
            else ""
        )
        lines.append(
            _description(field_def.description, indent="  ")
            + f"  {field_def.name}{arguments}: "
            + print_type(field_def.type)
            + _directives(field_def.directives)
        )
    return " {\n" + "\n".join(lines) + "\n}"


def _input_value(definition: ast.InputValueDefinition) -> str:
    default = (
        f" = {print_value(definition.default_value)}"
        if definition.default_value is not None
        else ""
    )
    description = (
        _quote(definition.description) + " " if definition.description else ""
    )
    return (
        description
        + f"{definition.name}: {print_type(definition.type)}{default}"
        + _directives(definition.directives)
    )


def _directives(directives: tuple[ast.DirectiveNode, ...]) -> str:
    parts = []
    for directive in directives:
        arguments = (
            "("
            + ", ".join(f"{arg.name}: {print_value(arg.value)}" for arg in directive.arguments)
            + ")"
            if directive.arguments
            else ""
        )
        parts.append(f"@{directive.name}{arguments}")
    return (" " + " ".join(parts)) if parts else ""


def _description(description: str | None, indent: str = "") -> str:
    if description is None:
        return ""
    return f"{indent}{_quote(description)}\n"


def _quote(text: str) -> str:
    escaped = (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
        .replace("\b", "\\b")
        .replace("\f", "\\f")
    )
    return f'"{escaped}"'
