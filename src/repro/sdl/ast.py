"""Abstract syntax tree for GraphQL SDL documents (June 2018 spec, §3).

All nodes are immutable dataclasses.  The AST is deliberately close to the
grammar; interpretation (which fields are attributes vs relationships, what
the directives mean, ...) happens in :mod:`repro.schema.build`, not here.

Definition-level nodes carry the 1-based ``line``/``column`` of the token
that opens them (0 when built programmatically).  The span fields are
excluded from equality so hand-assembled ASTs compare equal to parsed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _span_field() -> int:
    return field(default=0, compare=False)  # type: ignore[return-value]


# --------------------------------------------------------------------------- #
# value literals (§2.9)
# --------------------------------------------------------------------------- #


class ValueNode:
    """Base class for GraphQL value literals."""

    __slots__ = ()


@dataclass(frozen=True)
class IntValue(ValueNode):
    value: int


@dataclass(frozen=True)
class FloatValue(ValueNode):
    value: float


@dataclass(frozen=True)
class StringValue(ValueNode):
    value: str
    block: bool = False


@dataclass(frozen=True)
class BooleanValue(ValueNode):
    value: bool


@dataclass(frozen=True)
class NullValue(ValueNode):
    pass


@dataclass(frozen=True)
class EnumValue(ValueNode):
    name: str


@dataclass(frozen=True)
class ListValue(ValueNode):
    values: tuple[ValueNode, ...]


@dataclass(frozen=True)
class ObjectValue(ValueNode):
    fields: tuple[tuple[str, ValueNode], ...]


@dataclass(frozen=True)
class Variable(ValueNode):
    """A ``$name`` reference; only legal inside executable documents."""

    name: str


# --------------------------------------------------------------------------- #
# type references (§3.4.1)
# --------------------------------------------------------------------------- #


class TypeNode:
    """Base class for type references."""

    __slots__ = ()


@dataclass(frozen=True)
class NamedTypeNode(TypeNode):
    name: str


@dataclass(frozen=True)
class ListTypeNode(TypeNode):
    of_type: TypeNode


@dataclass(frozen=True)
class NonNullTypeNode(TypeNode):
    of_type: TypeNode


# --------------------------------------------------------------------------- #
# directives in use (§2.12)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ArgumentNode:
    name: str
    value: ValueNode
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class DirectiveNode:
    name: str
    arguments: tuple[ArgumentNode, ...] = ()
    line: int = _span_field()
    column: int = _span_field()


# --------------------------------------------------------------------------- #
# type system definitions (§3)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class InputValueDefinition:
    """An argument definition (of a field or a directive) or an input field."""

    name: str
    type: TypeNode
    default_value: ValueNode | None = None
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class FieldDefinition:
    name: str
    type: TypeNode
    arguments: tuple[InputValueDefinition, ...] = ()
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


class Definition:
    """Base class for top-level SDL definitions."""

    __slots__ = ()


@dataclass(frozen=True)
class SchemaDefinition(Definition):
    """``schema { query: ... }`` -- parsed but ignored by the Property Graph
    interpretation (Section 3.6 of the paper)."""

    operation_types: tuple[tuple[str, str], ...]
    directives: tuple[DirectiveNode, ...] = ()
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class ScalarTypeDefinition(Definition):
    name: str
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class ObjectTypeDefinition(Definition):
    name: str
    fields: tuple[FieldDefinition, ...] = ()
    interfaces: tuple[str, ...] = ()
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class InterfaceTypeDefinition(Definition):
    name: str
    fields: tuple[FieldDefinition, ...] = ()
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class UnionTypeDefinition(Definition):
    name: str
    types: tuple[str, ...] = ()
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class EnumValueDefinition:
    name: str
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class EnumTypeDefinition(Definition):
    name: str
    values: tuple[EnumValueDefinition, ...] = ()
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class InputObjectTypeDefinition(Definition):
    """``input`` types -- parsed for completeness, ignored by the Property
    Graph interpretation (the paper's formalization omits input types)."""

    name: str
    fields: tuple[InputValueDefinition, ...] = ()
    directives: tuple[DirectiveNode, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class DirectiveDefinition(Definition):
    name: str
    arguments: tuple[InputValueDefinition, ...] = ()
    locations: tuple[str, ...] = ()
    description: str | None = None
    line: int = _span_field()
    column: int = _span_field()


@dataclass(frozen=True)
class Document:
    """A parsed SDL document: a sequence of top-level definitions."""

    definitions: tuple[Definition, ...] = field(default_factory=tuple)

    def definitions_of(self, kind: type) -> list:
        """All definitions of one node class, in document order."""
        return [defn for defn in self.definitions if isinstance(defn, kind)]
