"""Random CNF generation for the Theorem-2 experiments.

Uniform random k-SAT: each clause picks k distinct variables and random
polarities.  At clause/variable ratio ≈ 4.26 (for k = 3) instances sit at
the classic satisfiability phase transition, which is where experiment E5
samples to exhibit NP-hard behaviour.
"""

from __future__ import annotations

import random

from .cnf import CNF


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: int | None = None,
) -> CNF:
    """A uniform random k-SAT instance."""
    if k > num_vars:
        raise ValueError(f"k={k} exceeds num_vars={num_vars}")
    rng = random.Random(seed)
    variables = list(range(1, num_vars + 1))
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, k)
        clauses.append(
            tuple(var if rng.random() < 0.5 else -var for var in chosen)
        )
    return CNF(num_vars, tuple(clauses))


def random_3sat_at_ratio(
    num_vars: int, ratio: float = 4.26, seed: int | None = None
) -> CNF:
    """Random 3-SAT at a given clause/variable ratio (default: the phase
    transition)."""
    return random_ksat(num_vars, max(1, round(ratio * num_vars)), k=3, seed=seed)


def pigeonhole(holes: int) -> CNF:
    """The pigeonhole principle PHP(holes+1, holes): provably unsatisfiable
    and exponentially hard for resolution-based solvers -- a classic
    worst-case family for the E5 runtime plots."""
    pigeons = holes + 1

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    clauses: list[tuple[int, ...]] = []
    for pigeon in range(pigeons):
        clauses.append(tuple(var(pigeon, hole) for hole in range(holes)))
    for hole in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append((-var(p1, hole), -var(p2, hole)))
    return CNF(pigeons * holes, tuple(clauses))
