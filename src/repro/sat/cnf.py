"""Propositional CNF formulas.

The Theorem-2 reduction maps CNF satisfiability to object-type
satisfiability, so this module provides the source representation: variables
are positive integers, literals are non-zero integers (negative = negated),
clauses are tuples of literals, and a formula is a tuple of clauses -- the
DIMACS convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

Literal = int
Clause = tuple[Literal, ...]


@dataclass(frozen=True)
class CNF:
    """A propositional formula in conjunctive normal form."""

    num_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for literal in clause:
                if literal == 0:
                    raise ValueError("0 is not a literal")
                if abs(literal) > self.num_vars:
                    raise ValueError(
                        f"literal {literal} exceeds num_vars={self.num_vars}"
                    )

    @staticmethod
    def of(clauses: Iterable[Iterable[int]], num_vars: int | None = None) -> "CNF":
        """Build a CNF from any iterable of literal iterables."""
        normalised = tuple(tuple(clause) for clause in clauses)
        if num_vars is None:
            num_vars = max(
                (abs(literal) for clause in normalised for literal in clause),
                default=0,
            )
        return CNF(num_vars, normalised)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def variables(self) -> range:
        return range(1, self.num_vars + 1)

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Does *assignment* (variable -> truth value) satisfy the formula?"""
        return all(
            any(
                assignment.get(abs(literal), False) == (literal > 0)
                for literal in clause
            )
            for clause in self.clauses
        )

    def __str__(self) -> str:
        def lit(literal: int) -> str:
            return f"¬x{-literal}" if literal < 0 else f"x{literal}"

        return " ∧ ".join(
            "(" + " ∨ ".join(lit(literal) for literal in clause) + ")"
            for clause in self.clauses
        ) or "⊤"
