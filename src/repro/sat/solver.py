"""A DPLL SAT solver.

Iterative DPLL with unit propagation, pure-literal elimination and a
most-frequent-literal branching heuristic.  It is deliberately a classic
solver (no clause learning): its role is to provide ground truth for the
Theorem-2 reduction experiments, where instances stay small enough (tens of
variables) that DPLL is entirely adequate -- and its visible exponential
growth *is* the NP-hardness story experiment E5 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..resilience import faults
from .cnf import CNF, Clause

if TYPE_CHECKING:  # pragma: no cover
    from ..resilience import Budget


@dataclass
class SolverStats:
    """Search statistics of one solve call."""

    decisions: int = 0
    propagations: int = 0
    backtracks: int = 0


@dataclass
class SolverResult:
    """The outcome of a solve call.

    ``satisfiable`` is the decision; ``assignment`` maps every variable to a
    truth value when satisfiable (unconstrained variables default to False).
    """

    satisfiable: bool
    assignment: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)


def solve(cnf: CNF, budget: "Budget | None" = None) -> SolverResult:
    """Decide satisfiability of *cnf* and produce a model when satisfiable.

    ``budget`` bounds the search (deadline and decision count, charged as
    expansions); exhaustion raises
    :class:`~repro.errors.BudgetExhaustedError` -- the DPLL search is
    exponential in the worst case (that *is* the Theorem-2 story), so
    service callers must be able to bail out with a typed UNKNOWN.
    """
    return _DPLL(cnf, budget).run()


def is_satisfiable(cnf: CNF, budget: "Budget | None" = None) -> bool:
    """Convenience wrapper: just the boolean answer."""
    return solve(cnf, budget).satisfiable


class _DPLL:
    def __init__(self, cnf: CNF, budget: "Budget | None" = None) -> None:
        self.cnf = cnf
        self.budget = budget
        self.stats = SolverStats()

    def run(self) -> SolverResult:
        if any(not clause for clause in self.cnf.clauses):
            return SolverResult(False, stats=self.stats)
        assignment = self._search(list(self.cnf.clauses), {})
        if assignment is None:
            return SolverResult(False, stats=self.stats)
        full = {var: assignment.get(var, False) for var in self.cnf.variables}
        return SolverResult(True, full, self.stats)

    # ------------------------------------------------------------------ #

    def _search(
        self, clauses: list[Clause], assignment: dict[int, bool]
    ) -> dict[int, bool] | None:
        clauses, assignment, conflict = self._propagate(clauses, dict(assignment))
        if conflict:
            return None
        clauses, assignment = self._pure_literals(clauses, assignment)
        if not clauses:
            return assignment
        literal = self._choose_literal(clauses)
        self.stats.decisions += 1
        if self.budget is not None:
            # a decision already scans every clause, so a per-decision
            # deadline read is noise by comparison
            self.budget.charge_expansions(1, site="sat.dpll")
            self.budget.check_deadline(site="sat.dpll")
        faults.fault_point("sat.decision", decision=self.stats.decisions)
        for chosen in (literal, -literal):
            branch = dict(assignment)
            branch[abs(chosen)] = chosen > 0
            reduced = _reduce(clauses, chosen)
            if reduced is not None:
                result = self._search(reduced, branch)
                if result is not None:
                    return result
            self.stats.backtracks += 1
        return None

    def _propagate(
        self, clauses: list[Clause], assignment: dict[int, bool]
    ) -> tuple[list[Clause], dict[int, bool], bool]:
        """Unit propagation to a fixpoint; returns (clauses, assignment, conflict)."""
        while True:
            unit = next((clause[0] for clause in clauses if len(clause) == 1), None)
            if unit is None:
                return clauses, assignment, False
            self.stats.propagations += 1
            assignment[abs(unit)] = unit > 0
            reduced = _reduce(clauses, unit)
            if reduced is None:
                return clauses, assignment, True
            clauses = reduced

    def _pure_literals(
        self, clauses: list[Clause], assignment: dict[int, bool]
    ) -> tuple[list[Clause], dict[int, bool]]:
        """Assign variables that occur with a single polarity."""
        while True:
            polarity: dict[int, int] = {}
            for clause in clauses:
                for literal in clause:
                    var = abs(literal)
                    seen = polarity.get(var, 0)
                    polarity[var] = seen | (1 if literal > 0 else 2)
            pure = [
                var if seen == 1 else -var
                for var, seen in polarity.items()
                if seen in (1, 2)
            ]
            if not pure:
                return clauses, assignment
            for literal in pure:
                assignment[abs(literal)] = literal > 0
                reduced = _reduce(clauses, literal)
                assert reduced is not None  # a pure literal cannot conflict
                clauses = reduced

    @staticmethod
    def _choose_literal(clauses: list[Clause]) -> int:
        """Branch on the most frequent literal (ties broken by magnitude)."""
        counts: dict[int, int] = {}
        for clause in clauses:
            for literal in clause:
                counts[literal] = counts.get(literal, 0) + 1
        return max(counts, key=lambda literal: (counts[literal], -abs(literal)))


def _reduce(clauses: list[Clause], literal: int) -> list[Clause] | None:
    """Condition the clause set on *literal* being true.

    Satisfied clauses are dropped and the complementary literal is removed;
    returns None when an empty clause (conflict) arises.
    """
    reduced: list[Clause] = []
    for clause in clauses:
        if literal in clause:
            continue
        if -literal in clause:
            shrunk = tuple(item for item in clause if item != -literal)
            if not shrunk:
                return None
            reduced.append(shrunk)
        else:
            reduced.append(clause)
    return reduced
