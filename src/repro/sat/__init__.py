"""Propositional SAT substrate (ground truth for the Theorem-2 reduction)."""

from .cnf import CNF, Clause, Literal
from .dimacs import parse_dimacs, to_dimacs
from .generate import pigeonhole, random_3sat_at_ratio, random_ksat
from .solver import SolverResult, SolverStats, is_satisfiable, solve

__all__ = [
    "CNF",
    "Clause",
    "Literal",
    "SolverResult",
    "SolverStats",
    "is_satisfiable",
    "parse_dimacs",
    "pigeonhole",
    "random_3sat_at_ratio",
    "random_ksat",
    "solve",
    "to_dimacs",
]
