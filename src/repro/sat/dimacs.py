"""DIMACS CNF reading and writing.

The standard interchange format for SAT: a header line ``p cnf <vars>
<clauses>`` followed by zero-terminated clause lines; ``c`` lines are
comments.
"""

from __future__ import annotations

from ..errors import ReproError
from .cnf import CNF


def parse_dimacs(text: str) -> CNF:
    """Parse a DIMACS CNF document."""
    num_vars: int | None = None
    declared_clauses: int | None = None
    clauses: list[tuple[int, ...]] = []
    pending: list[int] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ReproError(f"malformed DIMACS header at line {line_number}: {raw!r}")
            num_vars, declared_clauses = int(parts[2]), int(parts[3])
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                clauses.append(tuple(pending))
                pending = []
            else:
                pending.append(literal)
    if pending:
        clauses.append(tuple(pending))
    if num_vars is None:
        return CNF.of(clauses)
    if declared_clauses is not None and declared_clauses != len(clauses):
        raise ReproError(
            f"DIMACS header declares {declared_clauses} clauses, found {len(clauses)}"
        )
    return CNF(num_vars, tuple(clauses))


def to_dimacs(cnf: CNF, comment: str | None = None) -> str:
    """Render a CNF as a DIMACS document."""
    lines = []
    if comment:
        lines.extend(f"c {text}" for text in comment.splitlines())
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    lines.extend(
        " ".join(str(literal) for literal in clause) + " 0" for clause in cnf.clauses
    )
    return "\n".join(lines) + "\n"
