"""Schema doctor: the paper's Section-6 soundness check as a tool.

Given a schema, report for every object type and every edge definition
whether it can be populated at all -- the paper's object-type
satisfiability problem, decided by the Theorem-3 ALCQI tableau, with a
bounded finite-witness search attached.  Includes the paper's Example 6.1
conflict and the reconstructed diagrams (b)/(c), which also demonstrate
the finite/unrestricted model distinction the paper glosses over.

Run with:  python examples/schema_doctor.py
"""

from repro import SatisfiabilityChecker
from repro.workloads import CORPUS


def diagnose(name: str) -> None:
    entry = CORPUS[name]
    schema = entry.load()
    checker = SatisfiabilityChecker(schema, bounded_max_nodes=4)
    print(f"--- {name} ({entry.description}) ---")
    report = checker.check_schema(find_witnesses=True)
    for type_name, verdict in sorted(report.types.items()):
        if not verdict.tableau_satisfiable:
            print(f"  type {type_name}: UNSATISFIABLE (no model of any size)")
        elif verdict.finitely_satisfiable:
            witness = verdict.witness
            print(
                f"  type {type_name}: satisfiable "
                f"(witness graph: {witness.num_nodes} nodes, {witness.num_edges} edges)"
            )
        else:
            print(
                f"  type {type_name}: satisfiable per the ALCQI tableau, but no "
                "finite witness up to the bound -- may require an infinite model "
                "(Property Graphs are finite, so this is effectively unsatisfiable!)"
            )
    for (type_name, field_name), ok in sorted(report.fields.items()):
        status = "populatable" if ok else "NEVER populatable"
        print(f"  edge {type_name}.{field_name}: {status}")
    print(f"  => {report.summary()}")
    print()


def main() -> None:
    for name in ("user_session_keyed", "library", "example_6_1_a", "diagram_b", "diagram_c"):
        diagnose(name)


if __name__ == "__main__":
    main()
