"""Quickstart: define a schema in GraphQL SDL, build a graph, validate it.

Run with:  python examples/quickstart.py
"""

from repro import GraphBuilder, parse_schema, validate

# 1. A Property Graph schema, written in the GraphQL SDL (the paper's
#    Examples 3.1/3.4/3.12 rolled into one).
SCHEMA = """
type UserSession {
  id: ID! @required
  user(certainty: Float! comment: String): User! @required
  startTime: String! @required
  endTime: String
}

type User @key(fields: ["id"]) {
  id: ID! @required
  login: String! @required
  nicknames: [String!]!
}
"""


def main() -> None:
    schema = parse_schema(SCHEMA)
    print(f"parsed schema: {schema}")

    # 2. A Property Graph (Definition 2.1): nodes, edges, properties.
    graph = (
        GraphBuilder()
        .node("u1", "User", id="user-1", login="alice", nicknames=["al", "ali"])
        .node("u2", "User", id="user-2", login="bob")
        .node("s1", "UserSession", id="sess-1", startTime="09:00", endTime="09:45")
        .edge("s1", "user", "u1", {"certainty": 0.97, "comment": "cookie match"})
        .graph()
    )
    print(f"built graph:   {graph}")

    # 3. Decide the Schema Validation Problem (strong satisfaction).
    report = validate(schema, graph)
    print(f"validation:    {report.summary()}")
    assert report.conforms

    # 4. Break it in three different ways and watch the rules fire.
    graph.set_property("u2", "login", 42)  # WS1: wrong value type
    graph.add_node("ghost", "Phantom")  # SS1: unknown node type
    graph.add_edge("dup", "s1", "u2", "user")  # WS4: second edge on non-list field

    report = validate(schema, graph)
    print(f"after damage:  {report.summary()}")
    for violation in sorted(report.violations, key=str):
        print(f"  {violation}")
    assert not report.conforms
    assert {violation.rule for violation in report.violations} == {"WS1", "SS1", "WS4"}


if __name__ == "__main__":
    main()
