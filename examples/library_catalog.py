"""Library catalogue: the paper's Examples 3.6-3.8 end to end.

Exercises every directive the paper introduces -- @required, @distinct,
@noLoops, @uniqueForTarget, @requiredForTarget and @key -- on the
books/authors/series/publishers domain, then reproduces the §3.3
cardinality table by construction.

Run with:  python examples/library_catalog.py
"""

from repro import GraphBuilder, parse_schema, validate
from repro.workloads import CARDINALITY_FIELDS, cardinality_graph, load

SCHEMA = """
type Author @key(fields: ["name"]) {
  name: String! @required
  favoriteBook: Book
  relatedAuthor: [Author] @distinct @noloops
}

type Book {
  title: String! @required
  author: [Author] @required @distinct
}

type BookSeries {
  contains: [Book] @required @uniqueForTarget
}

type Publisher {
  published: [Book] @uniqueForTarget @requiredForTarget
}
"""


def build_catalogue():
    return (
        GraphBuilder()
        .node("leguin", "Author", name="Ursula K. Le Guin")
        .node("jemisin", "Author", name="N. K. Jemisin")
        .node("dispossessed", "Book", title="The Dispossessed")
        .node("fifth", "Book", title="The Fifth Season")
        .node("hainish", "BookSeries")
        .node("harper", "Publisher")
        .edge("dispossessed", "author", "leguin")
        .edge("fifth", "author", "jemisin")
        .edge("leguin", "favoriteBook", "fifth")
        .edge("jemisin", "relatedAuthor", "leguin")
        .edge("hainish", "contains", "dispossessed")
        .edge("harper", "published", "dispossessed")
        .edge("harper", "published", "fifth")
        .graph()
    )


def main() -> None:
    schema = parse_schema(SCHEMA)
    graph = build_catalogue()
    report = validate(schema, graph)
    print(f"catalogue: {report.summary()}")
    assert report.conforms

    # every directive, violated on purpose:
    cases = {
        "DS6 (@required edge)": lambda g: g.remove_edge(
            g.out_edges("fifth", "author")[0]
        ),
        "DS2 (@noLoops)": lambda g: g.add_edge(
            "loop", "leguin", "leguin", "relatedAuthor"
        ),
        "DS1 (@distinct)": lambda g: g.add_edge(
            "dup", "jemisin", "leguin", "relatedAuthor"
        ),
        "DS3 (@uniqueForTarget)": lambda g: (
            g.add_node("penguin", "Publisher"),
            g.add_edge("second", "penguin", "fifth", "published"),
        ),
        "DS4 (@requiredForTarget)": lambda g: (
            g.add_node("orphan", "Book", {"title": "Unpublished"}),
            g.add_edge("oa", "orphan", "leguin", "author"),
        ),
        "DS7 (@key)": lambda g: g.set_property(
            "jemisin", "name", "Ursula K. Le Guin"
        ),
    }
    for description, damage in cases.items():
        broken = build_catalogue()
        damage(broken)
        result = validate(schema, broken)
        rule = description.split()[0]
        fired = sorted({violation.rule for violation in result.violations})
        print(f"{description}: fired {fired}")
        assert rule in fired, (description, fired)

    # the §3.3 cardinality table, row by row: which (fan_out, fan_in)
    # patterns does each relationship kind accept?
    table_schema = load("cardinality_table")
    print("\n§3.3 cardinality table (✓ = pattern accepted):")
    print(f"{'relationship':>14} | {'1-to-1':^7} | {'fan-out 2':^9} | {'fan-in 2':^8}")
    for kind, field_name in CARDINALITY_FIELDS.items():
        row = []
        for fan_out, fan_in in ((1, 1), (2, 1), (1, 2)):
            graph = cardinality_graph(field_name, fan_out, fan_in)
            ok = validate(table_schema, graph).conforms
            row.append("✓" if ok else "✗")
        print(f"{kind:>14} | {row[0]:^7} | {row[1]:^9} | {row[2]:^8}")


if __name__ == "__main__":
    main()
