"""From Property Graph schema to runnable GraphQL API (the paper's §3.6).

Takes the food/person schema of Examples 3.9-3.11, extends it into a
complete GraphQL API schema (Query root, key lookups, inverse fields for
bidirectional traversal), and executes real GraphQL queries -- including
inline fragments dispatching on union-typed edge targets and backwards
traversal, the two things §3.6 singles out.

Run with:  python examples/graphql_api.py
"""

import json

from repro import GraphBuilder, parse_schema
from repro.api import GraphQLExecutor, extend_to_api_schema

SCHEMA = """
type Person @key(fields: ["name"]) {
  name: String! @required
  favoriteFood: Food
}

union Food = Pizza | Pasta

type Pizza {
  name: String!
  toppings: [String!]!
}

type Pasta {
  name: String!
}
"""


def main() -> None:
    schema = parse_schema(SCHEMA)
    api = extend_to_api_schema(schema)
    print("generated GraphQL API schema:")
    print(api.sdl)

    graph = (
        GraphBuilder()
        .node("margherita", "Pizza", name="Margherita", toppings=["basil", "mozzarella"])
        .node("carbonara", "Pasta", name="Carbonara")
        .node("ada", "Person", name="Ada")
        .node("grace", "Person", name="Grace")
        .node("alan", "Person", name="Alan")
        .edge("ada", "favoriteFood", "margherita")
        .edge("grace", "favoriteFood", "margherita")
        .edge("alan", "favoriteFood", "carbonara")
        .graph()
    )
    executor = GraphQLExecutor(api, graph)

    # forward traversal with union dispatch via inline fragments
    forward = executor.execute(
        """
        {
          allPerson {
            name
            favoriteFood {
              __typename
              ... on Pizza { name toppings }
              ... on Pasta { name }
            }
          }
        }
        """
    )
    print("forward query:")
    print(json.dumps(forward, indent=2))
    assert forward["data"]["allPerson"][0]["favoriteFood"]["__typename"] == "Pizza"

    # key-based lookup plus *backwards* traversal through the generated
    # inverse field -- the bidirectional capability §3.6 says plain PG
    # schemas lack
    backward = executor.execute(
        """
        {
          fans: allPizza {
            name
            _incoming_favoriteFood_from_Person { name }
          }
          ada: personByName(name: "Ada") { name }
        }
        """
    )
    print("backward query:")
    print(json.dumps(backward, indent=2))
    fans = backward["data"]["fans"][0]["_incoming_favoriteFood_from_Person"]
    assert sorted(fan["name"] for fan in fans) == ["Ada", "Grace"]
    assert backward["data"]["ada"] == {"name": "Ada"}


if __name__ == "__main__":
    main()
