"""Social network at scale: generated workload + incremental validation.

Builds the paper's user-session schema (Examples 3.1/3.4/3.12), generates a
conformant social-network-style graph with thousands of elements, validates
it with both engines, and then uses the incremental validator to track a
stream of mutations the way a database's integrity checker would.

Run with:  python examples/social_network.py
"""

import time

from repro.validation import IncrementalValidator, IndexedValidator, NaiveValidator
from repro.workloads import load, user_session_graph


def main() -> None:
    schema = load("user_session_edge_props")
    graph = user_session_graph(num_users=400, sessions_per_user=3, seed=7)
    print(f"workload: {graph}")

    for engine_class in (IndexedValidator, NaiveValidator):
        engine = engine_class(schema)
        start = time.perf_counter()
        report = engine.validate(graph)
        elapsed = time.perf_counter() - start
        print(f"{engine_class.__name__:>18}: {report.summary()} in {elapsed * 1000:.1f} ms")
        assert report.conforms

    # live mutation stream through the incremental validator
    live = IncrementalValidator(schema, graph.copy())
    assert live.conforms

    live.add_node("u_new", "User", {"id": "user-new", "login": "carol"})
    assert live.conforms, "a fresh valid user is fine"

    live.add_node("s_new", "UserSession", {"id": "sess-new"})
    report = live.report()
    print(f"after incomplete session: {report.summary()}")
    assert not live.conforms  # missing startTime and required user edge

    live.set_property("s_new", "startTime", "10:00")
    live.add_edge("e_new", "s_new", "u_new", "user", {"certainty": 1.0})
    print(f"after completing it:      {live.report().summary()}")
    assert live.conforms

    live.set_property("u_new", "id", "user-1")  # collides with an existing key
    report = live.report()
    print(f"after key collision:      {report.summary()}")
    assert any(violation.rule == "DS7" for violation in report.violations)

    live.set_property("u_new", "id", "user-new-2")
    assert live.conforms
    print("incremental stream OK")


if __name__ == "__main__":
    main()
