"""Schema lifecycle: infer a schema from data, evolve it, check compatibility.

Ties together three capabilities built around the paper's proposal:

1. **inference** -- induce the tightest SDL schema an existing Property
   Graph strongly satisfies (the reverse of the paper's direction);
2. **evolution** -- classify a schema change as backward compatible or
   breaking for existing data;
3. **validation** -- confirm the classification empirically on the data.

Run with:  python examples/schema_lifecycle.py
"""

from repro import parse_schema, validate
from repro.evolution import diff_schemas
from repro.inference import infer_schema
from repro.workloads import user_session_graph


def main() -> None:
    # an existing, schema-less dataset
    graph = user_session_graph(num_users=30, sessions_per_user=2, seed=11)
    print(f"dataset: {graph}")

    # 1. mine a schema from it
    inferred = infer_schema(graph)
    print("\ninferred schema:")
    print(inferred.sdl)
    assert validate(inferred.schema, graph).conforms
    print(f"key candidates: {inferred.key_candidates}")

    # 2. a compatible evolution: loosen a key, add an optional field
    evolved_sdl = inferred.sdl.replace(
        "type User @key", 'type User @deprecatedKeyGoesHere @key'
    ).replace("@deprecatedKeyGoesHere ", "") + "\ntype AuditEntry {\n  message: String\n}\n"
    evolved = parse_schema(evolved_sdl)
    diff = diff_schemas(inferred.schema, evolved)
    print(f"\ncompatible evolution: {diff.summary()}")
    for change in diff.changes:
        print(f"  {change}")
    assert diff.is_backward_compatible
    assert validate(evolved, graph).conforms  # old data still conforms

    # 3. a breaking evolution: make endTime mandatory
    breaking_sdl = inferred.sdl.replace(
        "endTime: String", "endTime: String @required"
    )
    breaking = parse_schema(breaking_sdl)
    diff = diff_schemas(inferred.schema, breaking)
    print(f"\nbreaking evolution: {diff.summary()}")
    for change in diff.breaking:
        print(f"  {change}")
    assert not diff.is_backward_compatible
    report = validate(breaking, graph)
    print(
        f"replaying existing data against the new schema: {report.summary()}"
    )
    assert not report.conforms  # the classifier was right


if __name__ == "__main__":
    main()
