"""E6 -- Theorem 3 and Example 6.1: the satisfiability engines on the corpus.

Benchmarks the ALCQI translation + tableau on every paper schema, asserts
the Example 6.1 verdicts (diagram (a): OT1 unsatisfiable; reconstruction
(c): OT2 unsatisfiable outright; reconstruction (b): satisfiable for the
tableau but with *no finite witness* -- the recorded finite-model gap), and
cross-checks tableau SAT answers against the bounded finite-model search on
every ordinary schema.
"""

import pytest

from repro.dl import Name, Tableau, schema_to_tbox
from repro.satisfiability import BoundedModelFinder, SatisfiabilityChecker
from repro.validation import validate
from repro.workloads import CORPUS, random_schema

ORDINARY = ["user_session_edge_props", "library", "food_union", "food_interface", "vehicles"]


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("name", ORDINARY)
def test_translation_cost(benchmark, name):
    schema = CORPUS[name].load()
    tbox = benchmark(schema_to_tbox, schema)
    assert tbox.axioms


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("name", ORDINARY)
def test_whole_schema_tableau(benchmark, name):
    schema = CORPUS[name].load()
    checker = SatisfiabilityChecker(schema)
    report = benchmark(checker.check_schema)
    assert report.sound, f"{name}: {report.summary()}"


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("name", ORDINARY)
def test_bounded_search_agrees(benchmark, name):
    schema = CORPUS[name].load()
    finder = BoundedModelFinder(schema)

    def all_types_have_witnesses():
        for type_name in schema.object_types:
            result = finder.find_model(type_name, max_nodes=4)
            if not result.satisfiable:
                return False
            if not validate(schema, result.witness).conforms:
                return False
        return True

    assert benchmark(all_types_have_witnesses)


@pytest.mark.experiment("E6")
def test_example_6_1_a(benchmark):
    schema = CORPUS["example_6_1_a"].load()
    tableau = Tableau(schema_to_tbox(schema))

    def verdicts():
        return (
            tableau.is_satisfiable(Name("OT1")),
            tableau.is_satisfiable(Name("OT2")),
            tableau.is_satisfiable(Name("OT3")),
        )

    assert benchmark(verdicts) == (False, True, True)


@pytest.mark.experiment("E6")
def test_diagram_b_finite_model_gap(benchmark):
    """The reproduction finding: tableau SAT, no finite witness."""
    schema = CORPUS["diagram_b"].load()
    checker = SatisfiabilityChecker(schema, bounded_max_nodes=5)

    def verdict():
        result = checker.check_type("OT2")
        return result.tableau_satisfiable, result.finitely_satisfiable

    tableau_sat, finite = benchmark(verdict)
    assert tableau_sat is True
    assert finite is None  # no witness up to the bound: infinite-model trap


@pytest.mark.experiment("E6")
def test_diagram_c_unsat(benchmark):
    schema = CORPUS["diagram_c"].load()
    checker = SatisfiabilityChecker(schema)
    assert benchmark(checker.is_satisfiable, "OT2") is False


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("num_types", [4, 8, 16, 32])
def test_random_schema_scaling(benchmark, num_types):
    """Tableau cost versus schema size on benign random schemas."""
    schema = random_schema(
        num_object_types=num_types,
        num_interface_types=max(1, num_types // 4),
        num_union_types=1,
        directive_probability=0.2,
        seed=num_types,
    )
    checker = SatisfiabilityChecker(schema)
    benchmark.extra_info["axioms"] = len(checker.tbox.axioms)

    def all_types():
        return [checker.is_satisfiable(name) for name in sorted(schema.object_types)]

    verdicts = benchmark(all_types)
    assert len(verdicts) == num_types
