"""E8 -- baseline comparison against Angles' schema model [3].

The paper positions Angles' model as the only prior formal Property Graph
schema proposal.  This experiment translates the paper's schemas into that
model, validates identical graphs under both, and quantifies:

* the speed of the two validators on conformant workloads, and
* the *coverage gap*: violations the SDL semantics catches that the Angles
  translation cannot express (target-side cardinality/participation,
  @distinct, @noLoops, composite keys) -- asserted, not just timed.
"""

import pytest

from repro.baselines import AnglesValidator, sdl_to_angles
from repro.validation import IndexedValidator, validate
from repro.workloads import CORPUS, library_graph, user_session_graph

US_SCHEMA = CORPUS["user_session_edge_props"].load()
US_ANGLES = sdl_to_angles(US_SCHEMA).schema
LIB_SCHEMA = CORPUS["library"].load()
LIB_ANGLES = sdl_to_angles(LIB_SCHEMA).schema

SIZES = [50, 200, 800]


@pytest.mark.experiment("E8")
@pytest.mark.parametrize("num_users", SIZES)
def test_sdl_validator_speed(benchmark, num_users):
    graph = user_session_graph(num_users, 2, seed=1)
    validator = IndexedValidator(US_SCHEMA)
    benchmark.extra_info["n"] = len(graph)
    assert benchmark(validator.validate, graph).conforms


@pytest.mark.experiment("E8")
@pytest.mark.parametrize("num_users", SIZES)
def test_angles_validator_speed(benchmark, num_users):
    graph = user_session_graph(num_users, 2, seed=1)
    validator = AnglesValidator(US_ANGLES)
    benchmark.extra_info["n"] = len(graph)
    assert benchmark(validator.conforms, graph)


@pytest.mark.experiment("E8")
def test_translation_cost(benchmark):
    result = benchmark(sdl_to_angles, LIB_SCHEMA)
    assert result.schema.node_types


@pytest.mark.experiment("E8")
def test_coverage_gap(benchmark):
    """Constraints the SDL semantics enforces but the Angles model cannot:
    the same damaged graphs must fail SDL validation yet pass Angles."""
    base = library_graph(4, 6, num_series=1, num_publishers=2, seed=0)

    def damaged_variants():
        variants = []
        # DS3: second publisher for one book (target-side cardinality)
        graph = base.copy()
        book = next(iter(graph.nodes_with_label("Book")))
        publisher = next(
            p
            for p in graph.nodes_with_label("Publisher")
            if all(graph.endpoints(e)[0] != p for e in graph.in_edges(book, "published"))
        )
        graph.add_edge("gap_ds3", publisher, book, "published")
        variants.append(("DS3", graph))
        # DS4: a book nobody published (target-side participation)
        graph = base.copy()
        author = next(iter(graph.nodes_with_label("Author")))
        orphan = graph.add_node("gap_orphan", "Book", {"title": "ghost"})
        graph.add_edge("gap_edge", orphan, author, "author")
        variants.append(("DS4", graph))
        # DS2: a relatedAuthor self-loop
        graph = base.copy()
        graph.add_edge("gap_loop", author, author, "relatedAuthor")
        variants.append(("DS2", graph))
        # DS1: a duplicated author edge
        graph = base.copy()
        book = next(iter(graph.nodes_with_label("Book")))
        edge = graph.out_edges(book, "author")[0]
        target = graph.endpoints(edge)[1]
        graph.add_edge("gap_dup", book, target, "author")
        variants.append(("DS1", graph))
        return variants

    def measure():
        gaps = 0
        for rule, graph in damaged_variants():
            sdl_report = validate(LIB_SCHEMA, graph)
            assert not sdl_report.conforms, rule
            assert rule in {v.rule for v in sdl_report.violations}, rule
            if AnglesValidator(LIB_ANGLES).conforms(graph):
                gaps += 1
        return gaps

    gaps = benchmark(measure)
    assert gaps == 4, "all four directive families should be invisible to Angles"
