"""E9 (ablation) -- which tableau optimisations carry the load?

DESIGN.md calls out four tableau optimisations as design choices: boolean
constraint propagation, Name-guarded lazy axiom application, lazy unfolding
of union/interface definitions, and disjointness propagation.  All are
semantics-preserving, so every configuration must return identical verdicts
(asserted); the benchmark rows quantify what each one buys on a Theorem-2
reduction instance, the workload that motivated them.
"""

import pytest

from repro.dl import Name, Tableau, schema_to_tbox
from repro.sat import random_ksat, solve
from repro.satisfiability import reduce_cnf_to_schema
from repro.workloads import CORPUS

CONFIGS = {
    "full": {},
    "no_bcp": {"bcp": False},
    "no_guarded_axioms": {"guarded_axioms": False},
    "no_lazy_definitions": {"lazy_definitions": False},
    "no_disjointness_propagation": {"disjointness_propagation": False},
}

CNF = random_ksat(3, 6, k=3, seed=2)
EXPECTED = solve(CNF).satisfiable
REDUCTION = reduce_cnf_to_schema(CNF)


@pytest.mark.experiment("E9")
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_reduction_instance_ablation(benchmark, config):
    tableau = Tableau(schema_to_tbox(REDUCTION.schema), **CONFIGS[config])
    verdict = benchmark.pedantic(
        tableau.is_satisfiable,
        args=(Name(REDUCTION.anchor),),
        rounds=1,
        iterations=1,
    )
    assert verdict == EXPECTED
    benchmark.extra_info["branches"] = tableau.stats.branches


@pytest.mark.experiment("E9")
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_example_6_1_ablation(benchmark, config):
    schema = CORPUS["example_6_1_a"].load()
    tableau = Tableau(schema_to_tbox(schema), **CONFIGS[config])

    def verdicts():
        return (
            tableau.is_satisfiable(Name("OT1")),
            tableau.is_satisfiable(Name("OT2")),
        )

    assert benchmark(verdicts) == (False, True)
