"""E10 (extension) -- incremental vs from-scratch re-validation.

The incremental validator keeps a mutation stream's report current by
re-checking only affected scopes.  This benchmark quantifies the win over
re-running the indexed engine after every mutation, across graph sizes --
the speedup should grow linearly with graph size since per-mutation work is
O(affected scope), not O(n).  Equality of the resulting reports is asserted
(and tested exhaustively in the differential test suite).
"""

import pytest

from repro.validation import IncrementalValidator, IndexedValidator
from repro.workloads import load, user_session_graph

SCHEMA = load("user_session_edge_props")
SIZES = [100, 400, 1600]


def _mutations(live: IncrementalValidator, tag: str):
    """A representative burst: add a user+session, break and fix a key."""
    live.add_node(f"u_{tag}", "User", {"id": f"id_{tag}", "login": tag})
    live.add_node(f"s_{tag}", "UserSession", {"id": f"sid_{tag}", "startTime": "t"})
    live.add_edge(f"e_{tag}", f"s_{tag}", f"u_{tag}", "user", {"certainty": 1.0})
    live.set_property(f"u_{tag}", "id", "user-0")  # DS7 collision
    live.set_property(f"u_{tag}", "id", f"id_{tag}")  # repaired
    live.remove_node(f"s_{tag}")
    live.remove_node(f"u_{tag}")


@pytest.mark.experiment("E10")
@pytest.mark.parametrize("num_users", SIZES)
def test_incremental_mutation_burst(benchmark, num_users):
    graph = user_session_graph(num_users, 2, seed=5)
    live = IncrementalValidator(SCHEMA, graph)
    counter = [0]

    def burst():
        counter[0] += 1
        _mutations(live, f"b{counter[0]}")
        return live.conforms

    benchmark.extra_info["n"] = len(graph)
    assert benchmark(burst)


@pytest.mark.experiment("E10")
@pytest.mark.parametrize("num_users", SIZES)
def test_from_scratch_equivalent_burst(benchmark, num_users):
    """The same burst, revalidating the whole graph after every mutation."""
    graph = user_session_graph(num_users, 2, seed=5)
    validator = IndexedValidator(SCHEMA)
    counter = [0]

    def burst():
        counter[0] += 1
        tag = f"b{counter[0]}"
        graph.add_node(f"u_{tag}", "User", {"id": f"id_{tag}", "login": tag})
        validator.validate(graph)
        graph.add_node(f"s_{tag}", "UserSession", {"id": f"sid_{tag}", "startTime": "t"})
        validator.validate(graph)
        graph.add_edge(f"e_{tag}", f"s_{tag}", f"u_{tag}", "user", {"certainty": 1.0})
        validator.validate(graph)
        graph.set_property(f"u_{tag}", "id", "user-0")
        validator.validate(graph)
        graph.set_property(f"u_{tag}", "id", f"id_{tag}")
        validator.validate(graph)
        graph.remove_node(f"s_{tag}")
        validator.validate(graph)
        graph.remove_node(f"u_{tag}")
        return validator.validate(graph).conforms

    benchmark.extra_info["n"] = len(graph)
    assert benchmark(burst)
