"""E5 -- Theorem 2: NP-hardness via the CNF-SAT reduction, executed.

The reduction maps a CNF to a schema whose anchor type is satisfiable iff
the CNF is.  The benchmarks (a) time the reduction itself (polynomial, as
the proof requires), (b) time object-type satisfiability on reduced
instances of growing size, and (c) assert agreement with the DPLL ground
truth on every instance.

Shapes to check: the reduction's cost grows polynomially, the tableau's
cost on reduced instances grows *exponentially* with the variable count
(the NP-hardness showing through), and the verdicts always match DPLL.
Direct DPLL rows are included for contrast: the detour through the schema
encoding costs orders of magnitude more, exactly as a generic reduction
should.
"""

import pytest

from repro.sat import random_ksat, solve
from repro.satisfiability import (
    SatisfiabilityChecker,
    assignment_from_graph,
    graph_from_assignment,
    reduce_cnf_to_schema,
)
from repro.validation import validate

#: (num_vars, num_clauses, seed) -- sizes rise toward the 4.26 transition
INSTANCES = [
    (3, 9, 0),
    (3, 13, 1),
    (4, 13, 0),
    (4, 17, 1),
    (5, 17, 2),
    (5, 21, 8),
]

RATIO_SWEEP = [2.0, 3.0, 4.26, 6.0]


def _label(num_vars, num_clauses, seed):
    return f"v{num_vars}_c{num_clauses}_s{seed}"


@pytest.mark.experiment("E5")
@pytest.mark.parametrize(
    "num_vars,num_clauses,seed", INSTANCES, ids=[_label(*i) for i in INSTANCES]
)
def test_reduction_construction_cost(benchmark, num_vars, num_clauses, seed):
    cnf = random_ksat(num_vars, num_clauses, k=3, seed=seed)
    reduction = benchmark(reduce_cnf_to_schema, cnf)
    benchmark.extra_info["schema_types"] = len(reduction.schema.object_types) + len(
        reduction.schema.interface_types
    )


@pytest.mark.experiment("E5")
@pytest.mark.parametrize(
    "num_vars,num_clauses,seed", INSTANCES, ids=[_label(*i) for i in INSTANCES]
)
def test_tableau_on_reduced_instance(benchmark, num_vars, num_clauses, seed):
    cnf = random_ksat(num_vars, num_clauses, k=3, seed=seed)
    expected = solve(cnf).satisfiable
    reduction = reduce_cnf_to_schema(cnf)
    checker = SatisfiabilityChecker(reduction.schema, bounded_max_nodes=0)
    benchmark.extra_info["sat"] = expected
    verdict = benchmark.pedantic(
        checker.is_satisfiable, args=(reduction.anchor,), rounds=1, iterations=1
    )
    assert verdict == expected


@pytest.mark.experiment("E5")
@pytest.mark.parametrize(
    "num_vars,num_clauses,seed", INSTANCES, ids=[_label(*i) for i in INSTANCES]
)
def test_direct_dpll_for_contrast(benchmark, num_vars, num_clauses, seed):
    cnf = random_ksat(num_vars, num_clauses, k=3, seed=seed)
    result = benchmark(solve, cnf)
    assert result.satisfiable in (True, False)


@pytest.mark.experiment("E5")
@pytest.mark.parametrize("ratio", RATIO_SWEEP, ids=[f"r{r}" for r in RATIO_SWEEP])
def test_phase_ratio_sweep(benchmark, ratio):
    """Clause/variable ratio sweep at v=4 across the 3-SAT phase transition."""
    num_vars = 4
    cnf = random_ksat(num_vars, max(1, round(ratio * num_vars)), k=3, seed=11)
    expected = solve(cnf).satisfiable
    reduction = reduce_cnf_to_schema(cnf)
    checker = SatisfiabilityChecker(reduction.schema, bounded_max_nodes=0)
    benchmark.extra_info["sat"] = expected
    verdict = benchmark.pedantic(
        checker.is_satisfiable, args=(reduction.anchor,), rounds=1, iterations=1
    )
    assert verdict == expected


@pytest.mark.experiment("E5")
def test_witness_round_trip(benchmark):
    """Models transfer both ways across the reduction (the proof's iff)."""
    cnf = random_ksat(4, 12, k=3, seed=5)
    dpll = solve(cnf)
    assert dpll.satisfiable
    reduction = reduce_cnf_to_schema(cnf)

    def round_trip():
        witness = graph_from_assignment(reduction, dpll.assignment)
        assert validate(reduction.schema, witness).conforms
        return cnf.evaluate(assignment_from_graph(reduction, witness))

    assert benchmark(round_trip)
