"""E15 -- the columnar graph core and out-of-core streaming validation.

Claim under test: validation does not need the Property Graph in RAM.  The
columnar core (interned label/property pools, label-sorted runs, CSR
incidence, typed property columns) gives the fused kernel integer-factor
speedups in memory, and the streaming validator extends the same kernel to
JSONL files of arbitrary size by cutting them into scope-respecting chunks
-- with reports byte-identical to any in-memory engine.

Three things are measured/asserted here:

1. scale: a JSONL graph of n >= 10^6 elements streams through full strong
   validation with the peak resident chunk graph bounded by the chunk size
   (``peak_resident <= _RESIDENT_FACTOR * chunk_elements``, asserted from
   the ``stream.peak_resident`` obs gauge) and far below the graph size;
2. identity: the streamed report is byte-identical to in-memory validation
   -- dict and columnar backends, jobs in {1, 2, 4}, chunking on and off;
3. freeze cost: building the columnar image is a one-time cost the kernel
   speedup repays within a few validation runs.

Set ``PGSCHEMA_BENCH_QUICK=1`` for CI smoke mode: a small file stands in
for the million-element graph (the bounded-memory assertion still runs),
and ratio floors are not asserted.
"""

import json
import os
import random
import time

import pytest

from repro import obs
from repro.pg import dump_graph_jsonl, freeze
from repro.validation import ParallelValidator, StreamValidator, compile_plan
from repro.workloads import load, user_session_graph

QUICK = os.environ.get("PGSCHEMA_BENCH_QUICK") == "1"

SCHEMA = load("user_session_edge_props")

#: users -> n = 5 * users (1 User + 2 UserSession + 2 user edges).
NUM_USERS = 400 if QUICK else 200_000

#: Elements per streaming chunk.
CHUNK = 512 if QUICK else 32768

#: Chunk graphs carry ghost endpoints and degree-role edge incidents on top
#: of their assigned elements, so the resident bound is a small constant
#: factor of the chunk size, not the chunk size itself.
_RESIDENT_FACTOR = 8

JOBS = [1, 2, 4]


def write_user_session_jsonl(path, num_users, seed=42):
    """Stream-write the ``user_session_graph`` shape without materialising
    the graph: the writer's memory is O(1) no matter how large the file."""
    rng = random.Random(seed)
    count = 0
    with open(path, "w", encoding="utf-8") as fp:
        edge_count = 0
        for user_index in range(num_users):
            user = f"u{user_index}"
            properties = {
                "id": f"user-{user_index}",
                "login": f"login{user_index}",
            }
            if rng.random() < 0.5:
                properties["nicknames"] = [
                    f"nick{user_index}_{i}" for i in range(rng.randint(1, 3))
                ]
            records = [
                {"type": "node", "id": user, "label": "User", "properties": properties}
            ]
            for session_index in range(2):
                session = f"s{user_index}_{session_index}"
                session_props = {
                    "id": f"sess-{user_index}-{session_index}",
                    "startTime": f"2019-06-30T{session_index:02d}:00",
                }
                if rng.random() < 0.5:
                    session_props["endTime"] = f"2019-06-30T{session_index:02d}:45"
                records.append(
                    {
                        "type": "node",
                        "id": session,
                        "label": "UserSession",
                        "properties": session_props,
                    }
                )
                records.append(
                    {
                        "type": "edge",
                        "id": f"e{edge_count}",
                        "source": session,
                        "target": user,
                        "label": "user",
                        "properties": {"certainty": round(rng.random(), 3)},
                    }
                )
                edge_count += 1
            for record in records:
                fp.write(json.dumps(record, separators=(",", ":")) + "\n")
                count += 1
    return count


# --------------------------------------------------------------------------- #
# 1. scale: n >= 10^6 in bounded memory
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E15")
def test_stream_validates_large_graph_in_bounded_memory(tmp_path):
    path = tmp_path / "big.jsonl"
    total = write_user_session_jsonl(path, NUM_USERS)
    if not QUICK:
        assert total >= 10**6, total
    validator = StreamValidator(SCHEMA, chunk_elements=CHUNK)
    with obs.observed(metrics=True) as observation:
        start = time.perf_counter()
        report = validator.validate(path)
        elapsed = time.perf_counter() - start
        snapshot = observation.registry.snapshot()
    assert report.conforms, report.summary()
    peak = snapshot["gauges"]["stream.peak_resident"]
    assert peak == validator.peak_resident
    assert peak <= _RESIDENT_FACTOR * CHUNK, (
        f"peak resident chunk graph {peak} exceeds "
        f"{_RESIDENT_FACTOR} * chunk_elements = {_RESIDENT_FACTOR * CHUNK}"
    )
    if not QUICK:
        assert peak < total / 4, f"peak {peak} not far below n={total}"
    assert snapshot["counters"]["stream.nodes"] == NUM_USERS * 3
    print(
        f"\nE15 stream @ n={total}: {elapsed:.1f} s "
        f"({total / elapsed / 1000:.0f}k elements/s), chunk={CHUNK}, "
        f"peak resident {peak} ({peak / total:.2%} of n)"
    )


@pytest.mark.experiment("E15")
def test_peak_resident_tracks_chunk_size(tmp_path):
    """Halving the chunk size must shrink the resident bound: the memory
    ceiling is set by the caller, not by the file."""
    path = tmp_path / "medium.jsonl"
    write_user_session_jsonl(path, 200 if QUICK else 2000)
    peaks = {}
    for chunk_elements in (64, 256, 1024):
        validator = StreamValidator(SCHEMA, chunk_elements=chunk_elements)
        validator.validate(path)
        peaks[chunk_elements] = validator.peak_resident
        assert validator.peak_resident <= _RESIDENT_FACTOR * chunk_elements
    print(f"\nE15 peak resident by chunk size: {peaks}")
    assert peaks[64] < peaks[1024]


# --------------------------------------------------------------------------- #
# 2. identity: streamed == in-memory, any backend, any worker count
# --------------------------------------------------------------------------- #


def _render(report):
    return (
        report.mode,
        report.complete,
        "\n".join(str(violation) for violation in report.violations),
    )


@pytest.mark.experiment("E15")
def test_streamed_reports_byte_identical_to_in_memory(tmp_path):
    graph = user_session_graph(60 if QUICK else 600, sessions_per_user=2, seed=9)
    graph.add_node("ghost", "Ghost")  # SS1: make the report non-empty
    graph.add_node("u-bad", "User", {"id": "dup", "login": 3})  # WS1
    path = tmp_path / "g.jsonl"
    with open(path, "w", encoding="utf-8") as fp:
        dump_graph_jsonl(graph, fp)
    plan = compile_plan(SCHEMA)
    frozen = freeze(graph)
    renders = set()
    for jobs in JOBS:
        validator = ParallelValidator(SCHEMA, jobs=jobs, plan=plan)
        renders.add(_render(validator.validate(graph)))
        renders.add(_render(validator.validate(frozen)))
    for chunk_elements in (50, 10**7):
        streamed = StreamValidator(
            SCHEMA, chunk_elements=chunk_elements, plan=plan
        ).validate(path)
        renders.add(_render(streamed))
    assert len(renders) == 1, "engines disagree on the rendered report"
    ((_, _, rendered),) = renders
    assert "SS1" in rendered and "WS1" in rendered


# --------------------------------------------------------------------------- #
# 3. freeze cost vs kernel payoff
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E15")
def test_freeze_cost_repaid_by_kernel_speedup():
    graph = user_session_graph(100 if QUICK else 3200, sessions_per_user=2, seed=42)
    plan = compile_plan(SCHEMA)
    validator = ParallelValidator(SCHEMA, jobs=1, plan=plan)
    validator.validate(graph)  # warm
    start = time.perf_counter()
    frozen = freeze(graph)
    t_freeze = time.perf_counter() - start
    validator.validate(frozen)  # warm

    def best_of(callable_, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - t0)
        return best

    t_dict = best_of(lambda: validator.validate(graph))
    t_columnar = best_of(lambda: validator.validate(frozen))
    saved = t_dict - t_columnar
    runs_to_repay = t_freeze / saved if saved > 0 else float("inf")
    print(
        f"\nE15 freeze @ n={len(graph)}: freeze {t_freeze * 1000:.1f} ms, "
        f"dict {t_dict * 1000:.1f} ms, columnar {t_columnar * 1000:.1f} ms "
        f"-> repaid after {runs_to_repay:.1f} run(s)"
    )
    if not QUICK:
        assert t_columnar < t_dict, "columnar kernel slower than dict kernel"
        assert runs_to_repay < 10, f"freeze repaid only after {runs_to_repay:.1f} runs"
