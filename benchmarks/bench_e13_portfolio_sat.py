"""E13 -- portfolio satisfiability: batching, fan-out, racing, verdict caching.

Claim under test: whole-schema satisfiability (``check_schema``) repays the
same treatment PR 3 gave validation.  The serial sweep runs one tableau
search per element -- for a type with k relationship fields that is k+1
searches over nearly identical concepts.  The portfolio engine batches each
type and its fields into one conjunctive concept (one search decides them
all when satisfiable), fans units over the executor ladder, and memoizes
decided verdicts in a schema-keyed :class:`SatCache`.

Four things are measured/asserted here:

1. speedup: portfolio ``check_schema(jobs=4)`` vs the serial engine over the
   paper corpus plus a scaled hub/chain schema -- the portfolio run must be
   at least 1.8x faster (single-core containers included: the win comes
   from batching, not just fan-out);
2. verdict caching: a warm re-check of an already-decided schema must be at
   least 5x faster than a cold one;
3. racing: ``engine="race"`` agrees with serial on every verdict (the
   bounded finder can only *win* races, never flip an answer);
4. determinism: serial and portfolio reports are byte-identical through
   ``to_json()`` for jobs ∈ {1, 2, 4} -- asserted inside the bench, so a
   bench run doubles as an end-to-end check.

Set ``PGSCHEMA_BENCH_QUICK=1`` to run with tiny instances (CI smoke mode);
speedup ratios are then not asserted -- fixed per-call overheads dominate at
toy sizes -- but every agreement check still runs.
"""

import json
import os
import time

import pytest

from repro.satisfiability import SatCache, SatisfiabilityChecker
from repro.workloads import CORPUS, hub_chain_schema, load

QUICK = os.environ.get("PGSCHEMA_BENCH_QUICK") == "1"

JOBS = [1, 2, 4]


def _suite():
    """The measured schema set: every paper schema plus scaled instances."""
    scaled = (
        [hub_chain_schema(depth=3, leaves=2)]
        if QUICK
        else [hub_chain_schema(depth=12, leaves=8), hub_chain_schema(depth=8, leaves=12)]
    )
    return scaled + [load(name) for name in CORPUS]


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _check_suite(schemas, engine, jobs=None):
    """One cold sweep over the suite: a fresh private cache per schema, so
    runs never replay each other's verdicts."""
    return [
        SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
            jobs=jobs, engine=engine
        )
        for schema in schemas
    ]


# --------------------------------------------------------------------------- #
# 1. speedup
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E13")
def test_serial_baseline(benchmark):
    schemas = _suite()
    benchmark.extra_info["schemas"] = len(schemas)
    benchmark(_check_suite, schemas, "serial")


@pytest.mark.experiment("E13")
@pytest.mark.parametrize("jobs", JOBS)
def test_portfolio_scaling(benchmark, jobs):
    schemas = _suite()
    benchmark.extra_info["schemas"] = len(schemas)
    benchmark(_check_suite, schemas, "portfolio", jobs)


@pytest.mark.experiment("E13")
def test_portfolio_speedup_over_serial():
    """The acceptance ratio: portfolio jobs=4 must be >= 1.8x serial."""
    schemas = _suite()
    _check_suite(schemas, "serial")  # warm code paths before timing
    _check_suite(schemas, "portfolio", 4)
    t_serial = _best_of(lambda: _check_suite(schemas, "serial"))
    t_portfolio = _best_of(lambda: _check_suite(schemas, "portfolio", 4))
    speedup = t_serial / t_portfolio
    print(
        f"\nE13 speedup over {len(schemas)} schemas: serial "
        f"{t_serial * 1000:.1f} ms, portfolio(jobs=4) "
        f"{t_portfolio * 1000:.1f} ms -> {speedup:.2f}x"
    )
    if not QUICK:
        assert speedup >= 1.8, f"speedup {speedup:.2f}x below the 1.8x floor"


# --------------------------------------------------------------------------- #
# 2. verdict caching
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E13")
def test_sat_cache_makes_recheck_cheaper():
    """A warm re-check replays memoized verdicts: >= 5x over cold."""
    schemas = _suite()

    def cold():
        _check_suite(schemas, "portfolio", 4)  # fresh cache per schema

    caches = [SatCache(schema) for schema in schemas]

    def warm():
        for schema, cache in zip(schemas, caches):
            SatisfiabilityChecker(schema, cache=cache).check_schema(jobs=4)

    cold()  # warm the code paths
    warm()  # fill the persistent caches
    t_cold = _best_of(cold)
    t_warm = _best_of(warm)
    ratio = t_cold / t_warm
    hits = sum(cache.cache_info()["hits"] for cache in caches)
    print(
        f"\nE13 sat cache: cold {t_cold * 1000:.2f} ms, warm "
        f"{t_warm * 1000:.2f} ms ({ratio:.1f}x, {hits} verdict hits)"
    )
    assert hits > 0, "warm sweep never hit the verdict cache"
    if not QUICK:
        assert ratio >= 5.0, f"warm re-check only {ratio:.2f}x over cold"


# --------------------------------------------------------------------------- #
# 3 + 4. agreement and determinism (asserted even in quick mode)
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E13")
@pytest.mark.parametrize("jobs", JOBS)
def test_portfolio_byte_identical_to_serial(jobs):
    checked = 0
    for schema in _suite():
        serial = SatisfiabilityChecker(schema, cache=False).check_schema(
            engine="serial"
        )
        expected = json.dumps(serial.to_json(), sort_keys=True)
        portfolio = SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
            jobs=jobs, engine="portfolio"
        )
        assert json.dumps(portfolio.to_json(), sort_keys=True) == expected
        checked += 1
    assert checked >= len(CORPUS)


@pytest.mark.experiment("E13")
def test_race_agrees_with_serial():
    for schema in _suite():
        serial = SatisfiabilityChecker(schema, cache=False).check_schema(
            engine="serial"
        )
        race = SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
            engine="race"
        )
        assert set(race.types) == set(serial.types)
        for name, verdict in race.types.items():
            assert verdict.verdict == serial.types[name].verdict, name
        assert race.fields == serial.fields


# --------------------------------------------------------------------------- #
# 5. observability overhead (asserted even in quick mode)
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E13")
def test_sat_sweep_with_observation_within_noise():
    """A whole-schema portfolio sweep under tracing+metrics must stay within
    noise of an unobserved sweep: the sat engines record one span per unit
    and fold tableau statistics once per search, never per expansion."""
    from repro import obs

    obs.uninstall()
    schemas = _suite()
    _check_suite(schemas, "portfolio", 2)  # warm code paths
    t_off = _best_of(lambda: _check_suite(schemas, "portfolio", 2))
    obs.install(obs.Tracer(), obs.MetricsRegistry())
    try:
        t_on = _best_of(lambda: _check_suite(schemas, "portfolio", 2))
    finally:
        obs.uninstall()
    ratio = t_on / t_off
    print(
        f"\nE13 obs overhead: off {t_off * 1000:.2f} ms, "
        f"on {t_on * 1000:.2f} ms ({ratio:.2f}x)"
    )
    assert ratio < 1.4, f"observed sat sweep cost {ratio:.2f}x"
