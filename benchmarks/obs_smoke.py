"""End-to-end observability smoke: traced validate + sat on a workload.

Not a pytest module: run directly with ``python benchmarks/obs_smoke.py``
(CI's obs-smoke job).  The script

1. materialises a workload schema and graph on disk,
2. runs ``pgschema validate --engine parallel`` and ``pgschema sat`` through
   the real CLI with ``--trace``/``--metrics``,
3. validates every exported artifact against the checked-in JSON schemas
   under ``docs/schemas/`` (the same subset validator as
   ``python -m repro.obs check``), and
4. asserts the load-bearing content: run/shard spans present and nested,
   per-rule check counters at the exact element counts, plan-cache and
   sat-cache statistics attached.

Exit status 0 means the whole observability pipeline -- instrumentation,
worker merging, exporters, schemas -- agrees with itself.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro.cli import main as pgschema
from repro.obs.export import check_schema
from repro.pg.io import dumps_graph
from repro.workloads import CORPUS, user_session_graph

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
QUICK = os.environ.get("PGSCHEMA_BENCH_QUICK") == "1"
NUM_USERS = 60 if QUICK else 400


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _schema(name: str) -> dict:
    return _load(os.path.join(REPO, "docs", "schemas", name))


def _conform(payload: dict, schema_name: str, label: str) -> None:
    problems = check_schema(payload, _schema(schema_name))
    if problems:
        for problem in problems:
            print(f"{label}: {problem}", file=sys.stderr)
        raise SystemExit(f"{label} does not conform to {schema_name}")
    print(f"{label}: conforms to {schema_name}")


def main() -> int:
    trace_schema = "trace.schema.json"
    metrics_schema = "metrics.schema.json"
    graph = user_session_graph(NUM_USERS, sessions_per_user=2, seed=42)
    with tempfile.TemporaryDirectory() as tmp:
        schema_path = os.path.join(tmp, "schema.graphql")
        graph_path = os.path.join(tmp, "graph.json")
        with open(schema_path, "w") as handle:
            handle.write(CORPUS["user_session_edge_props"].sdl)
        with open(graph_path, "w") as handle:
            handle.write(dumps_graph(graph))

        # --- traced parallel validation -------------------------------- #
        v_trace = os.path.join(tmp, "validate.trace.json")
        v_metrics = os.path.join(tmp, "validate.metrics.json")
        code = pgschema(
            [
                "validate", schema_path, graph_path,
                "--engine", "parallel", "--jobs", "4",
                "--trace", v_trace, "--metrics", v_metrics,
            ]
        )
        assert code == 0, f"validate exited {code}"
        trace = _load(v_trace)
        metrics = _load(v_metrics)
        _conform(trace, trace_schema, "validate --trace")
        _conform(metrics, metrics_schema, "validate --metrics")

        events = trace["traceEvents"]
        spans = {event["name"]: event for event in events if event["ph"] == "X"}
        for required in ("sdl.parse", "schema.build", "pg.load",
                         "validation.run", "validation.merge"):
            assert required in spans, f"missing span {required}"
        run = spans["validation.run"]
        shards = [e for e in events if e["name"] == "validation.shard"]
        assert shards, "no shard spans recorded"
        for shard in shards:
            if shard["pid"] == run["pid"] and shard["tid"] == run["tid"]:
                assert run["ts"] <= shard["ts"]
                assert shard["ts"] + shard["dur"] <= run["ts"] + run["dur"] + 1e-3
        counters = metrics["counters"]
        assert counters["validation.runs"] == 1
        assert counters["validation.checks.WS1"] == graph.num_nodes
        assert counters["validation.checks.DS1"] == graph.num_edges
        assert counters["validation.shards"] == len(shards)
        assert "validation.plan_cache_info.hits" in metrics["gauges"]
        assert "validation.shard_size" in metrics["histograms"]
        print(
            f"validate: {len(events)} trace event(s), "
            f"{len(counters)} counter(s), {len(shards)} shard span(s)"
        )

        # --- traced whole-schema satisfiability ------------------------ #
        s_trace = os.path.join(tmp, "sat.trace.json")
        s_metrics = os.path.join(tmp, "sat.metrics.json")
        code = pgschema(
            ["sat", schema_path, "--trace", s_trace, "--metrics", s_metrics]
        )
        assert code == 0, f"sat exited {code}"
        trace = _load(s_trace)
        metrics = _load(s_metrics)
        _conform(trace, trace_schema, "sat --trace")
        _conform(metrics, metrics_schema, "sat --metrics")
        names = {event["name"] for event in trace["traceEvents"]}
        assert {"sat.run", "sat.unit"} <= names, names
        counters = metrics["counters"]
        assert counters["sat.units"] >= 1
        assert any(name.startswith("sat.types.") for name in counters)
        assert "sat.cache_info.hits" in metrics["gauges"]
        print(
            f"sat: {len(trace['traceEvents'])} trace event(s), "
            f"{counters['sat.units']:.0f} unit(s)"
        )

        # --- the stats surface shares the metrics vocabulary ----------- #
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = pgschema(["stats", graph_path, "--json"])
        assert code == 0, f"stats exited {code}"
        stats = json.loads(buffer.getvalue())
        _conform(stats, metrics_schema, "stats --json")
        assert stats["counters"]["pg.nodes"] == graph.num_nodes
        assert stats["counters"]["pg.edges"] == graph.num_edges

    print("obs smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
