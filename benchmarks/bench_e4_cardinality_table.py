"""E4 -- the §3.3 cardinality table.

The paper's table says how the four directive combinations realise the four
binary-relationship cardinalities:

    1:1   rel: B @uniqueForTarget
    1:N   rel: B
    N:1   rel: [B] @uniqueForTarget
    N:M   rel: [B]

Each benchmark validates a fan-out/fan-in pattern against a table row and
*asserts* the accept/reject matrix the semantics predicts -- the reproduced
"table" is the assertion set plus the timing rows.
"""

import pytest

from repro.validation import IndexedValidator
from repro.workloads import CARDINALITY_FIELDS, cardinality_graph, load

SCHEMA = load("cardinality_table")
VALIDATOR = IndexedValidator(SCHEMA)

#: (pattern label, fan_out, fan_in)
PATTERNS = [
    ("matching", 1, 1),
    ("fan_out_2", 2, 1),
    ("fan_in_2", 1, 2),
    ("bipartite_3x3", 3, 3),
]

#: row -> patterns the §3.3 semantics accepts
EXPECTED = {
    "1:1": {"matching"},
    "1:N": {"matching", "fan_in_2"},
    "N:1": {"matching", "fan_out_2"},
    "N:M": {"matching", "fan_out_2", "fan_in_2", "bipartite_3x3"},
}


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("row", sorted(CARDINALITY_FIELDS))
@pytest.mark.parametrize("pattern,fan_out,fan_in", PATTERNS)
def test_cardinality_cell(benchmark, row, pattern, fan_out, fan_in):
    field_name = CARDINALITY_FIELDS[row]
    graph = cardinality_graph(field_name, fan_out, fan_in)
    report = benchmark(VALIDATOR.validate, graph)
    expected_ok = pattern in EXPECTED[row]
    assert report.conforms == expected_ok, (
        f"row {row}, pattern {pattern}: expected "
        f"{'accept' if expected_ok else 'reject'}, got {report.summary()}"
    )


@pytest.mark.experiment("E4")
def test_full_matrix(benchmark):
    """The whole 4x4 matrix in one benchmark, asserting every cell."""

    def matrix():
        results = {}
        for row, field_name in CARDINALITY_FIELDS.items():
            for pattern, fan_out, fan_in in PATTERNS:
                graph = cardinality_graph(field_name, fan_out, fan_in)
                results[(row, pattern)] = VALIDATOR.validate(graph).conforms
        return results

    results = benchmark(matrix)
    for (row, pattern), accepted in results.items():
        assert accepted == (pattern in EXPECTED[row]), (row, pattern)
