"""E2 -- Theorem 1, combined complexity: schema and graph grow together.

Paper claim: the straightforward algorithm is O(n³) in combined complexity
(schema + graph as input).  The series varies the number of object types k
at fixed graph size, and graph size at fixed k, for both engines; the shape
to check is that validation cost grows with *both* inputs, super-linearly
for the naive engine and gently for the indexed one.
"""

import pytest

from repro.validation import IndexedValidator, NaiveValidator
from repro.workloads import conformant_graph, random_schema

SCHEMA_SIZES = [4, 8, 16, 32]
NODES_PER_TYPE = 12


def _workload(num_types: int):
    schema = random_schema(
        num_object_types=num_types,
        num_interface_types=max(1, num_types // 4),
        num_union_types=1,
        directive_probability=0.25,
        seed=num_types,
    )
    graph = conformant_graph(schema, nodes_per_type=NODES_PER_TYPE, seed=7)
    return schema, graph


@pytest.mark.experiment("E2")
@pytest.mark.parametrize("num_types", SCHEMA_SIZES)
def test_indexed_schema_scaling(benchmark, num_types):
    schema, graph = _workload(num_types)
    validator = IndexedValidator(schema)
    benchmark.extra_info["types"] = num_types
    benchmark.extra_info["n"] = len(graph)
    benchmark(validator.validate, graph)


@pytest.mark.experiment("E2")
@pytest.mark.parametrize("num_types", SCHEMA_SIZES[:3])
def test_naive_schema_scaling(benchmark, num_types):
    schema, graph = _workload(num_types)
    validator = NaiveValidator(schema)
    benchmark.extra_info["types"] = num_types
    benchmark.extra_info["n"] = len(graph)
    benchmark(validator.validate, graph)


@pytest.mark.experiment("E2")
@pytest.mark.parametrize("nodes_per_type", [5, 10, 20, 40])
def test_indexed_graph_scaling_at_fixed_schema(benchmark, nodes_per_type):
    schema = random_schema(
        num_object_types=8, num_interface_types=2, num_union_types=1, seed=8
    )
    graph = conformant_graph(schema, nodes_per_type=nodes_per_type, seed=7)
    validator = IndexedValidator(schema)
    benchmark.extra_info["n"] = len(graph)
    benchmark(validator.validate, graph)
