"""E1 -- Theorem 1, data complexity: fixed schema, growing graph.

Paper claim: with the schema fixed, the straightforward first-order
implementation validates in O(n²) time; Theorem 1 places the problem in AC0
(so a far better practical algorithm must exist -- our indexed engine runs
in near-linear time).

The benchmark table gives one row per (engine, n); reading the time ratios
between successive rows exposes the growth orders: ~4x per doubling for the
naive engine, ~2x for the indexed engine.  The shape to check: the naive
engine's quadratic growth and the widening gap to the indexed engine.
"""

import os

import pytest

from repro.validation import IndexedValidator, NaiveValidator
from repro.workloads import load, user_session_graph

SCHEMA = load("user_session_edge_props")

#: |V| ≈ num_users * (1 + sessions); n = |V| + |E|
if os.environ.get("PGSCHEMA_BENCH_QUICK") == "1":
    # CI smoke mode: tiny sizes, still one row per engine so the growth
    # machinery and agreement anchor are exercised end to end.
    NAIVE_SIZES = [50, 100]
    INDEXED_SIZES = [50, 100]
else:
    NAIVE_SIZES = [50, 100, 200, 400]
    INDEXED_SIZES = [50, 100, 200, 400, 800, 1600, 3200]


def _graph(num_users: int):
    return user_session_graph(num_users, sessions_per_user=2, seed=42)


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("num_users", NAIVE_SIZES)
def test_naive_engine_scaling(benchmark, num_users):
    graph = _graph(num_users)
    validator = NaiveValidator(SCHEMA)
    benchmark.extra_info["n"] = len(graph)
    report = benchmark(validator.validate, graph)
    assert report.conforms


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("num_users", INDEXED_SIZES)
def test_indexed_engine_scaling(benchmark, num_users):
    graph = _graph(num_users)
    validator = IndexedValidator(SCHEMA)
    benchmark.extra_info["n"] = len(graph)
    report = benchmark(validator.validate, graph)
    assert report.conforms


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("num_users", [200])
def test_engines_agree_on_the_workload(benchmark, num_users):
    """Sanity anchor for the whole experiment: identical verdicts."""
    graph = _graph(num_users)
    naive = NaiveValidator(SCHEMA)
    indexed = IndexedValidator(SCHEMA)

    def both():
        return naive.validate(graph).keys() == indexed.validate(graph).keys()

    assert benchmark(both)
