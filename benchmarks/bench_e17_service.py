"""E17 -- schema-registry service mode: batched warm serving vs cold CLI.

The service's reason to exist, measured.  A one-shot ``pgschema validate``
pays the full cold path on every request: interpreter start, SDL parse,
plan compile, graph load, validate.  The daemon pays it once at
registration and then serves every request from the pinned plan, with
concurrent requests coalesced into shared sharded runs.

Three legs:

1. **Cold baseline** -- one subprocess invocation per request, the
   pre-service deployment model.
2. **Warm closed loop** -- N client threads, each a closed loop over one
   keep-alive connection, against an in-process :class:`ServiceThread`.
3. **The floor** -- warm batched throughput must be >= 3x the cold
   per-request throughput (the ISSUE 9 acceptance criterion; in practice
   the gap is one to two orders of magnitude).  p50/p99 request latencies
   come from the service's own ``service.latency_ms`` obs histogram via
   ``/v1/stats`` and ride along in ``extra_info`` so ``BENCH_e17.json``
   carries the tail, not just the mean.
"""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.pg import dumps_graph
from repro.service import ServiceClient, ServiceThread
from repro.workloads import CORPUS, user_session_graph

SDL = CORPUS["user_session_edge_props"].sdl

if os.environ.get("PGSCHEMA_BENCH_QUICK") == "1":
    COLD_REQUESTS = 3
    CLIENTS = 4
    REQUESTS_PER_CLIENT = 8
else:
    COLD_REQUESTS = 10
    CLIENTS = 8
    REQUESTS_PER_CLIENT = 25

#: Per-request payload: small graphs are the service's target workload --
#: exactly where per-request process start-up dwarfs the validation itself.
GRAPH = user_session_graph(20, 2, seed=0)


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    root = tmp_path_factory.mktemp("e17")
    schema_path = root / "schema.graphql"
    schema_path.write_text(SDL)
    graph_path = root / "graph.json"
    graph_path.write_text(dumps_graph(GRAPH))
    return str(schema_path), str(graph_path)


def cold_validate(schema_path: str, graph_path: str) -> None:
    """One request, pre-service style: a fresh interpreter every time."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "validate", schema_path, graph_path],
        env=env,
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stderr


def closed_loop(host: str, port: int, requests: int, failures: list) -> None:
    """One client: a closed loop of validate calls on one connection."""
    try:
        with ServiceClient(host, port) as client:
            for _ in range(requests):
                status, report = client.validate("bench", "users", GRAPH)
                assert status == 200, report
                assert report["verdict"] == "conforms"
    except Exception as error:  # noqa: BLE001 - surfaced by the main thread
        failures.append(error)


def run_closed_loop(host: str, port: int) -> float:
    """All clients through their loops; returns elapsed seconds."""
    failures: list = []
    threads = [
        threading.Thread(
            target=closed_loop, args=(host, port, REQUESTS_PER_CLIENT, failures)
        )
        for _ in range(CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not failures, failures
    return elapsed


@pytest.mark.experiment("E17")
def test_cold_subprocess_baseline(benchmark, artifacts):
    """The per-request cost of the no-service deployment model."""
    schema_path, graph_path = artifacts
    benchmark.extra_info["model"] = "cold-subprocess"
    benchmark(cold_validate, schema_path, graph_path)


@pytest.mark.experiment("E17")
def test_warm_service_closed_loop(benchmark):
    """Closed-loop multi-client throughput against the warm daemon."""
    thread = ServiceThread(port=0)
    host, port = thread.start()
    try:
        with ServiceClient(host, port) as client:
            status, _ = client.register("bench", "users", SDL)
            assert status == 200
        run_closed_loop(host, port)  # warm the connection/batch path

        def loop() -> None:
            run_closed_loop(host, port)

        benchmark(loop)
        benchmark.extra_info["model"] = "warm-service"
        benchmark.extra_info["clients"] = CLIENTS
        benchmark.extra_info["requests_per_round"] = CLIENTS * REQUESTS_PER_CLIENT
        with ServiceClient(host, port) as client:
            _, stats = client.stats()
        latency = stats["histograms"].get("service.latency_ms", {})
        benchmark.extra_info["latency_ms_p50"] = latency.get("p50")
        benchmark.extra_info["latency_ms_p99"] = latency.get("p99")
        benchmark.extra_info["coalesce_ratio"] = stats["service"]["batching"][
            "coalesce_ratio"
        ]
    finally:
        thread.stop()


@pytest.mark.experiment("E17")
def test_batched_warm_serving_floor(benchmark, artifacts):
    """The acceptance criterion: warm batched serving sustains >= 3x the
    throughput of per-request cold subprocess invocation."""
    schema_path, graph_path = artifacts

    # cold: requests/second with one subprocess per request
    cold_start = time.perf_counter()
    for _ in range(COLD_REQUESTS):
        cold_validate(schema_path, graph_path)
    cold_elapsed = time.perf_counter() - cold_start
    cold_rps = COLD_REQUESTS / cold_elapsed

    # warm: the closed-loop fleet against a live daemon
    thread = ServiceThread(port=0)
    host, port = thread.start()
    try:
        with ServiceClient(host, port) as client:
            status, _ = client.register("bench", "users", SDL)
            assert status == 200
        run_closed_loop(host, port)  # warm-up round
        elapsed = benchmark(lambda: run_closed_loop(host, port))
        warm_rps = (CLIENTS * REQUESTS_PER_CLIENT) / elapsed
        with ServiceClient(host, port) as client:
            _, stats = client.stats()
    finally:
        thread.stop()

    latency = stats["histograms"].get("service.latency_ms", {})
    speedup = warm_rps / cold_rps
    benchmark.extra_info.update(
        {
            "cold_rps": cold_rps,
            "warm_rps": warm_rps,
            "speedup": speedup,
            "latency_ms_p50": latency.get("p50"),
            "latency_ms_p99": latency.get("p99"),
            "coalesce_ratio": stats["service"]["batching"]["coalesce_ratio"],
        }
    )
    print(
        f"\ncold {cold_rps:.1f} req/s, warm batched {warm_rps:.1f} req/s "
        f"({speedup:.1f}x), p50 {latency.get('p50', 0.0):.2f} ms, "
        f"p99 {latency.get('p99', 0.0):.2f} ms"
    )
    assert speedup >= 3.0, (
        f"warm batched serving only {speedup:.2f}x over cold subprocess "
        f"(floor is 3x): cold {cold_rps:.1f} req/s vs warm {warm_rps:.1f} req/s"
    )


if __name__ == "__main__":  # pragma: no cover - quick manual run
    raise SystemExit(
        json.dumps({"hint": "run under pytest: pytest benchmarks/bench_e17_service.py"})
    )
