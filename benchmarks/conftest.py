"""Shared machinery for the experiment benchmarks (E1-E8).

Each ``bench_eN_*`` module regenerates one paper artifact (see DESIGN.md §4
and EXPERIMENTS.md).  The pytest-benchmark table is the experiment's series:
one row per parameter point.  Correctness assertions (engine agreement,
accept/reject matrices, SAT equivalences) run inside the benchmarks, so a
bench run doubles as an end-to-end check.

Run everything with:

    pytest benchmarks/ --benchmark-only

and a single experiment with e.g.:

    pytest benchmarks/bench_e1_validation_data_complexity.py --benchmark-only
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): marks a benchmark as part of experiment id"
    )


@pytest.fixture(scope="session")
def experiment_log():
    """Collects printed experiment rows; emitted at session end."""
    rows: list[str] = []
    yield rows
    if rows:
        print("\n" + "\n".join(rows))
