"""Collect the EXPERIMENTS.md measurement tables in one pass.

Not a pytest module: run directly with ``python benchmarks/collect_results.py``.
Prints the per-experiment series as markdown-ready rows (the same series the
pytest-benchmark harness times, but with fitted growth exponents and
pass/fail verdicts in one place).

Sections may be selected by name (``python benchmarks/collect_results.py
e11 e12 e13``); the engine-performance sections (E11 through E17)
additionally write machine-readable ``BENCH_<name>.json`` files into the
working directory -- CI's bench-smoke job runs them in quick mode
(``PGSCHEMA_BENCH_QUICK=1``) and uploads the JSON as a build artifact so
timing regressions leave a paper trail.  Every artifact is stamped with
the :func:`repro.perf.environment_fingerprint` that produced it, the same
fingerprint keying comparability in the ``pgschema perf`` profile store.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

from repro import obs
from repro.dl import Name, Tableau, schema_to_tbox
from repro.fo import FOValidator
from repro.baselines import AnglesValidator, sdl_to_angles
from repro.sat import random_ksat, solve
from repro.satisfiability import (
    SatCache,
    SatisfiabilityChecker,
    reduce_cnf_to_schema,
)
from repro.schema import parse_schema
from repro.validation import (
    IndexedValidator,
    NaiveValidator,
    ParallelValidator,
    compile_plan,
    plan_cache_clear,
)
from repro.workloads import (
    CARDINALITY_FIELDS,
    CORPUS,
    cardinality_graph,
    hub_chain_schema,
    load,
    user_session_graph,
)

QUICK = os.environ.get("PGSCHEMA_BENCH_QUICK") == "1"


def write_bench_json(name: str, payload: dict) -> None:
    """Persist one experiment's series as ``BENCH_<name>.json``.

    When the collector runs each section under a metrics observation (see
    :func:`main`), the section's registry snapshot rides along under the
    ``metrics`` key, so every benchmark artifact carries the engine
    counters (shard sizes, cache hits, tableau statistics) that produced
    its timings.  The ``env`` fingerprint identifies where the numbers were
    measured; artifacts with different fingerprints are not comparable.
    """
    from repro.perf import environment_fingerprint

    path = f"BENCH_{name}.json"
    payload = dict(payload, quick=QUICK, env=environment_fingerprint())
    observation = obs.active()
    if observation is not None and observation.registry is not None:
        from repro.obs.export import attach_cache_stats, metrics_payload

        attach_cache_stats(observation.registry)
        payload["metrics"] = metrics_payload(observation.registry)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[wrote {path}]")


def timed(function, *args, repeat: int = 3) -> float:
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        function(*args)
        best = min(best, time.perf_counter() - start)
    return best


def fit_exponent(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log y against log x."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mean_x, mean_y = sum(lx) / len(lx), sum(ly) / len(ly)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    denominator = sum((x - mean_x) ** 2 for x in lx)
    return numerator / denominator


def e1_data_complexity() -> None:
    print("## E1 — validation data complexity (fixed schema, growing graph)")
    schema = load("user_session_edge_props")
    print(f"{'n':>6} | {'naive (ms)':>11} | {'indexed (ms)':>12}")
    sizes, naive_times, indexed_times = [], [], []
    naive, indexed = NaiveValidator(schema), IndexedValidator(schema)
    for num_users in (50, 100, 200, 400):
        graph = user_session_graph(num_users, 2, seed=42)
        n = len(graph)
        t_naive = timed(naive.validate, graph, repeat=1)
        t_indexed = timed(indexed.validate, graph)
        sizes.append(n)
        naive_times.append(t_naive)
        indexed_times.append(t_indexed)
        print(f"{n:>6} | {t_naive * 1000:>11.1f} | {t_indexed * 1000:>12.2f}")
    for num_users in (800, 1600, 3200):
        graph = user_session_graph(num_users, 2, seed=42)
        t_indexed = timed(indexed.validate, graph, repeat=1)
        print(f"{len(graph):>6} | {'—':>11} | {t_indexed * 1000:>12.2f}")
    print(
        f"fitted growth exponent: naive n^{fit_exponent(sizes, naive_times):.2f}, "
        f"indexed n^{fit_exponent(sizes, indexed_times):.2f} "
        "(paper predicts naive O(n^2), AC0 membership allows near-linear)"
    )
    print()


def e3_fo() -> None:
    print("## E3 — the Theorem-1 FO encoding, executed")
    schema = load("user_session_edge_props")
    fo, indexed = FOValidator(schema), IndexedValidator(schema)
    print(f"{'n':>6} | {'FO model checking (ms)':>23} | {'indexed (ms)':>12}")
    sizes, fo_times = [], []
    for num_users in (20, 40, 80, 160):
        graph = user_session_graph(num_users, 1, seed=3)
        assert fo.validate(graph) == indexed.validate(graph).conforms
        t_fo = timed(fo.validate, graph, repeat=1)
        t_indexed = timed(indexed.validate, graph)
        sizes.append(len(graph))
        fo_times.append(t_fo)
        print(f"{len(graph):>6} | {t_fo * 1000:>23.1f} | {t_indexed * 1000:>12.2f}")
    print(f"fitted FO growth exponent: n^{fit_exponent(sizes, fo_times):.2f}")
    print()


def e4_cardinality() -> None:
    print("## E4 — the §3.3 cardinality table (accept=✓ / reject=✗)")
    schema = load("cardinality_table")
    validator = IndexedValidator(schema)
    patterns = [("1-1", 1, 1), ("fanout2", 2, 1), ("fanin2", 1, 2)]
    print(f"{'row':>5} | " + " | ".join(f"{p[0]:>8}" for p in patterns))
    for row, field_name in CARDINALITY_FIELDS.items():
        cells = []
        for _label, fan_out, fan_in in patterns:
            graph = cardinality_graph(field_name, fan_out, fan_in)
            cells.append("✓" if validator.validate(graph).conforms else "✗")
        print(f"{row:>5} | " + " | ".join(f"{c:>8}" for c in cells))
    print()


def e5_reduction() -> None:
    print("## E5 — Theorem 2: SAT reduction vs direct DPLL")
    print(
        f"{'instance':>12} | {'sat':>5} | {'DPLL (ms)':>9} | "
        f"{'reduce (ms)':>11} | {'tableau (s)':>11} | agree"
    )
    for num_vars, num_clauses, seed in [
        (3, 9, 0),
        (3, 13, 1),
        (4, 13, 0),
        (4, 17, 1),
        (5, 17, 2),
        (5, 21, 8),
    ]:
        cnf = random_ksat(num_vars, num_clauses, k=3, seed=seed)
        t0 = time.perf_counter()
        expected = solve(cnf).satisfiable
        t_dpll = time.perf_counter() - t0
        t0 = time.perf_counter()
        reduction = reduce_cnf_to_schema(cnf)
        t_reduce = time.perf_counter() - t0
        checker = SatisfiabilityChecker(reduction.schema, bounded_max_nodes=0)
        t0 = time.perf_counter()
        verdict = checker.is_satisfiable(reduction.anchor)
        t_tableau = time.perf_counter() - t0
        print(
            f"{f'v{num_vars} c{num_clauses}':>12} | {str(expected):>5} | "
            f"{t_dpll * 1000:>9.2f} | {t_reduce * 1000:>11.1f} | "
            f"{t_tableau:>11.2f} | {verdict == expected}"
        )
    print()


def e6_satisfiability() -> None:
    print("## E6 — Theorem 3 / Example 6.1 verdicts")
    rows = [
        ("example_6_1_a", "OT1", False, False),
        ("example_6_1_a", "OT2", True, True),
        ("diagram_b", "OT2", True, None),  # the finite-model gap
        ("diagram_c", "OT2", False, False),
        ("library", "Book", True, True),
    ]
    print(
        f"{'schema':>15} | {'type':>5} | {'tableau':>8} | {'finite≤4':>9} | "
        "expected (tableau, finite)"
    )
    for name, type_name, want_tableau, want_finite in rows:
        checker = SatisfiabilityChecker(CORPUS[name].load())
        verdict = checker.check_type(type_name)
        print(
            f"{name:>15} | {type_name:>5} | {str(verdict.tableau_satisfiable):>8} | "
            f"{str(verdict.finitely_satisfiable):>9} | ({want_tableau}, {want_finite})"
        )
        assert verdict.tableau_satisfiable == want_tableau
        assert verdict.finitely_satisfiable == want_finite
    print()


def e8_baseline() -> None:
    print("## E8 — Angles baseline: speed and coverage")
    schema = load("user_session_edge_props")
    angles = sdl_to_angles(schema)
    sdl_validator = IndexedValidator(schema)
    angles_validator = AnglesValidator(angles.schema)
    print(f"{'n':>6} | {'SDL (ms)':>9} | {'Angles (ms)':>11}")
    for num_users in (50, 200, 800):
        graph = user_session_graph(num_users, 2, seed=1)
        t_sdl = timed(sdl_validator.validate, graph)
        t_angles = timed(angles_validator.validate, graph)
        print(f"{len(graph):>6} | {t_sdl * 1000:>9.2f} | {t_angles * 1000:>11.2f}")
    lost = sdl_to_angles(load("library")).lost_constraints
    print(f"library schema: {len(lost)} constraints lost in the Angles translation")
    print()


def e9_ablation() -> None:
    print("## E9 — tableau optimisation ablation (v3 c6 reduction instance)")
    cnf = random_ksat(3, 6, k=3, seed=2)
    expected = solve(cnf).satisfiable
    reduction = reduce_cnf_to_schema(cnf)
    tbox = schema_to_tbox(reduction.schema)
    configs = {
        "full": {},
        "no_bcp": {"bcp": False},
        "no_guarded_axioms": {"guarded_axioms": False},
        "no_lazy_definitions": {"lazy_definitions": False},
        "no_disjointness_propagation": {"disjointness_propagation": False},
    }
    print(f"{'config':>28} | {'time (s)':>9} | {'branches':>8}")
    for name, flags in configs.items():
        tableau = Tableau(tbox, **flags)
        t0 = time.perf_counter()
        verdict = tableau.is_satisfiable(Name(reduction.anchor))
        elapsed = time.perf_counter() - t0
        assert verdict == expected, name
        print(f"{name:>28} | {elapsed:>9.3f} | {tableau.stats.branches:>8}")
    print()


def e11_lint_precheck() -> None:
    print("## E11 — polynomial unsat pre-check vs tableau (dead chains)")
    depths = (4, 8) if QUICK else (4, 16, 64)
    rows = []
    print(f"{'depth':>6} | {'lint (ms)':>9} | {'tableau (ms)':>12}")
    for depth in depths:
        lines = ["interface Dead { x: Int }", "type T0 { next: Dead @required }"]
        for i in range(1, depth):
            lines.append(f"type T{i} {{ next: T{i - 1} @required }}")
        sdl = "\n".join(lines)

        def decide(engine: str) -> None:
            schema = parse_schema(sdl)
            checker = SatisfiabilityChecker(
                schema, lint_precheck=(engine == "lint"), cache=False
            )
            verdict = checker.check_type(f"T{depth - 1}", find_witness=False)
            assert not verdict.tableau_satisfiable and verdict.decided_by == engine

        t_lint = timed(decide, "lint")
        t_tableau = timed(decide, "tableau")
        rows.append({"depth": depth, "lint_s": t_lint, "tableau_s": t_tableau})
        print(f"{depth:>6} | {t_lint * 1000:>9.2f} | {t_tableau * 1000:>12.2f}")
    write_bench_json("e11", {"experiment": "E11", "rows": rows})
    print()


def e12_parallel_validation() -> None:
    print("## E12 — parallel sharded validation")
    num_users = 100 if QUICK else 1600
    schema = load("user_session_edge_props")
    graph = user_session_graph(num_users, 2, seed=42)
    plan = compile_plan(schema)
    indexed = IndexedValidator(schema, plan=plan)
    parallel = ParallelValidator(schema, jobs=4, plan=plan)
    assert indexed.validate(graph).keys() == parallel.validate(graph).keys()
    t_indexed = timed(indexed.validate, graph)
    t_parallel = timed(parallel.validate, graph)
    small = user_session_graph(2, 2, seed=42)

    def cold_plan() -> None:
        plan_cache_clear()
        IndexedValidator(schema, plan=compile_plan(schema)).validate(small)

    def warm_plan() -> None:
        IndexedValidator(schema, plan=compile_plan(schema)).validate(small)

    cold_plan()
    t_cold, t_warm = timed(cold_plan), timed(warm_plan)
    print(
        f"n={len(graph)}: indexed {t_indexed * 1000:.2f} ms, "
        f"parallel(jobs=4) {t_parallel * 1000:.2f} ms "
        f"({t_indexed / t_parallel:.2f}x); plan cache cold "
        f"{t_cold * 1000:.3f} ms, warm {t_warm * 1000:.3f} ms"
    )
    write_bench_json(
        "e12",
        {
            "experiment": "E12",
            "n": len(graph),
            "indexed_s": t_indexed,
            "parallel_jobs4_s": t_parallel,
            "speedup": t_indexed / t_parallel,
            "plan_cache_cold_s": t_cold,
            "plan_cache_warm_s": t_warm,
        },
    )
    print()


def e13_portfolio_sat() -> None:
    print("## E13 — portfolio whole-schema satisfiability")
    scaled = (
        [hub_chain_schema(depth=3, leaves=2)]
        if QUICK
        else [hub_chain_schema(depth=12, leaves=8)]
    )
    schemas = scaled + [load(name) for name in CORPUS]

    def sweep(engine: str) -> None:
        for schema in schemas:
            SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
                jobs=4, engine=engine
            )

    sweep("serial")  # warm code paths
    t_serial = timed(lambda: sweep("serial"))
    t_portfolio = timed(lambda: sweep("portfolio"))
    caches = [SatCache(schema) for schema in schemas]
    for schema, cache in zip(schemas, caches):
        SatisfiabilityChecker(schema, cache=cache).check_schema(jobs=4)

    def warm_sweep() -> None:
        for schema, cache in zip(schemas, caches):
            SatisfiabilityChecker(schema, cache=cache).check_schema(jobs=4)

    t_warm = timed(warm_sweep)
    print(
        f"{len(schemas)} schemas: serial {t_serial * 1000:.2f} ms, "
        f"portfolio(jobs=4) {t_portfolio * 1000:.2f} ms "
        f"({t_serial / t_portfolio:.2f}x); warm cache {t_warm * 1000:.2f} ms "
        f"({t_portfolio / t_warm:.1f}x over cold)"
    )
    write_bench_json(
        "e13",
        {
            "experiment": "E13",
            "schemas": len(schemas),
            "serial_s": t_serial,
            "portfolio_jobs4_s": t_portfolio,
            "speedup": t_serial / t_portfolio,
            "warm_cache_s": t_warm,
            "warm_speedup_over_cold": t_portfolio / t_warm,
        },
    )
    print()


def e14_analysis() -> None:
    print("## E14 — schema dataflow analyzer: static pre-verdicts")
    from repro.analysis import analysis_cache_clear, analyze_schema, sat_preverdicts
    from repro.workloads import deep_lattice_schema, near_unsat_schema

    decided = total = 0
    for name in CORPUS:
        schema = load(name)
        decided += sat_preverdicts(schema).decided
        total += len(schema.object_types) + sum(
            1
            for *_loc, field_def in schema.field_declarations()
            if field_def.is_relationship
        )
    print(f"corpus coverage: {decided}/{total} elements decided statically")

    scaled = (
        [hub_chain_schema(depth=3, leaves=2), near_unsat_schema(2)]
        if QUICK
        else [
            hub_chain_schema(depth=12, leaves=8),
            near_unsat_schema(6),
            near_unsat_schema(6, collide=True),
            deep_lattice_schema(4, 2),
        ]
    )
    schemas = scaled + [load(name) for name in CORPUS]

    def sweep(analysis: bool) -> None:
        for schema in schemas:
            SatisfiabilityChecker(
                schema, cache=False, analysis_precheck=analysis
            ).check_schema(engine="serial")

    sweep(True)  # warm code paths and the per-schema analysis memo
    sweep(False)
    t_on = timed(lambda: sweep(True))
    t_off = timed(lambda: sweep(False))

    def analyses() -> None:
        analysis_cache_clear()
        for schema in schemas:
            analyze_schema(schema)

    t_passes = timed(analyses)
    print(
        f"{len(schemas)} schemas: feed off {t_off * 1000:.2f} ms, feed on "
        f"{t_on * 1000:.2f} ms ({t_off / t_on:.2f}x); all four passes "
        f"{t_passes * 1000:.2f} ms"
    )
    write_bench_json(
        "e14",
        {
            "experiment": "E14",
            "schemas": len(schemas),
            "corpus_decided": decided,
            "corpus_elements": total,
            "coverage": decided / total,
            "feed_off_s": t_off,
            "feed_on_s": t_on,
            "speedup": t_off / t_on,
            "passes_s": t_passes,
        },
    )
    print()


def e15_columnar_stream() -> None:
    print("## E15 — columnar core + out-of-core streaming validation")
    import tempfile

    from bench_e15_columnar import write_user_session_jsonl
    from repro.pg import freeze
    from repro.validation import StreamValidator

    schema = load("user_session_edge_props")
    plan = compile_plan(schema)

    # in-memory: dict kernel vs columnar kernel (jobs=1 isolates the backend)
    num_users = 100 if QUICK else 3200
    graph = user_session_graph(num_users, 2, seed=42)
    validator = ParallelValidator(schema, jobs=1, plan=plan)
    t0 = time.perf_counter()
    frozen = freeze(graph)
    t_freeze = time.perf_counter() - t0
    validator.validate(graph)  # warm both kernels
    validator.validate(frozen)
    t_dict = timed(validator.validate, graph)
    t_columnar = timed(validator.validate, frozen)
    print(
        f"n={len(graph)}: dict kernel {t_dict * 1000:.2f} ms, columnar kernel "
        f"{t_columnar * 1000:.2f} ms ({t_dict / t_columnar:.2f}x), "
        f"freeze {t_freeze * 1000:.2f} ms"
    )

    # out-of-core: stream a JSONL file in bounded memory
    stream_users = 200 if QUICK else 20_000
    chunk = 512 if QUICK else 8192
    with tempfile.TemporaryDirectory(prefix="pgschema-e15-") as tmp:
        path = os.path.join(tmp, "graph.jsonl")
        total = write_user_session_jsonl(path, stream_users)
        stream = StreamValidator(schema, chunk_elements=chunk, plan=plan)
        t0 = time.perf_counter()
        report = stream.validate(path)
        t_stream = time.perf_counter() - t0
        assert report.conforms
    print(
        f"stream n={total}: {t_stream:.2f} s "
        f"({total / t_stream / 1000:.0f}k elements/s), chunk={chunk}, "
        f"peak resident {stream.peak_resident} "
        f"({stream.peak_resident / total:.1%} of n)"
    )
    write_bench_json(
        "e15",
        {
            "experiment": "E15",
            "n": len(graph),
            "dict_kernel_s": t_dict,
            "columnar_kernel_s": t_columnar,
            "kernel_speedup": t_dict / t_columnar,
            "freeze_s": t_freeze,
            "stream_n": total,
            "stream_chunk_elements": chunk,
            "stream_s": t_stream,
            "stream_peak_resident": stream.peak_resident,
        },
    )
    print()


def e16_cdc() -> None:
    print("## E16 — crash-resumable CDC validation")
    import tempfile

    from bench_e16_cdc import _base_graph, _journal
    from repro.schema import parse_schema
    from repro.validation import CDCConsumer
    from repro.workloads import MUTATION_SCHEMA_SDL

    schema = parse_schema(MUTATION_SCHEMA_SDL)
    commits = 10 if QUICK else 40
    base_sizes = [50, 200] if QUICK else [100, 400, 1600, 6400]

    class _Tmp:
        def __init__(self, root):
            self._root = root

        def __truediv__(self, name):
            return os.path.join(self._root, name)

    with tempfile.TemporaryDirectory(prefix="pgschema-e16-") as tmp:
        path = _journal(_Tmp(tmp), commits=commits)
        events = sum(1 for _ in open(path)) - 1

        # per-commit consume cost must stay flat as the base graph grows
        consume_costs = []
        for num_users in base_sizes:
            base = _base_graph(num_users)
            empty = _journal(_Tmp(tmp), name="empty.jsonl", commits=1, ops_per_commit=1)
            # best-of-7: the subtraction needs tighter minima than the
            # default, else base-validation jitter at large n drowns the
            # per-commit consume cost
            t_setup = timed(
                lambda: CDCConsumer(schema, empty, base_graph=base).run(),
                repeat=7,
            )
            t_total = timed(
                lambda: CDCConsumer(schema, path, base_graph=base).run(),
                repeat=7,
            )
            per_commit = (t_total - t_setup) / commits
            consume_costs.append(per_commit)
            print(
                f"base n={num_users}: total {t_total * 1000:.2f} ms, "
                f"setup {t_setup * 1000:.2f} ms, consume "
                f"{per_commit * 1000:.3f} ms/commit"
            )

        # checkpoint overhead and warm-restart latency
        checkpoint_dir = os.path.join(tmp, "ckpt")
        t_plain = timed(lambda: CDCConsumer(schema, path).run())
        t_durable = timed(
            lambda: CDCConsumer(
                schema, path, checkpoint_dir=checkpoint_dir, checkpoint_every=1
            ).run()
        )
        t_resume = timed(
            lambda: CDCConsumer(
                schema, path, checkpoint_dir=checkpoint_dir, checkpoint_every=1
            ).run(resume=True)
        )
        print(
            f"{commits} commit(s) / {events} event(s): consume "
            f"{t_plain * 1000:.2f} ms ({events / t_plain:.0f} events/s), "
            f"checkpoint-every-commit {t_durable * 1000:.2f} ms "
            f"({t_durable / t_plain:.2f}x), warm resume {t_resume * 1000:.2f} ms"
        )
    write_bench_json(
        "e16",
        {
            "experiment": "E16",
            "commits": commits,
            "events": events,
            "base_sizes": base_sizes,
            "consume_s_per_commit": consume_costs,
            "consume_s": t_plain,
            "events_per_second": events / t_plain,
            "checkpointed_s": t_durable,
            "checkpoint_overhead": t_durable / t_plain,
            "warm_resume_s": t_resume,
        },
    )
    print()


def e17_service() -> None:
    print("## E17 — schema-registry service: batched warm serving vs cold CLI")
    from bench_e17_service import (
        CLIENTS,
        COLD_REQUESTS,
        REQUESTS_PER_CLIENT,
        SDL,
        cold_validate,
        run_closed_loop,
    )
    import tempfile

    from repro.pg import dumps_graph
    from repro.service import ServiceClient, ServiceThread
    from repro.workloads import user_session_graph

    with tempfile.TemporaryDirectory(prefix="pgschema-e17-") as tmp:
        schema_path = os.path.join(tmp, "schema.graphql")
        with open(schema_path, "w") as handle:
            handle.write(SDL)
        graph_path = os.path.join(tmp, "graph.json")
        with open(graph_path, "w") as handle:
            handle.write(dumps_graph(user_session_graph(20, 2, seed=0)))

        t0 = time.perf_counter()
        for _ in range(COLD_REQUESTS):
            cold_validate(schema_path, graph_path)
        cold_rps = COLD_REQUESTS / (time.perf_counter() - t0)

        thread = ServiceThread(port=0)
        host, port = thread.start()
        try:
            with ServiceClient(host, port) as client:
                client.register("bench", "users", SDL)
            run_closed_loop(host, port)  # warm-up round
            elapsed = min(run_closed_loop(host, port) for _ in range(3))
            warm_rps = CLIENTS * REQUESTS_PER_CLIENT / elapsed
            with ServiceClient(host, port) as client:
                _, stats = client.stats()
        finally:
            thread.stop()

    latency = stats["histograms"].get("service.latency_ms", {})
    batching = stats["service"]["batching"]
    speedup = warm_rps / cold_rps
    print(
        f"cold subprocess {cold_rps:.1f} req/s, warm batched "
        f"{warm_rps:.1f} req/s ({speedup:.1f}x; floor 3x), "
        f"{CLIENTS} client(s) x {REQUESTS_PER_CLIENT} request(s)"
    )
    print(
        f"latency p50 {latency.get('p50', 0.0):.2f} ms, "
        f"p99 {latency.get('p99', 0.0):.2f} ms; coalesce ratio "
        f"{batching['coalesce_ratio']:.2f} "
        f"({batching['requests']:.0f} requests / {batching['batches']:.0f} batches)"
    )
    assert speedup >= 3.0, f"service speedup {speedup:.2f}x below the 3x floor"
    write_bench_json(
        "e17",
        {
            "experiment": "E17",
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "cold_requests": COLD_REQUESTS,
            "cold_rps": cold_rps,
            "warm_rps": warm_rps,
            "speedup": speedup,
            "latency_ms_p50": latency.get("p50"),
            "latency_ms_p99": latency.get("p99"),
            "coalesce_ratio": batching["coalesce_ratio"],
        },
    )
    print()


SECTIONS = {
    "e1": e1_data_complexity,
    "e3": e3_fo,
    "e4": e4_cardinality,
    "e5": e5_reduction,
    "e6": e6_satisfiability,
    "e8": e8_baseline,
    "e9": e9_ablation,
    "e11": e11_lint_precheck,
    "e12": e12_parallel_validation,
    "e13": e13_portfolio_sat,
    "e14": e14_analysis,
    "e15": e15_columnar_stream,
    "e16": e16_cdc,
    "e17": e17_service,
}


def main(names: list[str] | None = None) -> None:
    selected = names or list(SECTIONS)
    for name in selected:
        if name not in SECTIONS:
            raise SystemExit(
                f"unknown section {name!r}; choose from {', '.join(SECTIONS)}"
            )
        # one metrics observation per section: BENCH_*.json files written
        # inside it pick up that section's registry snapshot
        with obs.observed(metrics=True):
            SECTIONS[name]()


if __name__ == "__main__":
    main(sys.argv[1:])
