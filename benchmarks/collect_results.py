"""Collect the EXPERIMENTS.md measurement tables in one pass.

Not a pytest module: run directly with ``python benchmarks/collect_results.py``.
Prints the per-experiment series as markdown-ready rows (the same series the
pytest-benchmark harness times, but with fitted growth exponents and
pass/fail verdicts in one place).
"""

from __future__ import annotations

import math
import time

from repro.dl import Name, Tableau, schema_to_tbox
from repro.fo import FOValidator
from repro.baselines import AnglesValidator, sdl_to_angles
from repro.sat import random_ksat, solve
from repro.satisfiability import SatisfiabilityChecker, reduce_cnf_to_schema
from repro.validation import IndexedValidator, NaiveValidator
from repro.workloads import (
    CARDINALITY_FIELDS,
    CORPUS,
    cardinality_graph,
    load,
    user_session_graph,
)


def timed(function, *args, repeat: int = 3) -> float:
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        function(*args)
        best = min(best, time.perf_counter() - start)
    return best


def fit_exponent(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log y against log x."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mean_x, mean_y = sum(lx) / len(lx), sum(ly) / len(ly)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    denominator = sum((x - mean_x) ** 2 for x in lx)
    return numerator / denominator


def e1_data_complexity() -> None:
    print("## E1 — validation data complexity (fixed schema, growing graph)")
    schema = load("user_session_edge_props")
    print(f"{'n':>6} | {'naive (ms)':>11} | {'indexed (ms)':>12}")
    sizes, naive_times, indexed_times = [], [], []
    naive, indexed = NaiveValidator(schema), IndexedValidator(schema)
    for num_users in (50, 100, 200, 400):
        graph = user_session_graph(num_users, 2, seed=42)
        n = len(graph)
        t_naive = timed(naive.validate, graph, repeat=1)
        t_indexed = timed(indexed.validate, graph)
        sizes.append(n)
        naive_times.append(t_naive)
        indexed_times.append(t_indexed)
        print(f"{n:>6} | {t_naive * 1000:>11.1f} | {t_indexed * 1000:>12.2f}")
    for num_users in (800, 1600, 3200):
        graph = user_session_graph(num_users, 2, seed=42)
        t_indexed = timed(indexed.validate, graph, repeat=1)
        print(f"{len(graph):>6} | {'—':>11} | {t_indexed * 1000:>12.2f}")
    print(
        f"fitted growth exponent: naive n^{fit_exponent(sizes, naive_times):.2f}, "
        f"indexed n^{fit_exponent(sizes, indexed_times):.2f} "
        "(paper predicts naive O(n^2), AC0 membership allows near-linear)"
    )
    print()


def e3_fo() -> None:
    print("## E3 — the Theorem-1 FO encoding, executed")
    schema = load("user_session_edge_props")
    fo, indexed = FOValidator(schema), IndexedValidator(schema)
    print(f"{'n':>6} | {'FO model checking (ms)':>23} | {'indexed (ms)':>12}")
    sizes, fo_times = [], []
    for num_users in (20, 40, 80, 160):
        graph = user_session_graph(num_users, 1, seed=3)
        assert fo.validate(graph) == indexed.validate(graph).conforms
        t_fo = timed(fo.validate, graph, repeat=1)
        t_indexed = timed(indexed.validate, graph)
        sizes.append(len(graph))
        fo_times.append(t_fo)
        print(f"{len(graph):>6} | {t_fo * 1000:>23.1f} | {t_indexed * 1000:>12.2f}")
    print(f"fitted FO growth exponent: n^{fit_exponent(sizes, fo_times):.2f}")
    print()


def e4_cardinality() -> None:
    print("## E4 — the §3.3 cardinality table (accept=✓ / reject=✗)")
    schema = load("cardinality_table")
    validator = IndexedValidator(schema)
    patterns = [("1-1", 1, 1), ("fanout2", 2, 1), ("fanin2", 1, 2)]
    print(f"{'row':>5} | " + " | ".join(f"{p[0]:>8}" for p in patterns))
    for row, field_name in CARDINALITY_FIELDS.items():
        cells = []
        for _label, fan_out, fan_in in patterns:
            graph = cardinality_graph(field_name, fan_out, fan_in)
            cells.append("✓" if validator.validate(graph).conforms else "✗")
        print(f"{row:>5} | " + " | ".join(f"{c:>8}" for c in cells))
    print()


def e5_reduction() -> None:
    print("## E5 — Theorem 2: SAT reduction vs direct DPLL")
    print(
        f"{'instance':>12} | {'sat':>5} | {'DPLL (ms)':>9} | "
        f"{'reduce (ms)':>11} | {'tableau (s)':>11} | agree"
    )
    for num_vars, num_clauses, seed in [
        (3, 9, 0),
        (3, 13, 1),
        (4, 13, 0),
        (4, 17, 1),
        (5, 17, 2),
        (5, 21, 8),
    ]:
        cnf = random_ksat(num_vars, num_clauses, k=3, seed=seed)
        t0 = time.perf_counter()
        expected = solve(cnf).satisfiable
        t_dpll = time.perf_counter() - t0
        t0 = time.perf_counter()
        reduction = reduce_cnf_to_schema(cnf)
        t_reduce = time.perf_counter() - t0
        checker = SatisfiabilityChecker(reduction.schema, bounded_max_nodes=0)
        t0 = time.perf_counter()
        verdict = checker.is_satisfiable(reduction.anchor)
        t_tableau = time.perf_counter() - t0
        print(
            f"{f'v{num_vars} c{num_clauses}':>12} | {str(expected):>5} | "
            f"{t_dpll * 1000:>9.2f} | {t_reduce * 1000:>11.1f} | "
            f"{t_tableau:>11.2f} | {verdict == expected}"
        )
    print()


def e6_satisfiability() -> None:
    print("## E6 — Theorem 3 / Example 6.1 verdicts")
    rows = [
        ("example_6_1_a", "OT1", False, False),
        ("example_6_1_a", "OT2", True, True),
        ("diagram_b", "OT2", True, None),  # the finite-model gap
        ("diagram_c", "OT2", False, False),
        ("library", "Book", True, True),
    ]
    print(
        f"{'schema':>15} | {'type':>5} | {'tableau':>8} | {'finite≤4':>9} | "
        "expected (tableau, finite)"
    )
    for name, type_name, want_tableau, want_finite in rows:
        checker = SatisfiabilityChecker(CORPUS[name].load())
        verdict = checker.check_type(type_name)
        print(
            f"{name:>15} | {type_name:>5} | {str(verdict.tableau_satisfiable):>8} | "
            f"{str(verdict.finitely_satisfiable):>9} | ({want_tableau}, {want_finite})"
        )
        assert verdict.tableau_satisfiable == want_tableau
        assert verdict.finitely_satisfiable == want_finite
    print()


def e8_baseline() -> None:
    print("## E8 — Angles baseline: speed and coverage")
    schema = load("user_session_edge_props")
    angles = sdl_to_angles(schema)
    sdl_validator = IndexedValidator(schema)
    angles_validator = AnglesValidator(angles.schema)
    print(f"{'n':>6} | {'SDL (ms)':>9} | {'Angles (ms)':>11}")
    for num_users in (50, 200, 800):
        graph = user_session_graph(num_users, 2, seed=1)
        t_sdl = timed(sdl_validator.validate, graph)
        t_angles = timed(angles_validator.validate, graph)
        print(f"{len(graph):>6} | {t_sdl * 1000:>9.2f} | {t_angles * 1000:>11.2f}")
    lost = sdl_to_angles(load("library")).lost_constraints
    print(f"library schema: {len(lost)} constraints lost in the Angles translation")
    print()


def e9_ablation() -> None:
    print("## E9 — tableau optimisation ablation (v3 c6 reduction instance)")
    cnf = random_ksat(3, 6, k=3, seed=2)
    expected = solve(cnf).satisfiable
    reduction = reduce_cnf_to_schema(cnf)
    tbox = schema_to_tbox(reduction.schema)
    configs = {
        "full": {},
        "no_bcp": {"bcp": False},
        "no_guarded_axioms": {"guarded_axioms": False},
        "no_lazy_definitions": {"lazy_definitions": False},
        "no_disjointness_propagation": {"disjointness_propagation": False},
    }
    print(f"{'config':>28} | {'time (s)':>9} | {'branches':>8}")
    for name, flags in configs.items():
        tableau = Tableau(tbox, **flags)
        t0 = time.perf_counter()
        verdict = tableau.is_satisfiable(Name(reduction.anchor))
        elapsed = time.perf_counter() - t0
        assert verdict == expected, name
        print(f"{name:>28} | {elapsed:>9.3f} | {tableau.stats.branches:>8}")
    print()


def main() -> None:
    e1_data_complexity()
    e3_fo()
    e4_cardinality()
    e5_reduction()
    e6_satisfiability()
    e8_baseline()
    e9_ablation()


if __name__ == "__main__":
    main()
