"""E11 -- what does the polynomial lint pre-check buy over the tableau?

The lint engine's unsat-class rules (PG001/PG003) decide Example 6.1's
conflicting-cardinality class in polynomial time; the Theorem-3 route
builds the full ALCQI translation and saturates a tableau.  Both must
return the same verdict (asserted); the rows quantify the wall-time gap on
the paper's two unsatisfiable diagrams and on a synthetic chain family
where the dead-type fixpoint has real depth.

Checker construction happens inside the timed callable: the point of the
pre-check is that the TBox and tableau are never even built.
"""

import pytest

from repro.satisfiability import SatisfiabilityChecker
from repro.schema import parse_schema
from repro.workloads import CORPUS

CASES = {
    "example_6_1_a": "OT1",  # unconditional conflict (diagram (a))
    "diagram_c": "OT2",      # conditional conflict via forced merge
}


def _chain_schema(depth: int) -> str:
    """A depth-long @required chain ending in an unimplemented interface.

    Every link is unsatisfiable, provable only by propagating deadness all
    the way down -- the PG003 fixpoint at its deepest.
    """
    lines = ["interface Dead { x: Int }"]
    lines.append("type T0 { next: Dead @required }")
    for i in range(1, depth):
        lines.append(f"type T{i} {{ next: T{i - 1} @required }}")
    return "\n".join(lines)


@pytest.mark.experiment("E11")
@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("engine", ["lint", "tableau"])
def test_paper_diagrams(benchmark, name, engine):
    sdl = CORPUS[name].sdl
    type_name = CASES[name]

    def decide():
        schema = parse_schema(sdl, check=False)
        checker = SatisfiabilityChecker(schema, lint_precheck=(engine == "lint"))
        return checker.check_type(type_name, find_witness=False)

    verdict = benchmark(decide)
    assert not verdict.tableau_satisfiable
    assert verdict.decided_by == engine
    benchmark.extra_info["decided_by"] = verdict.decided_by


@pytest.mark.experiment("E11")
@pytest.mark.parametrize("depth", [4, 16, 64])
@pytest.mark.parametrize("engine", ["lint", "tableau"])
def test_dead_chain_scaling(benchmark, depth, engine):
    sdl = _chain_schema(depth)
    type_name = f"T{depth - 1}"

    def decide():
        schema = parse_schema(sdl)
        checker = SatisfiabilityChecker(schema, lint_precheck=(engine == "lint"))
        return checker.check_type(type_name, find_witness=False)

    verdict = benchmark(decide)
    assert not verdict.tableau_satisfiable
    assert verdict.decided_by == engine
    if engine == "lint":
        assert verdict.diagnostic is not None
        assert verdict.diagnostic.code == "PG003"
