"""E3 -- Theorem 1's proof, executable: the first-order encoding.

The proof encodes (schema, graph) as a first-order structure and expresses
the rules as fixed boolean queries.  This experiment runs that construction
literally -- encode, then model-check all fifteen sentences -- and compares
it against the rule engines on identical inputs.

Shapes to check: (1) the FO validator agrees with the rule engines on every
input (asserted); (2) its cost is polynomial but far above the indexed
engine's, which is why the paper calls the AC0 result "theoretically
pleasing" rather than a practical algorithm.
"""

import pytest

from repro.fo import FOValidator, SENTENCES, encode, evaluate
from repro.validation import IndexedValidator
from repro.workloads import load, user_session_graph

SCHEMA = load("user_session_edge_props")
SIZES = [20, 40, 80, 160]


def _graph(num_users):
    return user_session_graph(num_users, sessions_per_user=1, seed=3)


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("num_users", SIZES)
def test_fo_validator_scaling(benchmark, num_users):
    graph = _graph(num_users)
    validator = FOValidator(SCHEMA)
    benchmark.extra_info["n"] = len(graph)
    assert benchmark(validator.validate, graph)


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("num_users", SIZES)
def test_indexed_engine_same_inputs(benchmark, num_users):
    graph = _graph(num_users)
    validator = IndexedValidator(SCHEMA)
    benchmark.extra_info["n"] = len(graph)
    assert benchmark(validator.validate, graph).conforms


@pytest.mark.experiment("E3")
def test_encoding_cost(benchmark):
    graph = _graph(80)
    benchmark.extra_info["n"] = len(graph)
    structure = benchmark(encode, SCHEMA, graph)
    assert structure.holds("OT", ("User",))


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("rule", sorted(SENTENCES))
def test_per_sentence_cost(benchmark, rule):
    """Cost split per rule sentence (DS7's n² quantifier prefix dominates)."""
    graph = _graph(40)
    structure = encode(SCHEMA, graph)
    assert benchmark(evaluate, structure, SENTENCES[rule])


@pytest.mark.experiment("E3")
def test_fo_agrees_with_engines_on_corrupted_inputs(benchmark):
    from repro.workloads import corrupt_graph

    graphs = [_graph(15)]
    for rule in ("SS1", "WS1", "WS4", "DS5", "DS7"):
        corrupted = corrupt_graph(graphs[0], SCHEMA, rule, seed=0)
        if corrupted is not None:
            graphs.append(corrupted)
    fo = FOValidator(SCHEMA)
    indexed = IndexedValidator(SCHEMA)

    def agree_on_all():
        for graph in graphs:
            fo_bad = {rule for rule, ok in fo.check_rules(graph).items() if not ok}
            engine_bad = {v.rule for v in indexed.validate(graph).violations}
            if fo_bad != engine_bad:
                return False
        return True

    assert benchmark(agree_on_all)
