"""E7 -- Figure 1 and the SDL front end: parse / build / print throughput.

Exercises the full front end on the paper's own Figure-1 schema (asserting
the round-trip identity) and on synthetic schemas up to hundreds of types,
giving the throughput rows a user of the library would care about.
"""

import random

import pytest

from repro.schema import parse_schema, print_schema
from repro.sdl import parse_document, print_document
from repro.workloads import CORPUS
from repro.workloads.schemas import random_schema_sdl

FIGURE_1 = CORPUS["figure_1"].sdl


def _big_sdl(num_types: int) -> str:
    return random_schema_sdl(num_types, max(1, num_types // 8), 2, 4, 3, 0.3, 0.3,
                             random.Random(num_types))


@pytest.mark.experiment("E7")
def test_parse_figure_1(benchmark):
    document = benchmark(parse_document, FIGURE_1)
    assert len(document.definitions) == 9


@pytest.mark.experiment("E7")
def test_figure_1_ast_round_trip(benchmark):
    def round_trip():
        document = parse_document(FIGURE_1)
        return parse_document(print_document(document)) == document

    assert benchmark(round_trip)


@pytest.mark.experiment("E7")
def test_build_figure_1_schema(benchmark):
    schema = benchmark(parse_schema, FIGURE_1)
    # the Query root is dropped by the Property Graph interpretation
    assert set(schema.object_types) == {"Starship", "Human", "Droid"}
    assert schema.scalars.is_enum("LenUnit")


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_parse_corpus_entry(benchmark, name):
    entry = CORPUS[name]
    schema = benchmark(parse_schema, entry.sdl, entry.consistent)
    assert schema.object_types


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("num_types", [20, 80, 320])
def test_parse_large_schema(benchmark, num_types):
    sdl = _big_sdl(num_types)
    benchmark.extra_info["sdl_bytes"] = len(sdl)
    schema = benchmark(parse_schema, sdl)
    assert len(schema.object_types) == num_types


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("num_types", [80])
def test_print_large_schema(benchmark, num_types):
    schema = parse_schema(_big_sdl(num_types))
    text = benchmark(print_schema, schema)
    assert f"type T{num_types - 1}" in text
