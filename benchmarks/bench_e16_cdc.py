"""E16 -- crash-resumable CDC validation over a mutation journal.

Three questions, one per benchmark group:

1. **Per-commit cost is bounded by touched scopes, not graph size.**  A
   fixed mutation journal is consumed on top of base graphs of growing
   size.  The consume-only timings (total minus the base-validation
   baseline measured separately) should stay flat across sizes -- the
   consumer's incremental engine rechecks only the scopes each commit
   touches.

2. **Checkpoint overhead.**  Consuming the same journal with checkpoints
   at every commit vs none quantifies the durability tax (serialise graph
   + violation store, fsync, rename).

3. **Recovery latency vs checkpoint interval.**  Resuming from the newest
   checkpoint costs (load + verify digest) + (replay the suffix after the
   checkpoint); a finer interval shortens the suffix at the price of more
   checkpoint writes during normal operation.
"""

import os

import pytest

from repro.pg.model import PropertyGraph
from repro.schema import parse_schema
from repro.validation import CDCConsumer
from repro.workloads import (
    MUTATION_SCHEMA_SDL,
    MutationWorkloadConfig,
    write_mutation_journal,
)

SCHEMA = parse_schema(MUTATION_SCHEMA_SDL)

if os.environ.get("PGSCHEMA_BENCH_QUICK") == "1":
    BASE_SIZES = [50, 200]
    COMMITS = 10
    INTERVALS = [1, 5]
else:
    BASE_SIZES = [100, 400, 1600, 6400]
    COMMITS = 40
    INTERVALS = [1, 4, 16]

OPS_PER_COMMIT = 5


def _base_graph(num_users: int) -> PropertyGraph:
    graph = PropertyGraph()
    for i in range(num_users):
        graph.add_node(
            f"base-u{i}", "User", {"id": f"base-{i}", "login": f"login{i}"}
        )
    return graph


def _journal(tmp_path, name="stream.jsonl", **overrides) -> str:
    path = str(tmp_path / name)
    config = MutationWorkloadConfig(
        commits=overrides.pop("commits", COMMITS),
        ops_per_commit=overrides.pop("ops_per_commit", OPS_PER_COMMIT),
        violation_probability=0.2,
        seed=7,
        **overrides,
    )
    write_mutation_journal(path, config)
    return path


@pytest.mark.experiment("E16")
@pytest.mark.parametrize("num_users", BASE_SIZES)
def test_base_validation_baseline(benchmark, tmp_path, num_users):
    """An empty journal isolates the O(n) base-graph validation setup."""
    path = _journal(tmp_path, commits=1, ops_per_commit=1)
    base = _base_graph(num_users)
    benchmark.extra_info["n"] = num_users

    def run():
        return CDCConsumer(SCHEMA, path, base_graph=base).run()

    result = benchmark(run)
    assert result.commits == 1


@pytest.mark.experiment("E16")
@pytest.mark.parametrize("num_users", BASE_SIZES)
def test_fixed_stream_over_growing_base(benchmark, tmp_path, num_users):
    """The same journal over growing bases: total minus the baseline above
    is the consume cost, which should not grow with the base size."""
    path = _journal(tmp_path)
    base = _base_graph(num_users)
    benchmark.extra_info["n"] = num_users
    benchmark.extra_info["commits"] = COMMITS

    def run():
        return CDCConsumer(SCHEMA, path, base_graph=base).run()

    result = benchmark(run)
    assert result.commits == COMMITS


@pytest.mark.experiment("E16")
@pytest.mark.parametrize("checkpoint", ["none", "every-commit"])
def test_checkpoint_overhead(benchmark, tmp_path, checkpoint):
    path = _journal(tmp_path)
    checkpoint_dir = str(tmp_path / "ckpt") if checkpoint != "none" else None
    benchmark.extra_info["commits"] = COMMITS

    def run():
        return CDCConsumer(
            SCHEMA, path, checkpoint_dir=checkpoint_dir, checkpoint_every=1
        ).run()

    result = benchmark(run)
    assert result.commits == COMMITS


@pytest.mark.experiment("E16")
@pytest.mark.parametrize("interval", INTERVALS)
def test_recovery_latency(benchmark, tmp_path, interval):
    """Warm-restart cost: load the newest checkpoint, verify it, replay
    the journal suffix behind it."""
    path = _journal(tmp_path)
    checkpoint_dir = str(tmp_path / f"ckpt-{interval}")
    kwargs = dict(checkpoint_dir=checkpoint_dir, checkpoint_every=interval)
    CDCConsumer(SCHEMA, path, **kwargs).run()  # leaves checkpoints behind
    benchmark.extra_info["commits"] = COMMITS

    def resume():
        return CDCConsumer(SCHEMA, path, **kwargs).run(resume=True)

    result = benchmark(resume)
    assert result.recovered_from.startswith("checkpoint:")
    assert result.report.complete
