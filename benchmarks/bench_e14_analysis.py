"""E14 -- the schema dataflow analyzer: static decisions before any search.

Claim under test: abstract cardinality intervals, computed by two monotone
fixpoints over the type-dependency graph, decide a large share of the
whole-schema satisfiability workload *without running a tableau* -- and
never disagree with it.  The analyzer's verdicts feed the satisfiability
engines as pre-verdicts (``analysis_precheck=True``, the default), so a
statically decided SatUnit skips both the tableau and the bounded finder.

Measured/asserted here:

1. coverage: over the paper corpus, at least 30% of all elements (object
   types plus relationship declarations) must be decided statically -- the
   acceptance floor for the feed being worth its fixpoints;
2. speedup: a cold cache-less sweep with the feed on must beat the same
   sweep with the feed off (asserted only outside quick mode; the margin is
   schema-dependent, so only direction is asserted, the ratio is printed);
3. soundness: with the feed on and off, ``check_schema`` reports stay
   byte-identical through ``to_json()`` -- asserted in every mode;
4. analysis cost: running all four passes over the whole corpus is
   milliseconds, orders below one tableau search on the same schemas.

Set ``PGSCHEMA_BENCH_QUICK=1`` for CI smoke mode (tiny scaled instances,
no speedup assertion).
"""

import json
import os
import time

import pytest

from repro.analysis import analysis_cache_clear, analyze_schema, sat_preverdicts
from repro.satisfiability import SatCache, SatisfiabilityChecker
from repro.workloads import (
    CORPUS,
    deep_lattice_schema,
    hub_chain_schema,
    load,
    near_unsat_schema,
)

QUICK = os.environ.get("PGSCHEMA_BENCH_QUICK") == "1"


def _suite():
    scaled = (
        [hub_chain_schema(depth=3, leaves=2), near_unsat_schema(2)]
        if QUICK
        else [
            hub_chain_schema(depth=12, leaves=8),
            near_unsat_schema(6),
            near_unsat_schema(6, collide=True),
            deep_lattice_schema(4, 2),
        ]
    )
    return scaled + [load(name) for name in CORPUS]


def _elements(schema):
    """Types plus relationship declarations: the decidable element count."""
    return len(schema.object_types) + sum(
        1
        for *_loc, field_def in schema.field_declarations()
        if field_def.is_relationship
    )


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep(schemas, analysis):
    for schema in schemas:
        SatisfiabilityChecker(
            schema, cache=False, analysis_precheck=analysis
        ).check_schema(engine="serial")


# --------------------------------------------------------------------------- #
# 1. coverage
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E14")
def test_corpus_static_coverage_meets_the_floor():
    decided = total = 0
    per_schema = []
    for name in CORPUS:
        schema = load(name)
        pre = sat_preverdicts(schema)
        elements = _elements(schema)
        per_schema.append((name, pre.decided, elements))
        decided += pre.decided
        total += elements
    print(f"\nE14 coverage: {decided}/{total} corpus elements decided statically")
    for name, got, elements in per_schema:
        print(f"  {name:>28}: {got}/{elements}")
    assert decided / total >= 0.30, "static coverage below the 30% floor"


# --------------------------------------------------------------------------- #
# 2. speedup: sweeps with the feed on vs off
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E14")
@pytest.mark.parametrize("analysis", [True, False], ids=["feed-on", "feed-off"])
def test_sat_sweep(benchmark, analysis):
    schemas = _suite()
    benchmark.extra_info["schemas"] = len(schemas)
    if analysis:
        analysis_cache_clear()
    benchmark(_sweep, schemas, analysis)


@pytest.mark.experiment("E14")
def test_feed_speeds_up_cold_sweeps():
    schemas = _suite()
    _sweep(schemas, True)  # warm code paths and the analysis memo
    _sweep(schemas, False)
    t_on = _best_of(lambda: _sweep(schemas, True))
    t_off = _best_of(lambda: _sweep(schemas, False))
    print(
        f"\nE14 sweep over {len(schemas)} schemas: feed off "
        f"{t_off * 1000:.1f} ms, feed on {t_on * 1000:.1f} ms "
        f"-> {t_off / t_on:.2f}x"
    )
    if not QUICK:
        assert t_on < t_off, "the analysis feed must not slow cold sweeps"


# --------------------------------------------------------------------------- #
# 3. soundness: byte-identical reports (asserted even in quick mode)
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E14")
@pytest.mark.parametrize("engine", ["serial", "portfolio"])
def test_feed_reports_byte_identical(engine):
    for schema in _suite():
        expected = json.dumps(
            SatisfiabilityChecker(
                schema, cache=False, analysis_precheck=False
            )
            .check_schema(engine=engine)
            .to_json(),
            sort_keys=True,
        )
        fed = SatisfiabilityChecker(schema, cache=SatCache(schema)).check_schema(
            engine=engine
        )
        assert json.dumps(fed.to_json(), sort_keys=True) == expected


# --------------------------------------------------------------------------- #
# 4. analysis cost
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E14")
def test_analysis_pass_cost(benchmark):
    schemas = [load(name) for name in CORPUS]

    def run():
        analysis_cache_clear()
        for schema in schemas:
            analyze_schema(schema)

    benchmark.extra_info["schemas"] = len(schemas)
    benchmark(run)
