"""E12 -- parallel sharded validation: compiled plans over worker shards.

Claim under test: because Theorem 1 places the Schema Validation Problem in
AC0, the work decomposes into scope-respecting shards whose merged result
equals a sequential run.  The parallel engine exploits this twice: its fused
shard kernel (one pass over nodes, one over edges, one plan-record dict hit
per element) beats the per-rule indexed engine even on a single core, and
the shard fan-out adds multi-core scaling on top.

Four things are measured/asserted here:

1. speedup: ``ParallelValidator`` at jobs ∈ {1, 2, 4} vs ``IndexedValidator``
   on the n=16000 user/session graph -- the jobs=4 configuration must be at
   least 1.8x faster than the indexed engine;
2. plan caching: a warm ``validate()`` (plan already compiled) must be
   measurably cheaper than a cold one (cache cleared before every call);
3. resilience overhead: disabled fault points cost a None check, and an
   installed-but-never-matching fault plan keeps healthy validation within
   noise of a clean run -- the zero-overhead contract of the fault harness;
4. agreement: the parallel engine returns the identical violation set as the
   indexed engine on the conformant corpus graph and on every corrupted
   differential fixture, for jobs ∈ {1, 2, 4} -- asserted inside the bench,
   so a bench run doubles as an end-to-end check.

Set ``PGSCHEMA_BENCH_QUICK=1`` to run with tiny graphs (CI smoke mode); the
speedup ratio is then not asserted -- fixed per-call overheads dominate at
toy sizes -- but every agreement check still runs.
"""

import os
import time

import pytest

from repro.validation import (
    IndexedValidator,
    ParallelValidator,
    compile_plan,
    plan_cache_clear,
    plan_cache_info,
    validate,
)
from repro.workloads import corrupt_graph, library_graph, load, user_session_graph

QUICK = os.environ.get("PGSCHEMA_BENCH_QUICK") == "1"

SCHEMA = load("user_session_edge_props")

#: num_users=3200 -> |V|=9600, |E|=6400, n=16000 (the acceptance size).
NUM_USERS = 100 if QUICK else 3200

JOBS = [1, 2, 4]

#: Rules corrupt_graph() has an injection strategy for.
CORRUPTIBLE_RULES = (
    "SS1", "WS1", "SS2", "SS4", "WS3", "WS4",
    "DS1", "DS2", "DS5", "DS6", "DS7",
)


def _graph():
    return user_session_graph(NUM_USERS, sessions_per_user=2, seed=42)


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------------- #
# 1. speedup
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E12")
def test_indexed_baseline(benchmark):
    graph = _graph()
    validator = IndexedValidator(SCHEMA, plan=compile_plan(SCHEMA))
    benchmark.extra_info["n"] = len(graph)
    report = benchmark(validator.validate, graph)
    assert report.conforms


@pytest.mark.experiment("E12")
@pytest.mark.parametrize("jobs", JOBS)
def test_parallel_engine_scaling(benchmark, jobs):
    graph = _graph()
    validator = ParallelValidator(SCHEMA, jobs=jobs, plan=compile_plan(SCHEMA))
    benchmark.extra_info["n"] = len(graph)
    benchmark.extra_info["executor"] = validator.choose_executor(graph)
    report = benchmark(validator.validate, graph)
    assert report.conforms


@pytest.mark.experiment("E12")
def test_parallel_speedup_over_indexed():
    """The acceptance ratio: jobs=4 must be >= 1.8x the indexed engine."""
    graph = _graph()
    plan = compile_plan(SCHEMA)
    indexed = IndexedValidator(SCHEMA, plan=plan)
    parallel = ParallelValidator(SCHEMA, jobs=4, plan=plan)
    indexed.validate(graph)  # warm both code paths before timing
    parallel.validate(graph)
    t_indexed = _best_of(lambda: indexed.validate(graph), repeats=5)
    t_parallel = _best_of(lambda: parallel.validate(graph), repeats=5)
    speedup = t_indexed / t_parallel
    print(
        f"\nE12 speedup @ n={len(graph)}: indexed {t_indexed * 1000:.1f} ms, "
        f"parallel(jobs=4) {t_parallel * 1000:.1f} ms -> {speedup:.2f}x"
    )
    if not QUICK:
        assert speedup >= 1.8, f"speedup {speedup:.2f}x below the 1.8x floor"


# --------------------------------------------------------------------------- #
# 2. plan caching
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E12")
def test_plan_cache_makes_repeat_validation_cheaper():
    """Repeated ``validate()`` calls must hit the plan cache and, summed over
    a batch, run faster than the same batch with the cache cleared between
    calls (schema analysis repaid every time).  Batching amortises noise:
    one compile is tens of microseconds, a batch of them is milliseconds."""
    graph = user_session_graph(2, sessions_per_user=2, seed=42)
    batch = 300

    def cold_batch():
        for _ in range(batch):
            plan_cache_clear()
            validate(SCHEMA, graph)

    def warm_batch():
        for _ in range(batch):
            validate(SCHEMA, graph)

    cold_batch()  # warm code paths; leaves the plan cached for warm_batch()
    t_warm = _best_of(warm_batch)
    t_cold = _best_of(cold_batch)
    before = plan_cache_info()
    validate(SCHEMA, graph)
    after = plan_cache_info()
    assert after["hits"] == before["hits"] + 1, "repeat validate() missed the cache"
    print(
        f"\nE12 plan cache ({batch} calls): cold {t_cold * 1000:.2f} ms, "
        f"warm {t_warm * 1000:.2f} ms ({t_cold / t_warm:.2f}x)"
    )
    assert t_warm < t_cold, "cached plan should make repeat validation cheaper"


# --------------------------------------------------------------------------- #
# 3. resilience layer overhead (asserted even in quick mode)
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E12")
def test_disabled_fault_points_are_noise():
    """The zero-overhead contract: with no plan installed, a fault_point
    call is one global load and a None check -- sub-microsecond-scale, so
    hot loops (tableau expansion, DPLL decisions) can afford it."""
    from repro.resilience import faults

    faults.uninstall()
    if faults.enabled():  # an env-configured PGSCHEMA_FAULTS plan is active
        pytest.skip("cannot measure the disabled path with PGSCHEMA_FAULTS set")
    calls = 200_000
    start = time.perf_counter()
    for index in range(calls):
        faults.fault_point("bench.site", index=index)
    per_call = (time.perf_counter() - start) / calls
    print(f"\nE12 disabled fault_point: {per_call * 1e9:.0f} ns/call")
    assert per_call < 2e-6, f"disabled fault_point costs {per_call * 1e6:.2f} us"


@pytest.mark.experiment("E12")
def test_resilience_plumbing_overhead_within_noise():
    """An installed-but-never-matching fault plan plus budget plumbing must
    not measurably slow a healthy validation run (ratio floor is generous:
    small absolute times make the quotient noisy)."""
    from repro.resilience import faults

    graph = _graph()
    plan = compile_plan(SCHEMA)
    baseline = ParallelValidator(SCHEMA, jobs=1, plan=plan)
    shadowed = ParallelValidator(SCHEMA, jobs=1, plan=plan)
    baseline.validate(graph)  # warm both instances' code paths
    shadowed.validate(graph)
    t_clean = _best_of(lambda: baseline.validate(graph), repeats=5)
    faults.install("crash@no.such.site:shard=999")
    try:
        t_shadowed = _best_of(lambda: shadowed.validate(graph), repeats=5)
    finally:
        faults.uninstall()
    ratio = t_shadowed / t_clean
    print(
        f"\nE12 resilience overhead: clean {t_clean * 1000:.2f} ms, "
        f"non-matching plan {t_shadowed * 1000:.2f} ms ({ratio:.2f}x)"
    )
    assert ratio < 1.4, f"non-matching fault plan cost {ratio:.2f}x"


# --------------------------------------------------------------------------- #
# 3b. observability layer overhead (asserted even in quick mode)
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E12")
def test_disabled_obs_helpers_are_noise():
    """The obs layer inherits the fault harness's zero-overhead contract:
    with no observation installed, ``obs.count``/``obs.span`` are one global
    load and a None check, so the engines stay instrumented unconditionally."""
    from repro import obs

    obs.uninstall()
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        obs.count("validation.checks.WS1")
        obs.span("validation.shard")
    per_call = (time.perf_counter() - start) / (2 * calls)
    print(f"\nE12 disabled obs helper: {per_call * 1e9:.0f} ns/call")
    assert per_call < 2e-6, f"disabled obs helper costs {per_call * 1e6:.2f} us"


@pytest.mark.experiment("E12")
def test_enabled_instrumentation_stays_aggregate():
    """Even *enabled*, tracing+metrics must stay within noise of a disabled
    run: the engines record aggregates (per-shard spans, counts derived
    from shard sizes), never per-element events, so the span/counter volume
    is O(shards), not O(|V|+|E|)."""
    from repro import obs

    obs.uninstall()
    graph = _graph()
    plan = compile_plan(SCHEMA)
    validator = ParallelValidator(SCHEMA, jobs=1, plan=plan)
    validator.validate(graph)  # warm
    t_off = _best_of(lambda: validator.validate(graph), repeats=5)
    obs.install(obs.Tracer(), obs.MetricsRegistry())
    try:
        t_on = _best_of(lambda: validator.validate(graph), repeats=5)
    finally:
        obs.uninstall()
    ratio = t_on / t_off
    print(
        f"\nE12 obs overhead: off {t_off * 1000:.2f} ms, "
        f"on {t_on * 1000:.2f} ms ({ratio:.2f}x)"
    )
    assert ratio < 1.4, f"enabled instrumentation cost {ratio:.2f}x"


# --------------------------------------------------------------------------- #
# 4. agreement (asserted even in quick mode)
# --------------------------------------------------------------------------- #


# --------------------------------------------------------------------------- #
# 5. columnar backend (the E15 graph core, measured on the E12 workload)
# --------------------------------------------------------------------------- #


@pytest.mark.experiment("E12")
def test_columnar_kernel_speedup_over_dict():
    """The columnar acceptance ratio: the fused kernel sweeping interned
    label-id runs and typed property columns must beat the same kernel on
    the dict backend by >= 1.5x at n=16000 (jobs=1, so the ratio isolates
    the backend, not the fan-out)."""
    from repro.pg import freeze

    graph = _graph()
    frozen = freeze(graph)
    plan = compile_plan(SCHEMA)
    validator = ParallelValidator(SCHEMA, jobs=1, plan=plan)
    validator.validate(graph)  # warm both kernels before timing
    validator.validate(frozen)
    t_dict = _best_of(lambda: validator.validate(graph), repeats=5)
    t_columnar = _best_of(lambda: validator.validate(frozen), repeats=5)
    speedup = t_dict / t_columnar
    print(
        f"\nE12 columnar kernel @ n={len(graph)}: dict {t_dict * 1000:.1f} ms, "
        f"columnar {t_columnar * 1000:.1f} ms -> {speedup:.2f}x"
    )
    if not QUICK:
        assert speedup >= 1.5, f"columnar speedup {speedup:.2f}x below the 1.5x floor"


@pytest.mark.experiment("E12")
@pytest.mark.parametrize("jobs", JOBS)
def test_columnar_reports_byte_identical_to_dict(jobs):
    """Backend swap changes nothing observable: the frozen graph renders the
    exact violation strings of the dict run at every worker count."""
    from repro.pg import freeze

    lib_schema = load("library")
    fixtures = [
        (SCHEMA, user_session_graph(10 if QUICK else 60, seed=3)),
        (lib_schema, library_graph(12, 30, num_series=3, num_publishers=2, seed=7)),
    ]
    for schema, graph in list(fixtures):
        for rule in CORRUPTIBLE_RULES:
            corrupted = corrupt_graph(graph, schema, rule, seed=11)
            if corrupted is not None:
                fixtures.append((schema, corrupted))
    checked = 0
    for schema, graph in fixtures:
        validator = ParallelValidator(schema, jobs=jobs, plan=compile_plan(schema))
        expected = validator.validate(graph)
        got = validator.validate(freeze(graph))
        assert [str(v) for v in got.violations] == [
            str(v) for v in expected.violations
        ]
        checked += 1
    assert checked >= 20


@pytest.mark.experiment("E12")
@pytest.mark.parametrize("jobs", JOBS)
def test_parallel_agrees_with_indexed(jobs):
    lib_schema = load("library")
    fixtures = [
        (SCHEMA, _graph() if QUICK else user_session_graph(60, seed=3)),
        (lib_schema, library_graph(12, 30, num_series=3, num_publishers=2, seed=7)),
    ]
    for schema, graph in list(fixtures):
        for rule in CORRUPTIBLE_RULES:
            corrupted = corrupt_graph(graph, schema, rule, seed=11)
            if corrupted is not None:
                fixtures.append((schema, corrupted))
    checked = 0
    for schema, graph in fixtures:
        plan = compile_plan(schema)
        expected = IndexedValidator(schema, plan=plan).validate(graph)
        got = ParallelValidator(schema, jobs=jobs, plan=plan).validate(graph)
        assert got.keys() == expected.keys()
        checked += 1
    assert checked >= 20
